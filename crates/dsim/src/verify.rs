//! Bounded exhaustive equivalence verification.
//!
//! The paper's §7 proposes going beyond fuzzing: *"we wish to use program
//! verification by allowing support for a high-level specification … This
//! specification and the pipeline description can be transformed into SMT
//! formulas so that equivalence can be formally proven."* This module
//! provides the solver-free counterpart: for a bounded input domain (k-bit
//! values in the enumerated containers, traces of a fixed number of PHVs),
//! it checks *every* input exactly — within those bounds the result is a
//! proof, not a sample.
//!
//! The domain must be small (the case count is
//! `2^(bits · containers · packets)`), which is exactly the regime where
//! guard/threshold bugs live: the §5.2 limited-range failures are
//! distinguishable with 4-bit inputs and a handful of packets.

use druzhba_analysis::{symbolic_validate_level, SymbolicResidual, SymbolicVerdict};
use druzhba_core::trace::TraceMismatch;
use druzhba_core::{Error, MachineCode, Phv, Result, Trace};
use druzhba_dgen::{LanePipeline, OptLevel, Pipeline, PipelineSpec};

use crate::minimize::{minimize, MinimizeConfig, MinimizedCounterExample};
use crate::sim::Simulator;
use crate::testing::Specification;

/// Bounds and observation points for exhaustive verification.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Enumerated values per container: `[0, 2^input_bits)`.
    pub input_bits: u32,
    /// Length of every enumerated input trace.
    pub packets: usize,
    /// Containers enumerated (the program's input fields); all others are
    /// zero in every generated PHV.
    pub relevant_containers: Vec<usize>,
    /// Containers compared against the specification (`None` = all).
    pub observable: Option<Vec<usize>>,
    /// State cells compared after each trace.
    pub state_cells: Vec<(usize, usize, usize)>,
    /// Refuse to enumerate more cases than this (guards against
    /// accidental exponential blowups).
    pub max_cases: u64,
    /// Lane width for SIMD-swept enumeration (0 = scalar). When set, the
    /// fused program is lane-lowered and that many inputs are enumerated
    /// per instruction stream pass, which also lifts the scalar path's
    /// `input_bits <= 31` wall to the full 32 bits. Requires
    /// [`OptLevel::Fused`] and a width in
    /// [`LANE_WIDTHS`](druzhba_dgen::LANE_WIDTHS).
    pub lanes: usize,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            input_bits: 2,
            packets: 3,
            relevant_containers: Vec::new(),
            observable: None,
            state_cells: Vec::new(),
            max_cases: 5_000_000,
            lanes: 0,
        }
    }
}

/// The verdict of a bounded verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Every input within the bounds agreed.
    Verified {
        /// Number of input traces checked.
        cases: u64,
    },
    /// A concrete diverging input.
    CounterExample {
        /// The input trace that diverges.
        input: Trace,
        /// Where pipeline and specification disagree.
        mismatch: TraceMismatch,
        /// The input further reduced by delta debugging (enumeration
        /// order already biases toward small inputs, but value shrinking
        /// and packet reduction usually tighten it more). Boxed to keep
        /// the happy-path `Verified` variant small.
        minimized: Option<Box<MinimizedCounterExample>>,
    },
}

impl VerifyOutcome {
    /// True if verification succeeded.
    pub fn verified(&self) -> bool {
        matches!(self, VerifyOutcome::Verified { .. })
    }
}

/// Delta-debug a concrete diverging input found by the enumeration (the
/// odometer order already biases toward small values, but packet
/// reduction and value shrinking usually tighten it further).
fn minimize_counterexample(
    pipeline_spec: &PipelineSpec,
    mc: &MachineCode,
    opt: OptLevel,
    reference: &mut dyn Specification,
    input: &Trace,
    cfg: &VerifyConfig,
) -> Option<Box<MinimizedCounterExample>> {
    minimize(
        pipeline_spec,
        mc,
        opt,
        reference,
        input,
        &MinimizeConfig {
            observable: cfg.observable.clone(),
            state_cells: cfg.state_cells.clone(),
            ..MinimizeConfig::default()
        },
    )
    .map(Box::new)
}

/// Exhaustively check pipeline-vs-specification equivalence within the
/// configured bounds.
pub fn verify_bounded(
    pipeline_spec: &PipelineSpec,
    mc: &MachineCode,
    opt: OptLevel,
    reference: &mut dyn Specification,
    cfg: &VerifyConfig,
) -> Result<VerifyOutcome> {
    if cfg.lanes > 0 {
        return verify_bounded_lanes(pipeline_spec, mc, opt, reference, cfg);
    }
    // Refuse domains we cannot actually enumerate rather than silently
    // clamping: reporting "verified" over a smaller domain than requested
    // would be a false proof.
    if cfg.input_bits > 31 {
        return Err(Error::Other {
            message: format!(
                "bounded verification supports at most 31-bit inputs \
                 (requested {} bits); clamping would silently verify a \
                 smaller domain than asked for",
                cfg.input_bits
            ),
        });
    }
    let slots = cfg.relevant_containers.len() * cfg.packets;
    let values_per_slot = 1u64 << cfg.input_bits;
    // An overflowing case count certainly exceeds any budget.
    let cases = values_per_slot
        .checked_pow(slots as u32)
        .unwrap_or(u64::MAX);
    if cases > cfg.max_cases {
        return Err(Error::Other {
            message: format!(
                "bounded verification needs {cases} cases \
                 (> budget {}); shrink bits/packets/containers",
                cfg.max_cases
            ),
        });
    }
    let pipeline = Pipeline::generate(pipeline_spec, mc, opt)?;
    let mut sim = Simulator::new(pipeline);
    let phv_length = pipeline_spec.config.phv_length;

    // Odometer over all (container, packet) slots.
    let mut assignment = vec![0u32; slots];
    let max = (values_per_slot - 1) as u32;
    let mut checked = 0u64;
    loop {
        // Build the input trace for this assignment.
        let mut phvs = Vec::with_capacity(cfg.packets);
        for p in 0..cfg.packets {
            let mut phv = Phv::zeroed(phv_length);
            for (ci, &container) in cfg.relevant_containers.iter().enumerate() {
                phv.set(
                    container,
                    assignment[p * cfg.relevant_containers.len() + ci],
                );
            }
            phvs.push(phv);
        }
        let input = Trace::from_phvs(phvs);

        // Run both sides from clean state.
        sim.reset();
        let actual = sim.run(&input);
        reference.reset();
        let expected = Trace::from_phvs(input.phvs.iter().map(|p| reference.process(p)).collect());

        if let Some(mismatch) = expected.first_mismatch(&actual, cfg.observable.as_deref()) {
            let minimized = minimize_counterexample(pipeline_spec, mc, opt, reference, &input, cfg);
            return Ok(VerifyOutcome::CounterExample {
                input,
                mismatch,
                minimized,
            });
        }
        if !cfg.state_cells.is_empty() {
            let snapshot = actual.state.as_ref().expect("run records state");
            let expected_state = reference.state();
            for (i, &(stage, slot, var)) in cfg.state_cells.iter().enumerate() {
                let actual_v = snapshot
                    .get(stage)
                    .and_then(|s| s.get(slot))
                    .and_then(|vars| vars.get(var))
                    .copied();
                if actual_v != expected_state.get(i).copied() {
                    let minimized =
                        minimize_counterexample(pipeline_spec, mc, opt, reference, &input, cfg);
                    return Ok(VerifyOutcome::CounterExample {
                        input,
                        mismatch: TraceMismatch::StateMismatch {
                            stage,
                            slot,
                            expected: expected_state.get(i).copied().into_iter().collect(),
                            actual: actual_v.into_iter().collect(),
                        },
                        minimized,
                    });
                }
            }
        }
        checked += 1;

        // Next assignment.
        let mut i = 0;
        loop {
            if i == slots {
                return Ok(VerifyOutcome::Verified { cases: checked });
            }
            if assignment[i] < max {
                assignment[i] += 1;
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
        if slots == 0 {
            // Single (empty) assignment: one case total.
            return Ok(VerifyOutcome::Verified { cases: checked });
        }
    }
}

/// SIMD-swept exhaustive enumeration: lane-lower the fused program
/// ([`druzhba_dgen::lanes`]) and push `cfg.lanes` enumerated inputs
/// through one instruction stream per pass, each lane an independent
/// execution with its own state.
///
/// Cases run in exactly the scalar odometer order (lanes are filled and
/// compared in case order), so the first divergence found is the same
/// case the scalar path would find first; that case is then re-run
/// through the scalar simulator to build a [`VerifyOutcome`] **identical**
/// to scalar mode's — same counterexample trace, mismatch, and
/// minimization. The swept engine also lifts the scalar path's 31-bit
/// input wall to the full 32 bits (the budget check moves to 128-bit
/// arithmetic so the case count cannot overflow).
fn verify_bounded_lanes(
    pipeline_spec: &PipelineSpec,
    mc: &MachineCode,
    opt: OptLevel,
    reference: &mut dyn Specification,
    cfg: &VerifyConfig,
) -> Result<VerifyOutcome> {
    if opt != OptLevel::Fused {
        return Err(Error::Other {
            message: format!(
                "lane-swept verification requires the fused backend \
                 (got {:?}); drop `lanes` for the scalar path",
                opt
            ),
        });
    }
    if !druzhba_dgen::lanes::supported_width(cfg.lanes) {
        return Err(Error::Other {
            message: format!(
                "unsupported lane width {} (supported: {:?})",
                cfg.lanes,
                druzhba_dgen::LANE_WIDTHS
            ),
        });
    }
    if cfg.input_bits > 32 {
        return Err(Error::Other {
            message: format!(
                "lane-swept verification supports at most 32-bit inputs \
                 (requested {} bits)",
                cfg.input_bits
            ),
        });
    }
    let slots = cfg.relevant_containers.len() * cfg.packets;
    let values_per_slot: u64 = 1u64 << cfg.input_bits;
    let total: u128 = (values_per_slot as u128)
        .checked_pow(slots as u32)
        .unwrap_or(u128::MAX);
    if total > u128::from(cfg.max_cases) {
        return Err(Error::Other {
            message: format!(
                "bounded verification needs {total} cases \
                 (> budget {}); shrink bits/packets/containers",
                cfg.max_cases
            ),
        });
    }

    let pipeline = Pipeline::generate(pipeline_spec, mc, opt)?;
    let fused = pipeline.fused_program().expect("fused level");
    let lowered = LanePipeline::lower(fused).ok_or_else(|| Error::Other {
        message: "fused program is not lane-lowerable".to_string(),
    })?;
    let width = cfg.lanes;
    let mut sweep = lowered.sweep(width).expect("width validated above");
    let phv_length = pipeline_spec.config.phv_length;
    let nrel = cfg.relevant_containers.len();
    let max = (values_per_slot - 1) as u32;

    // Reused buffers — the hot loop is allocation-free.
    let mut assignment = vec![0u32; slots];
    let mut assign_buf = vec![0u32; slots.max(1) * width];
    let mut out_buf = vec![0u32; cfg.packets * phv_length * width];
    let mut scratch_in = Phv::zeroed(phv_length);
    let mut scratch_out = Phv::zeroed(phv_length);
    let mut expected_state: Vec<druzhba_core::Value> = Vec::new();
    let mut checked = 0u64;
    let mut done = false;

    while !done {
        // Fill up to `width` lanes from the shared odometer, in case
        // order (cheap increments — no per-lane index arithmetic).
        let mut active = 0;
        while active < width && !done {
            for (s, &v) in assignment.iter().enumerate() {
                assign_buf[s * width + active] = v;
            }
            active += 1;
            if slots == 0 {
                done = true;
                break;
            }
            let mut i = 0;
            loop {
                if i == slots {
                    done = true;
                    break;
                }
                if assignment[i] < max {
                    assignment[i] += 1;
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
        }
        if active == 0 {
            break;
        }

        // Execute all lanes in lockstep, buffering every output PHV.
        sweep.reset();
        for p in 0..cfg.packets {
            sweep.clear_phv();
            for lane in 0..active {
                for (ci, &container) in cfg.relevant_containers.iter().enumerate() {
                    sweep.set_input(lane, container, assign_buf[(p * nrel + ci) * width + lane]);
                }
            }
            sweep.step(active);
            for lane in 0..active {
                for c in 0..phv_length {
                    out_buf[(p * phv_length + c) * width + lane] = sweep.output(lane, c);
                }
            }
        }

        // Compare each lane against the reference, in case order, with
        // exactly `Trace::first_mismatch`'s per-container semantics.
        for lane in 0..active {
            reference.reset();
            let mut diverged = false;
            'packets: for p in 0..cfg.packets {
                for c in 0..phv_length {
                    scratch_in.set(c, 0);
                }
                for (ci, &container) in cfg.relevant_containers.iter().enumerate() {
                    scratch_in.set(container, assign_buf[(p * nrel + ci) * width + lane]);
                }
                reference.process_into(&scratch_in, &mut scratch_out);
                let compare = |c: usize| {
                    let expected = scratch_out.try_get(c);
                    let actual = if c < phv_length {
                        Some(out_buf[(p * phv_length + c) * width + lane])
                    } else {
                        None
                    };
                    expected != actual
                };
                match cfg.observable.as_deref() {
                    Some(obs) => {
                        for &c in obs {
                            if compare(c) {
                                diverged = true;
                                break 'packets;
                            }
                        }
                    }
                    None => {
                        for c in 0..scratch_out.len().max(phv_length) {
                            if compare(c) {
                                diverged = true;
                                break 'packets;
                            }
                        }
                    }
                }
            }
            if !diverged && !cfg.state_cells.is_empty() {
                reference.state_into(&mut expected_state);
                for (i, &(stage, slot, var)) in cfg.state_cells.iter().enumerate() {
                    if sweep.state_value(lane, stage, slot, var) != expected_state.get(i).copied() {
                        diverged = true;
                        break;
                    }
                }
            }
            if diverged {
                // Rebuild this case's input trace and re-run the *scalar*
                // verification path on it so the returned outcome is
                // byte-identical to what scalar mode would produce.
                let mut phvs = Vec::with_capacity(cfg.packets);
                for p in 0..cfg.packets {
                    let mut phv = Phv::zeroed(phv_length);
                    for (ci, &container) in cfg.relevant_containers.iter().enumerate() {
                        phv.set(container, assign_buf[(p * nrel + ci) * width + lane]);
                    }
                    phvs.push(phv);
                }
                let input = Trace::from_phvs(phvs);
                return scalar_recheck(pipeline_spec, mc, opt, reference, cfg, input);
            }
            checked += 1;
        }
    }
    Ok(VerifyOutcome::Verified { cases: checked })
}

/// Re-run one diverging case through the scalar simulator and build the
/// exact [`VerifyOutcome::CounterExample`] the scalar enumeration would
/// have returned for it. A lane-detected divergence the scalar backend
/// cannot reproduce is a lane-engine bug and reported as an error rather
/// than a counterexample.
fn scalar_recheck(
    pipeline_spec: &PipelineSpec,
    mc: &MachineCode,
    opt: OptLevel,
    reference: &mut dyn Specification,
    cfg: &VerifyConfig,
    input: Trace,
) -> Result<VerifyOutcome> {
    let pipeline = Pipeline::generate(pipeline_spec, mc, opt)?;
    let mut sim = Simulator::new(pipeline);
    sim.reset();
    let actual = sim.run(&input);
    reference.reset();
    let expected = Trace::from_phvs(input.phvs.iter().map(|p| reference.process(p)).collect());
    if let Some(mismatch) = expected.first_mismatch(&actual, cfg.observable.as_deref()) {
        let minimized = minimize_counterexample(pipeline_spec, mc, opt, reference, &input, cfg);
        return Ok(VerifyOutcome::CounterExample {
            input,
            mismatch,
            minimized,
        });
    }
    if !cfg.state_cells.is_empty() {
        let snapshot = actual.state.as_ref().expect("run records state");
        let expected_state = reference.state();
        for (i, &(stage, slot, var)) in cfg.state_cells.iter().enumerate() {
            let actual_v = snapshot
                .get(stage)
                .and_then(|s| s.get(slot))
                .and_then(|vars| vars.get(var))
                .copied();
            if actual_v != expected_state.get(i).copied() {
                let minimized =
                    minimize_counterexample(pipeline_spec, mc, opt, reference, &input, cfg);
                return Ok(VerifyOutcome::CounterExample {
                    input,
                    mismatch: TraceMismatch::StateMismatch {
                        stage,
                        slot,
                        expected: expected_state.get(i).copied().into_iter().collect(),
                        actual: actual_v.into_iter().collect(),
                    },
                    minimized,
                });
            }
        }
    }
    Err(Error::Other {
        message: "lane-swept enumeration found a divergence the scalar \
                  backend does not reproduce — this is a lane-engine bug, \
                  not a compiler bug"
            .to_string(),
    })
}

/// Outcome of proof-first verification ([`verify_symbolic_first`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolicVerifyOutcome {
    /// The compiled program's canonical symbolic transfer function equals
    /// the source semantics' term for term — equivalence holds over the
    /// *entire* 32-bit input and state space, not just the bounds.
    Proved,
    /// Normalization left residual sites (unequal-but-not-disjoint terms,
    /// a refutation, or an executor bail); bounded enumeration decided
    /// them within the configured bounds.
    Fallback {
        /// The sites symbolic validation could not prove equal.
        residuals: Vec<SymbolicResidual>,
        /// What exhaustive enumeration concluded within the bounds.
        outcome: VerifyOutcome,
    },
}

impl SymbolicVerifyOutcome {
    /// True if equivalence holds — by proof, or exhaustively within the
    /// bounds after fallback.
    pub fn verified(&self) -> bool {
        match self {
            SymbolicVerifyOutcome::Proved => true,
            SymbolicVerifyOutcome::Fallback { outcome, .. } => outcome.verified(),
        }
    }
}

/// The Unoptimized backend of a machine code, viewed as a
/// [`Specification`]: the reference side of translation validation. Each
/// packet runs through a one-PHV trace so state persists across calls.
struct SourceSpec {
    sim: Simulator,
    state_cells: Vec<(usize, usize, usize)>,
    last_state: Option<druzhba_core::trace::StateSnapshot>,
}

impl Specification for SourceSpec {
    fn reset(&mut self) {
        self.sim.reset();
        self.last_state = None;
    }
    fn process(&mut self, input: &Phv) -> Phv {
        let out = self.sim.run(&Trace::from_phvs(vec![input.clone()]));
        self.last_state = out.state.clone();
        out.phvs.into_iter().next().expect("one PHV in, one out")
    }
    fn state(&self) -> Vec<druzhba_core::Value> {
        let snapshot = self.last_state.as_deref().unwrap_or(&[]);
        self.state_cells
            .iter()
            .map(|&(stage, slot, var)| {
                snapshot
                    .get(stage)
                    .and_then(|s| s.get(slot))
                    .and_then(|vars| vars.get(var))
                    .copied()
                    .unwrap_or(0)
            })
            .collect()
    }
}

/// Proof-first translation validation: try symbolic validation
/// (canonical term equality, which covers the full 32-bit input and
/// state space), and fall back to [`verify_bounded`]'s exhaustive
/// enumeration — compiled level against the Unoptimized backend of the
/// *same* machine code — only on the residual sites the rewrite engine
/// could not decide.
///
/// This relates the compiled program at `opt` to its own source
/// semantics, the same obligation `symbolic_validate_level` discharges.
/// To compare against an external specification (a mutant against the
/// original program's interpreter, say), use [`verify_bounded`]
/// directly.
pub fn verify_symbolic_first(
    pipeline_spec: &PipelineSpec,
    mc: &MachineCode,
    opt: OptLevel,
    cfg: &VerifyConfig,
) -> Result<SymbolicVerifyOutcome> {
    let residuals = match symbolic_validate_level(pipeline_spec, mc, opt) {
        SymbolicVerdict::Proved => return Ok(SymbolicVerifyOutcome::Proved),
        SymbolicVerdict::Refuted { level, site, .. } => vec![SymbolicResidual { level, site }],
        SymbolicVerdict::Unknown { residuals } => residuals,
    };
    let reference_pipeline = Pipeline::generate(pipeline_spec, mc, OptLevel::Unoptimized)?;
    let mut reference = SourceSpec {
        sim: Simulator::new(reference_pipeline),
        state_cells: cfg.state_cells.clone(),
        last_state: None,
    };
    let outcome = verify_bounded(pipeline_spec, mc, opt, &mut reference, cfg)?;
    Ok(SymbolicVerifyOutcome::Fallback { residuals, outcome })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::ClosureSpec;
    use druzhba_alu_dsl::atoms::atom;
    use druzhba_core::PipelineConfig;
    use druzhba_dgen::expected_machine_code;

    /// 1-stage accumulator: state += container 0; old state -> container 1.
    fn setup() -> (PipelineSpec, MachineCode) {
        let spec = PipelineSpec::new(
            PipelineConfig::with_phv_length(1, 1, 2),
            atom("raw").unwrap(),
            atom("stateless_mux").unwrap(),
        )
        .unwrap();
        let mut mc = MachineCode::from_pairs(
            expected_machine_code(&spec)
                .into_iter()
                .map(|(n, _)| (n, 0)),
        );
        mc.set("output_mux_phv_0_1", 2);
        (spec, mc)
    }

    fn accumulator_spec() -> impl Specification {
        ClosureSpec::new(
            0u32,
            |state: &mut u32, input: &Phv| {
                let old = *state;
                *state = state.wrapping_add(input.get(0));
                Phv::new(vec![input.get(0), old])
            },
            |s| vec![*s],
        )
    }

    #[test]
    fn correct_pipeline_verifies_exhaustively() {
        let (spec, mc) = setup();
        let cfg = VerifyConfig {
            input_bits: 3,
            packets: 3,
            relevant_containers: vec![0],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            ..VerifyConfig::default()
        };
        let mut reference = accumulator_spec();
        let outcome =
            verify_bounded(&spec, &mc, OptLevel::SccInline, &mut reference, &cfg).unwrap();
        match outcome {
            VerifyOutcome::Verified { cases } => assert_eq!(cases, 8u64.pow(3)),
            other => panic!("expected verified, got {other:?}"),
        }
    }

    #[test]
    fn wrong_pipeline_yields_concrete_counterexample() {
        let (spec, mut mc) = setup();
        // Subtract instead of add.
        mc.set("stateful_alu_0_0_arith_op_0", 1);
        let cfg = VerifyConfig {
            input_bits: 2,
            packets: 2,
            relevant_containers: vec![0],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            ..VerifyConfig::default()
        };
        let mut reference = accumulator_spec();
        let outcome = verify_bounded(&spec, &mc, OptLevel::Scc, &mut reference, &cfg).unwrap();
        match outcome {
            VerifyOutcome::CounterExample { input, .. } => {
                // The counterexample must actually involve a nonzero add
                // (x - y == x + y only when y == 0 in 2-bit space... it
                // diverges as soon as any input is nonzero).
                assert!(input.phvs.iter().any(|p| p.get(0) != 0));
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn budget_guard_refuses_blowups() {
        let (spec, mc) = setup();
        let cfg = VerifyConfig {
            input_bits: 10,
            packets: 10,
            relevant_containers: vec![0, 1],
            max_cases: 1_000,
            ..VerifyConfig::default()
        };
        let mut reference = accumulator_spec();
        let err = verify_bounded(&spec, &mc, OptLevel::Scc, &mut reference, &cfg).unwrap_err();
        assert!(err.to_string().contains("shrink"));
    }

    #[test]
    fn oversized_bit_widths_are_rejected_not_clamped() {
        let (spec, mc) = setup();
        let cfg = VerifyConfig {
            input_bits: 40,
            packets: 1,
            relevant_containers: vec![0],
            max_cases: u64::MAX,
            ..VerifyConfig::default()
        };
        let mut reference = accumulator_spec();
        let err = verify_bounded(&spec, &mc, OptLevel::Scc, &mut reference, &cfg).unwrap_err();
        assert!(err.to_string().contains("31-bit"), "{err}");
    }

    #[test]
    fn counterexample_carries_a_reproducing_minimization() {
        let (spec, mut mc) = setup();
        mc.set("stateful_alu_0_0_arith_op_0", 1); // subtract instead of add
        let cfg = VerifyConfig {
            input_bits: 2,
            packets: 3,
            relevant_containers: vec![0],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            ..VerifyConfig::default()
        };
        let mut reference = accumulator_spec();
        let outcome = verify_bounded(&spec, &mc, OptLevel::Fused, &mut reference, &cfg).unwrap();
        let VerifyOutcome::CounterExample {
            input, minimized, ..
        } = outcome
        else {
            panic!("expected counterexample");
        };
        let mce = minimized.expect("divergences carry a minimization");
        assert!(mce.packets() <= input.len());
        // Replaying the minimized input still diverges in the same class.
        let mut reference = accumulator_spec();
        let v = crate::testing::run_case(
            &spec,
            &mc,
            OptLevel::Fused,
            &mut reference,
            &mce.input,
            cfg.observable.as_deref(),
            &cfg.state_cells,
        );
        assert_eq!(v.class(), mce.verdict.class());
        assert!(!v.passed());
    }

    #[test]
    fn no_relevant_containers_is_single_case() {
        let (spec, mc) = setup();
        let cfg = VerifyConfig {
            input_bits: 4,
            packets: 5,
            relevant_containers: vec![],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            ..VerifyConfig::default()
        };
        let mut reference = accumulator_spec();
        let outcome =
            verify_bounded(&spec, &mc, OptLevel::SccInline, &mut reference, &cfg).unwrap();
        assert_eq!(outcome, VerifyOutcome::Verified { cases: 1 });
    }

    /// A clean compiled program is proved symbolically — no enumeration
    /// runs at all, and the claim covers the full domain.
    #[test]
    fn symbolic_first_proves_clean_program_without_enumeration() {
        let (spec, mc) = setup();
        let cfg = VerifyConfig {
            input_bits: 3,
            packets: 3,
            relevant_containers: vec![0],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            ..VerifyConfig::default()
        };
        let outcome = verify_symbolic_first(&spec, &mc, OptLevel::SccInline, &cfg).unwrap();
        assert_eq!(outcome, SymbolicVerifyOutcome::Proved);
        assert!(outcome.verified());
    }

    /// A *mutated* machine code is still translation-consistent: every
    /// backend implements the mutated semantics, so proof-first
    /// validation must never misreport the mutation as a miscompilation
    /// (zero false refutations).
    #[test]
    fn symbolic_first_never_refutes_a_consistent_mutant() {
        let (spec, mut mc) = setup();
        mc.set("stateful_alu_0_0_arith_op_0", 1); // subtract instead of add
        let cfg = VerifyConfig {
            input_bits: 2,
            packets: 2,
            relevant_containers: vec![0],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            ..VerifyConfig::default()
        };
        for level in [OptLevel::Scc, OptLevel::SccInline, OptLevel::Fused] {
            let outcome = verify_symbolic_first(&spec, &mc, level, &cfg).unwrap();
            assert!(outcome.verified(), "{level:?}: {outcome:?}");
        }
    }

    /// The fallback reference — the Unoptimized backend wrapped as a
    /// [`Specification`] — agrees with the compiled levels packet by
    /// packet, including persistent state across `process` calls.
    #[test]
    fn source_spec_reference_tracks_unoptimized_backend() {
        let (spec, mc) = setup();
        let cfg = VerifyConfig {
            input_bits: 2,
            packets: 3,
            relevant_containers: vec![0],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            ..VerifyConfig::default()
        };
        let pipeline = Pipeline::generate(&spec, &mc, OptLevel::Unoptimized).unwrap();
        let mut reference = SourceSpec {
            sim: Simulator::new(pipeline),
            state_cells: cfg.state_cells.clone(),
            last_state: None,
        };
        let outcome = verify_bounded(&spec, &mc, OptLevel::Fused, &mut reference, &cfg).unwrap();
        assert_eq!(outcome, VerifyOutcome::Verified { cases: 4u64.pow(3) });
    }

    /// Exhaustive verification catches the §5.2 limited-range bug class
    /// that sampling-based fuzzing can only catch probabilistically: a
    /// sampling-style reset whose threshold is off by one.
    #[test]
    fn catches_threshold_off_by_one_exhaustively() {
        let spec = PipelineSpec::new(
            PipelineConfig::with_phv_length(1, 1, 2),
            atom("if_else_raw").unwrap(),
            atom("stateless_mux").unwrap(),
        )
        .unwrap();
        let mut mc = MachineCode::from_pairs(
            expected_machine_code(&spec)
                .into_iter()
                .map(|(n, _)| (n, 0)),
        );
        // if (state >= 3) { state = 0 } else { state += pkt_0 }
        mc.set("stateful_alu_0_0_rel_op_0", 0); // >=
        mc.set("stateful_alu_0_0_mux3_0", 2); // C()
        mc.set("stateful_alu_0_0_const_0", 3);
        mc.set("stateful_alu_0_0_opt_1", 1); // then: 0 + ...
        mc.set("stateful_alu_0_0_mux3_1", 2); // ... + C(0)
        mc.set("stateful_alu_0_0_mux3_2", 0); // else: state + pkt_0
        mc.set("output_mux_phv_0_1", 2);
        // The spec resets at threshold 4 — the machine code's 3 is an
        // off-by-one only visible when the running sum lands exactly on 3.
        let mut reference = ClosureSpec::new(
            0u32,
            |state: &mut u32, input: &Phv| {
                let old = *state;
                if *state >= 4 {
                    *state = 0;
                } else {
                    *state = state.wrapping_add(input.get(0));
                }
                Phv::new(vec![input.get(0), old])
            },
            |s| vec![*s],
        );
        let cfg = VerifyConfig {
            input_bits: 3,
            packets: 2,
            relevant_containers: vec![0],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            ..VerifyConfig::default()
        };
        let outcome =
            verify_bounded(&spec, &mc, OptLevel::SccInline, &mut reference, &cfg).unwrap();
        match outcome {
            VerifyOutcome::CounterExample { input, .. } => {
                // Divergence requires the first packet to land the sum
                // exactly on 3.
                assert_eq!(input.phvs[0].get(0), 3);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    /// The threshold-off-by-one pipeline of
    /// [`catches_threshold_off_by_one_exhaustively`], reused by the
    /// lane-swept cross-checks (micro domain, counterexample expected).
    fn threshold_setup() -> (PipelineSpec, MachineCode) {
        let spec = PipelineSpec::new(
            PipelineConfig::with_phv_length(1, 1, 2),
            atom("if_else_raw").unwrap(),
            atom("stateless_mux").unwrap(),
        )
        .unwrap();
        let mut mc = MachineCode::from_pairs(
            expected_machine_code(&spec)
                .into_iter()
                .map(|(n, _)| (n, 0)),
        );
        mc.set("stateful_alu_0_0_rel_op_0", 0); // >=
        mc.set("stateful_alu_0_0_mux3_0", 2); // C()
        mc.set("stateful_alu_0_0_const_0", 3);
        mc.set("stateful_alu_0_0_opt_1", 1);
        mc.set("stateful_alu_0_0_mux3_1", 2);
        mc.set("stateful_alu_0_0_mux3_2", 0);
        mc.set("output_mux_phv_0_1", 2);
        (spec, mc)
    }

    fn threshold_reference() -> impl Specification {
        ClosureSpec::new(
            0u32,
            |state: &mut u32, input: &Phv| {
                let old = *state;
                if *state >= 4 {
                    *state = 0;
                } else {
                    *state = state.wrapping_add(input.get(0));
                }
                Phv::new(vec![input.get(0), old])
            },
            |s| vec![*s],
        )
    }

    /// Satellite cross-check: for micro input domains (<= 2^16 cases),
    /// scalar and lane-swept enumeration reach the **same** outcome —
    /// equal `Verified` case counts, or an `==`-equal `CounterExample`
    /// (same input trace, same mismatch, same minimization and therefore
    /// the same verdict class) — at every lane width.
    #[test]
    fn lane_swept_micro_domain_matches_scalar_exactly() {
        // Verified outcome: the clean accumulator, 8^3 = 512 cases.
        let (spec, mc) = setup();
        let cfg = VerifyConfig {
            input_bits: 3,
            packets: 3,
            relevant_containers: vec![0],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            ..VerifyConfig::default()
        };
        let mut reference = accumulator_spec();
        let scalar = verify_bounded(&spec, &mc, OptLevel::Fused, &mut reference, &cfg).unwrap();
        assert_eq!(scalar, VerifyOutcome::Verified { cases: 512 });
        for lanes in [1usize, 8, 64] {
            let cfg = VerifyConfig {
                lanes,
                ..cfg.clone()
            };
            let mut reference = accumulator_spec();
            let swept = verify_bounded(&spec, &mc, OptLevel::Fused, &mut reference, &cfg).unwrap();
            assert_eq!(swept, scalar, "width {lanes}");
        }

        // CounterExample outcome: the off-by-one threshold, 2^16 cases so
        // enumeration has to work through plenty of agreeing lanes first.
        let (spec, mc) = threshold_setup();
        let cfg = VerifyConfig {
            input_bits: 8,
            packets: 2,
            relevant_containers: vec![0],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            ..VerifyConfig::default()
        };
        let mut reference = threshold_reference();
        let scalar = verify_bounded(&spec, &mc, OptLevel::Fused, &mut reference, &cfg).unwrap();
        let VerifyOutcome::CounterExample {
            input, minimized, ..
        } = &scalar
        else {
            panic!("expected counterexample, got {scalar:?}");
        };
        assert_eq!(input.phvs[0].get(0), 3);
        let scalar_class = minimized.as_ref().expect("minimized").verdict.class();
        for lanes in [1usize, 8, 64] {
            let cfg = VerifyConfig {
                lanes,
                ..cfg.clone()
            };
            let mut reference = threshold_reference();
            let swept = verify_bounded(&spec, &mc, OptLevel::Fused, &mut reference, &cfg).unwrap();
            assert_eq!(swept, scalar, "width {lanes}");
            let VerifyOutcome::CounterExample { minimized, .. } = &swept else {
                unreachable!("equality above");
            };
            assert_eq!(
                minimized.as_ref().expect("minimized").verdict.class(),
                scalar_class,
                "width {lanes}: minimized verdict class"
            );
        }
    }

    #[test]
    fn lane_swept_rejects_non_fused_levels_and_bad_widths() {
        let (spec, mc) = setup();
        let base = VerifyConfig {
            input_bits: 2,
            packets: 1,
            relevant_containers: vec![0],
            observable: Some(vec![1]),
            ..VerifyConfig::default()
        };
        let cfg = VerifyConfig {
            lanes: 8,
            ..base.clone()
        };
        let mut reference = accumulator_spec();
        let err =
            verify_bounded(&spec, &mc, OptLevel::SccInline, &mut reference, &cfg).unwrap_err();
        assert!(err.to_string().contains("fused"), "{err}");
        let cfg = VerifyConfig {
            lanes: 7,
            ..base.clone()
        };
        let err = verify_bounded(&spec, &mc, OptLevel::Fused, &mut reference, &cfg).unwrap_err();
        assert!(err.to_string().contains("lane width"), "{err}");
        // The budget guard still applies, with the same "shrink" hint.
        let cfg = VerifyConfig {
            lanes: 8,
            input_bits: 32,
            max_cases: 1_000,
            ..base.clone()
        };
        let err = verify_bounded(&spec, &mc, OptLevel::Fused, &mut reference, &cfg).unwrap_err();
        assert!(err.to_string().contains("shrink"), "{err}");
        // Bits past even the lifted wall are rejected, not clamped.
        let cfg = VerifyConfig {
            lanes: 8,
            input_bits: 33,
            max_cases: u64::MAX,
            ..base
        };
        let err = verify_bounded(&spec, &mc, OptLevel::Fused, &mut reference, &cfg).unwrap_err();
        assert!(err.to_string().contains("32-bit"), "{err}");
    }

    /// An allocation-free accumulator reference for the full-width proof:
    /// the default `process`/`state` path allocates two `Vec`s per case,
    /// which at 2^32 cases is the difference between minutes and hours.
    struct AccSpec {
        state: u32,
    }

    impl Specification for AccSpec {
        fn reset(&mut self) {
            self.state = 0;
        }
        fn process(&mut self, input: &Phv) -> Phv {
            let old = self.state;
            self.state = self.state.wrapping_add(input.get(0));
            Phv::new(vec![input.get(0), old])
        }
        fn state(&self) -> Vec<druzhba_core::Value> {
            vec![self.state]
        }
        fn process_into(&mut self, input: &Phv, out: &mut Phv) {
            let old = self.state;
            self.state = self.state.wrapping_add(input.get(0));
            out.set(0, input.get(0));
            out.set(1, old);
        }
        fn state_into(&mut self, out: &mut Vec<druzhba_core::Value>) {
            out.clear();
            out.push(self.state);
        }
    }

    /// The acceptance-criterion proof: lane-swept enumeration verifies a
    /// program over its **entire 32-bit input domain** — all 2^32 single-
    /// packet traces — past the scalar path's 31-bit wall, within an
    /// explicit budget. (The workspace compiles dsim's tests with
    /// `opt-level = 2` precisely so this sweep stays in test-suite
    /// territory; see the root `Cargo.toml` profile overrides.)
    #[test]
    fn lane_swept_proves_full_32_bit_domain() {
        let (spec, mc) = setup();
        let cfg = VerifyConfig {
            input_bits: 32,
            packets: 1,
            relevant_containers: vec![0],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            max_cases: 1 << 32,
            lanes: 64,
        };
        // Scalar mode refuses this domain outright.
        let mut reference = AccSpec { state: 0 };
        let scalar_cfg = VerifyConfig {
            lanes: 0,
            ..cfg.clone()
        };
        let err =
            verify_bounded(&spec, &mc, OptLevel::Fused, &mut reference, &scalar_cfg).unwrap_err();
        assert!(err.to_string().contains("31-bit"), "{err}");
        // The swept mode proves it exhaustively.
        let outcome = verify_bounded(&spec, &mc, OptLevel::Fused, &mut reference, &cfg).unwrap();
        assert_eq!(outcome, VerifyOutcome::Verified { cases: 1 << 32 });
    }
}
