//! Machine-code fault injection.
//!
//! The paper's case study (§5.2) surfaces two classes of bad machine code:
//! programs *missing pairs* (incompatible with the pipeline) and programs
//! whose values produce *wrong behaviour* (caught as trace mismatches).
//! This module manufactures both kinds of faults from a known-good program,
//! so the test suite can verify that the fuzzing workflow actually detects
//! them — a tester that never fires is worse than no tester.

use druzhba_core::{MachineCode, ValueGen};
use druzhba_dgen::{expected_machine_code, PipelineSpec};

/// A description of an injected fault, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// A pair was deleted from the program.
    RemovedPair { name: String },
    /// A pair's value was replaced (still within the primitive's domain).
    MutatedValue { name: String, old: u32, new: u32 },
    /// A pair's value was set outside the primitive's domain.
    OutOfRangeValue { name: String, new: u32 },
    /// A full-width immediate was set to the hostile sentinel
    /// ([`druzhba_core::hostile::HOSTILE_TRAP_VALUE`]): still in-domain —
    /// so it survives validation and static screening — but every backend
    /// that builds the program panics deterministically. Models a
    /// compiler crash on valid input.
    HostileTrap { name: String, old: u32 },
}

/// The class of a [`Fault`], without its concrete location/values. Hunt
/// campaigns seed mutants per class and report detection per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A pair deleted from the program (§5.2 "missing machine code pairs").
    RemovedPair,
    /// An in-domain value replacement (wrong behaviour, buildable).
    MutatedValue,
    /// An out-of-domain value (rejected at pipeline generation).
    OutOfRangeValue,
    /// The in-domain hostile sentinel that crashes every backend build
    /// (detected as a `backend_panic` verdict, never as an abort).
    HostileTrap,
}

impl FaultKind {
    /// All fault classes, in campaign order. The first three are the
    /// behavioural classes the paper's case study motivates; the fourth
    /// exercises the runtime's panic isolation.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::RemovedPair,
        FaultKind::MutatedValue,
        FaultKind::OutOfRangeValue,
        FaultKind::HostileTrap,
    ];

    /// The three behavioural classes (everything but the hostile trap) —
    /// what detection-power comparisons like the greybox-vs-random bench
    /// race over, where a guaranteed panic would only add noise.
    pub const BEHAVIORAL: [FaultKind; 3] = [
        FaultKind::RemovedPair,
        FaultKind::MutatedValue,
        FaultKind::OutOfRangeValue,
    ];

    /// Stable snake_case label for machine-readable reports.
    pub fn key(self) -> &'static str {
        match self {
            FaultKind::RemovedPair => "removed_pair",
            FaultKind::MutatedValue => "mutated_value",
            FaultKind::OutOfRangeValue => "out_of_range_value",
            FaultKind::HostileTrap => "hostile_trap",
        }
    }

    /// Inverse of [`FaultKind::key`], for checkpoint decoding.
    pub fn from_key(key: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.key() == key)
    }
}

impl Fault {
    /// This fault's class.
    pub fn kind(&self) -> FaultKind {
        match self {
            Fault::RemovedPair { .. } => FaultKind::RemovedPair,
            Fault::MutatedValue { .. } => FaultKind::MutatedValue,
            Fault::OutOfRangeValue { .. } => FaultKind::OutOfRangeValue,
            Fault::HostileTrap { .. } => FaultKind::HostileTrap,
        }
    }

    /// The machine-code pair the fault targets.
    pub fn name(&self) -> &str {
        match self {
            Fault::RemovedPair { name }
            | Fault::MutatedValue { name, .. }
            | Fault::OutOfRangeValue { name, .. }
            | Fault::HostileTrap { name, .. } => name,
        }
    }

    /// Re-apply this fault to (freshly compiled) machine code — the
    /// program-level minimization loop recompiles reduced programs and
    /// needs the *same* fault re-injected by pair name to decide whether
    /// a reduction still reproduces. Returns `None` when the target pair
    /// does not exist in `mc` (the reduction compiled the fault site
    /// away), which callers treat as "does not reproduce".
    pub fn apply(&self, mc: &MachineCode) -> Option<MachineCode> {
        let mut out = mc.clone();
        match self {
            Fault::RemovedPair { name } => {
                mc.try_get(name)?;
                out.remove(name);
            }
            Fault::MutatedValue { name, new, .. } | Fault::OutOfRangeValue { name, new } => {
                mc.try_get(name)?;
                out.set(name.clone(), *new);
            }
            Fault::HostileTrap { name, .. } => {
                mc.try_get(name)?;
                out.set(name.clone(), druzhba_core::hostile::HOSTILE_TRAP_VALUE);
            }
        }
        Some(out)
    }
}

/// Deterministic generator of faulty machine-code variants.
#[derive(Debug)]
pub struct FaultInjector {
    gen: ValueGen,
}

impl FaultInjector {
    /// A fault injector with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            gen: ValueGen::new(seed, 32),
        }
    }

    /// Inject one fault of the given class. [`FaultKind::RemovedPair`]
    /// always succeeds; the other two return `None` when the program has
    /// no suitable target (mutation targets *live* pairs, see
    /// [`FaultInjector::mutate_live_value`]).
    pub fn inject(
        &mut self,
        spec: &PipelineSpec,
        mc: &MachineCode,
        kind: FaultKind,
    ) -> Option<(MachineCode, Fault)> {
        match kind {
            FaultKind::RemovedPair => Some(self.remove_random_pair(mc)),
            FaultKind::MutatedValue => self.mutate_live_value(spec, mc),
            FaultKind::OutOfRangeValue => self.out_of_range_value(spec, mc),
            FaultKind::HostileTrap => self.hostile_trap(spec, mc),
        }
    }

    /// Remove one randomly chosen pair (the paper's "missing machine code
    /// pairs" failure).
    pub fn remove_random_pair(&mut self, mc: &MachineCode) -> (MachineCode, Fault) {
        let names: Vec<String> = mc.names().map(str::to_string).collect();
        let idx = self.gen.value_below(names.len() as u32) as usize;
        let name = names[idx].clone();
        let mut out = mc.clone();
        out.remove(&name);
        (out, Fault::RemovedPair { name })
    }

    /// Mutate one randomly chosen pair to a *different* in-domain value.
    ///
    /// Returns `None` if no primitive has more than one legal value (then
    /// every in-domain mutation would be a no-op).
    pub fn mutate_random_value(
        &mut self,
        spec: &PipelineSpec,
        mc: &MachineCode,
    ) -> Option<(MachineCode, Fault)> {
        let expected = expected_machine_code(spec);
        let mutable: Vec<_> = expected
            .iter()
            .filter(|(_, domain)| domain.bound() > 1)
            .collect();
        if mutable.is_empty() {
            return None;
        }
        let (name, domain) = mutable[self.gen.value_below(mutable.len() as u32) as usize];
        let old = mc.try_get(name)?;
        let bound = domain.bound().min(1 << 16) as u32;
        let mut new = self.gen.value_below(bound);
        if new == old {
            new = (new + 1) % bound;
        }
        let mut out = mc.clone();
        out.set(name.clone(), new);
        Some((
            out,
            Fault::MutatedValue {
                name: name.clone(),
                old,
                new,
            },
        ))
    }

    /// Mutate one randomly chosen *live* pair — a pair the compiler
    /// programmed to a nonzero value — to a different in-domain value.
    ///
    /// Most of a grid's machine code is dead (unused ALUs, untaken branches
    /// of opcode-dispatched atoms), so a uniformly random mutation is
    /// usually behaviourally neutral. The compiler only emits nonzero
    /// values for primitives the program actually exercises, which makes
    /// nonzero pairs the semantically loaded targets — the ones a mutation
    /// campaign must be able to detect.
    ///
    /// Returns `None` if no live pair has more than one legal value.
    pub fn mutate_live_value(
        &mut self,
        spec: &PipelineSpec,
        mc: &MachineCode,
    ) -> Option<(MachineCode, Fault)> {
        let expected = expected_machine_code(spec);
        let live: Vec<_> = expected
            .iter()
            .filter(|(name, domain)| domain.bound() > 1 && mc.try_get(name).is_some_and(|v| v != 0))
            .collect();
        if live.is_empty() {
            return None;
        }
        let (name, domain) = live[self.gen.value_below(live.len() as u32) as usize];
        let old = mc.try_get(name)?;
        let bound = domain.bound().min(1 << 16) as u32;
        let mut new = self.gen.value_below(bound);
        if new == old {
            new = (new + 1) % bound;
        }
        let mut out = mc.clone();
        out.set(name.clone(), new);
        Some((
            out,
            Fault::MutatedValue {
                name: name.clone(),
                old,
                new,
            },
        ))
    }

    /// Set one randomly chosen *choice* primitive (mux or opcode) out of
    /// its domain.
    pub fn out_of_range_value(
        &mut self,
        spec: &PipelineSpec,
        mc: &MachineCode,
    ) -> Option<(MachineCode, Fault)> {
        let expected = expected_machine_code(spec);
        let choices: Vec<_> = expected
            .iter()
            .filter(|(_, d)| matches!(d, druzhba_alu_dsl::HoleDomain::Choice(_)))
            .collect();
        if choices.is_empty() {
            return None;
        }
        let (name, domain) = choices[self.gen.value_below(choices.len() as u32) as usize];
        let new = domain.bound() as u32;
        let mut out = mc.clone();
        out.set(name.clone(), new);
        Some((
            out,
            Fault::OutOfRangeValue {
                name: name.clone(),
                new,
            },
        ))
    }

    /// Plant the hostile sentinel into one randomly chosen full-width
    /// (`Bits(32)`) immediate hole: the program stays in-domain, so it
    /// passes validation and static screening, but every backend build
    /// panics deterministically ([`druzhba_core::hostile`]).
    ///
    /// Returns `None` if the grid has no hole wide enough to represent
    /// the sentinel (ordinary value mutation is capped at 16 bits, so the
    /// two fault populations can never collide).
    pub fn hostile_trap(
        &mut self,
        spec: &PipelineSpec,
        mc: &MachineCode,
    ) -> Option<(MachineCode, Fault)> {
        let expected = expected_machine_code(spec);
        let wide: Vec<_> = expected
            .iter()
            .filter(|(_, d)| matches!(d, druzhba_alu_dsl::HoleDomain::Bits(b) if *b >= 32))
            .collect();
        if wide.is_empty() {
            return None;
        }
        let (name, _) = wide[self.gen.value_below(wide.len() as u32) as usize];
        let old = mc.try_get(name)?;
        let mut out = mc.clone();
        out.set(name.clone(), druzhba_core::hostile::HOSTILE_TRAP_VALUE);
        Some((
            out,
            Fault::HostileTrap {
                name: name.clone(),
                old,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use druzhba_alu_dsl::atoms::atom;
    use druzhba_core::PipelineConfig;
    use druzhba_dgen::{OptLevel, Pipeline};

    fn setup() -> (PipelineSpec, MachineCode) {
        let spec = PipelineSpec::new(
            PipelineConfig::new(2, 2),
            atom("pred_raw").unwrap(),
            atom("stateless_arith").unwrap(),
        )
        .unwrap();
        let mc = MachineCode::from_pairs(
            expected_machine_code(&spec)
                .into_iter()
                .map(|(n, _)| (n, 0)),
        );
        (spec, mc)
    }

    #[test]
    fn removed_pair_always_rejected_by_dgen() {
        let (spec, mc) = setup();
        let mut inj = FaultInjector::new(1);
        for _ in 0..20 {
            let (bad, fault) = inj.remove_random_pair(&mc);
            assert_eq!(bad.len(), mc.len() - 1);
            let err = Pipeline::generate(&spec, &bad, OptLevel::SccInline).unwrap_err();
            assert!(err.is_incompatibility(), "{fault:?} -> {err}");
        }
    }

    #[test]
    fn out_of_range_always_rejected_by_dgen() {
        let (spec, mc) = setup();
        let mut inj = FaultInjector::new(2);
        for _ in 0..20 {
            let (bad, _) = inj.out_of_range_value(&spec, &mc).unwrap();
            let err = Pipeline::generate(&spec, &bad, OptLevel::Scc).unwrap_err();
            assert!(err.is_incompatibility());
        }
    }

    #[test]
    fn mutation_produces_valid_but_different_program() {
        let (spec, mc) = setup();
        let mut inj = FaultInjector::new(3);
        for _ in 0..20 {
            let (bad, fault) = inj.mutate_random_value(&spec, &mc).unwrap();
            // Still buildable: mutation stays in-domain.
            Pipeline::generate(&spec, &bad, OptLevel::SccInline).unwrap();
            match fault {
                Fault::MutatedValue { old, new, .. } => assert_ne!(old, new),
                other => panic!("unexpected fault: {other:?}"),
            }
            assert_ne!(bad, mc);
        }
    }

    #[test]
    fn live_mutation_targets_programmed_pairs() {
        let (spec, mut mc) = setup();
        // Program a couple of live pairs the way a compiler would.
        mc.set("output_mux_phv_0_0", 2);
        mc.set("stateful_alu_0_0_const_0", 7);
        let mut inj = FaultInjector::new(11);
        for _ in 0..20 {
            let (bad, fault) = inj.mutate_live_value(&spec, &mc).unwrap();
            let Fault::MutatedValue { name, old, new } = &fault else {
                panic!("unexpected fault: {fault:?}");
            };
            assert_ne!(old, new);
            assert_ne!(*old, 0, "mutation must target a live (nonzero) pair");
            assert_eq!(mc.try_get(name), Some(*old));
            // Still buildable: the mutation stays in-domain.
            Pipeline::generate(&spec, &bad, OptLevel::SccInline).unwrap();
        }
    }

    #[test]
    fn live_mutation_without_live_pairs_is_none() {
        let (spec, mc) = setup(); // all-zero program: nothing is live
        assert!(FaultInjector::new(1)
            .mutate_live_value(&spec, &mc)
            .is_none());
    }

    #[test]
    fn kind_and_name_accessors() {
        let f = Fault::MutatedValue {
            name: "x".into(),
            old: 1,
            new: 2,
        };
        assert_eq!(f.kind(), FaultKind::MutatedValue);
        assert_eq!(f.kind().key(), "mutated_value");
        assert_eq!(f.name(), "x");
        assert_eq!(FaultKind::ALL.len(), 4);
        assert_eq!(FaultKind::BEHAVIORAL.len(), 3);
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_key(kind.key()), Some(kind));
        }
        assert_eq!(FaultKind::from_key("nonsense"), None);
    }

    #[test]
    fn hostile_trap_is_valid_but_panics_every_backend() {
        let (spec, mc) = setup();
        let mut inj = FaultInjector::new(13);
        let (bad, fault) = inj.hostile_trap(&spec, &mc).unwrap();
        let Fault::HostileTrap { name, .. } = &fault else {
            panic!("unexpected fault: {fault:?}");
        };
        assert_eq!(
            bad.try_get(name),
            Some(druzhba_core::hostile::HOSTILE_TRAP_VALUE)
        );
        // In-domain: validation accepts the program...
        assert!(druzhba_dgen::pipeline::validate_machine_code(&spec, &bad).is_empty());
        // ...but every backend build panics (deterministically).
        for opt in OptLevel::ALL {
            let caught = std::panic::catch_unwind(|| Pipeline::generate(&spec, &bad, opt));
            assert!(caught.is_err(), "{opt:?} must trip the trap");
        }
    }

    #[test]
    fn inject_dispatches_by_kind() {
        let (spec, mut mc) = setup();
        mc.set("output_mux_phv_0_0", 1);
        let mut inj = FaultInjector::new(5);
        for kind in FaultKind::ALL {
            let (_, fault) = inj.inject(&spec, &mc, kind).unwrap();
            assert_eq!(fault.kind(), kind);
        }
    }

    #[test]
    fn injection_is_deterministic() {
        let (spec, mc) = setup();
        let a = FaultInjector::new(7)
            .mutate_random_value(&spec, &mc)
            .unwrap();
        let b = FaultInjector::new(7)
            .mutate_random_value(&spec, &mc)
            .unwrap();
        assert_eq!(a.1, b.1);
    }
}
