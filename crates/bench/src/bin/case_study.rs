//! Reproduce the paper's §5.2 case study: using Druzhba to test a
//! program-synthesis-based compiler.
//!
//! The paper tested "over 120 Chipmunk machine code programs", all correct,
//! and additionally observed 8 failures: 2 from *missing machine code
//! pairs* (the pipeline's output multiplexers were left unprogrammed) and
//! the rest from machine code valid only for a *limited range of values*
//! (synthesis did not satisfy 10-bit inputs).
//!
//! This harness regenerates that campaign:
//!
//! 1. every Table 1 program is compiled on its own grid plus nine enlarged
//!    grid variants (12 × 10 = 120 distinct machine-code programs), each
//!    validated by fuzzing against its specification;
//! 2. two programs are corrupted by deleting output-mux pairs (failure
//!    class 1);
//! 3. six programs are recompiled with a deliberately limited-range
//!    verifier (2-bit inputs) and fuzzed at the paper's 10-bit inputs
//!    (failure class 2) — mismatches are expected but not guaranteed for
//!    every program (some programs have no range-sensitive guards), which
//!    the report records faithfully.
//!
//! Every mismatch is reported with its delta-debugged counterexample (the
//! failing 5000-packet trace reduced to the few packets and small values
//! that actually matter), the way the hunt campaign reports divergences.
//!
//! Usage: `cargo run -p druzhba-bench --release --bin case_study`

use druzhba_bench::compile_variant;
use druzhba_chipmunk::{compile, SynthConfig};
use druzhba_dgen::OptLevel;
use druzhba_dsim::fault::FaultInjector;
use druzhba_dsim::minimize::MinimizedCounterExample;
use druzhba_dsim::testing::{fuzz_test, Verdict};
use druzhba_programs::PROGRAMS;

/// One-line rendering of a minimized counterexample for the report.
fn minimized_line(mce: &MinimizedCounterExample) -> String {
    let packets: Vec<String> = mce.input.phvs.iter().map(|p| p.to_string()).collect();
    format!(
        "minimized to {}/{} packet(s): [{}]",
        mce.packets(),
        mce.original_packets,
        packets.join(", ")
    )
}

fn main() {
    let mut correct = 0usize;
    let mut incompatible = 0usize;
    let mut mismatches = 0usize;

    // Phase 1: the campaign of correct machine-code programs.
    println!("== Phase 1: compiler-generated machine code (grid variants) ==");
    let variants: [(usize, usize); 10] = [
        (0, 0),
        (1, 0),
        (0, 1),
        (1, 1),
        (2, 0),
        (0, 2),
        (2, 1),
        (1, 2),
        (2, 2),
        (3, 1),
    ];
    for def in &PROGRAMS {
        let mut per_program = 0;
        for &(dd, dw) in &variants {
            match compile_variant(def, dd, dw) {
                Ok(compiled) => {
                    let mut spec = def.interpreter_spec(&compiled);
                    let report = fuzz_test(
                        &compiled.pipeline_spec,
                        &compiled.machine_code,
                        OptLevel::SccInline,
                        &mut spec,
                        &def.fuzz_config(&compiled, 2_000),
                    );
                    if report.passed() {
                        correct += 1;
                        per_program += 1;
                    } else {
                        mismatches += 1;
                        println!(
                            "  UNEXPECTED mismatch: {} at +({dd},{dw}): {:?}",
                            def.name, report.verdict
                        );
                        if let Some(mce) = &report.minimized {
                            println!("    {}", minimized_line(mce));
                        }
                    }
                }
                Err(e) => println!("  {} at +({dd},{dw}) did not compile: {e}", def.name),
            }
        }
        println!("  {:<20} {per_program}/10 variants validated", def.name);
    }
    println!("Machine code programs determined to be correct: {correct}\n");

    // Phase 2: missing machine code pairs (the paper's first failure
    // class: "2 failures were due to missing machine code pairs ... to
    // program the behavior of the pipeline's output multiplexers").
    println!("== Phase 2: missing machine-code pairs ==");
    for name in ["sampling", "rcp"] {
        let def = druzhba_programs::by_name(name).unwrap();
        let compiled = def.compile_cached().unwrap();
        // Remove an output-mux pair, exactly as in the paper.
        let victim = compiled
            .machine_code
            .names()
            .find(|n| n.starts_with("output_mux_phv_"))
            .unwrap()
            .to_string();
        let mut bad = compiled.machine_code.clone();
        bad.remove(&victim);
        let mut spec = def.interpreter_spec(&compiled);
        let report = fuzz_test(
            &compiled.pipeline_spec,
            &bad,
            OptLevel::SccInline,
            &mut spec,
            &def.fuzz_config(&compiled, 1_000),
        );
        match &report.verdict {
            Verdict::Incompatible(e) => {
                incompatible += 1;
                println!("  {name}: removed `{victim}` -> detected: {e}");
            }
            other => println!("  {name}: UNDETECTED ({other:?})"),
        }
    }
    // Also demonstrate random structural fault injection.
    let def = druzhba_programs::by_name("conga").unwrap();
    let compiled = def.compile_cached().unwrap();
    let mut injector = FaultInjector::new(7);
    let (bad, fault) = injector.remove_random_pair(&compiled.machine_code);
    let mut spec = def.interpreter_spec(&compiled);
    let report = fuzz_test(
        &compiled.pipeline_spec,
        &bad,
        OptLevel::SccInline,
        &mut spec,
        &def.fuzz_config(&compiled, 1_000),
    );
    println!(
        "  conga: random fault {fault:?} -> {}",
        if matches!(report.verdict, Verdict::Incompatible(_)) {
            "detected"
        } else {
            "UNDETECTED"
        }
    );
    println!();

    // Phase 3: machine code valid only for a limited input range ("the
    // synthesis engine failed to find machine code to satisfy 10-bit
    // inputs ... only returning machine code that only satisfied a limited
    // range of values").
    println!("== Phase 3: limited-range machine code (2-bit-verified compiler, 10-bit fuzzing) ==");
    let mut limited_range_failures = 0usize;
    for def in PROGRAMS.iter() {
        let mut cfg = def.compiler_config();
        cfg.synth = SynthConfig {
            verify_bits: 2,
            ..SynthConfig::default()
        };
        match compile(&def.parse(), &cfg) {
            Ok(compiled) => {
                let mut spec = def.interpreter_spec(&compiled);
                let mut fuzz_cfg = def.fuzz_config(&compiled, 5_000);
                fuzz_cfg.input_bits = 10;
                let report = fuzz_test(
                    &compiled.pipeline_spec,
                    &compiled.machine_code,
                    OptLevel::SccInline,
                    &mut spec,
                    &fuzz_cfg,
                );
                match &report.verdict {
                    Verdict::Mismatch(m) => {
                        limited_range_failures += 1;
                        println!("  {:<20} 10-bit fuzzing caught it: {m}", def.name);
                        if let Some(mce) = &report.minimized {
                            println!("  {:<20} {}", "", minimized_line(mce));
                        }
                    }
                    Verdict::Pass => println!(
                        "  {:<20} limited-range code happens to be correct at 10 bits",
                        def.name
                    ),
                    Verdict::Incompatible(e) => println!("  {:<20} incompatible: {e}", def.name),
                    Verdict::BackendPanic { payload } => {
                        println!("  {:<20} backend panicked: {payload}", def.name)
                    }
                }
            }
            Err(e) => println!("  {:<20} 2-bit compiler failed outright: {e}", def.name),
        }
    }

    println!("\n== Case study summary (paper: >120 correct, 8 failures) ==");
    println!("  correct machine-code programs : {correct}");
    println!("  missing-pair failures detected: {incompatible} + 1 random injection");
    println!("  limited-range failures caught : {limited_range_failures}");
    println!("  unexpected mismatches         : {mismatches}");
}
