//! The traffic generator.
//!
//! Paper §3.3: *"The traffic generator creates a sequence of PHVs where
//! every PHV consists of random unsigned integers."* Generation is seeded
//! and deterministic so that benchmark runs are comparable across backends
//! and fuzz failures replay from their seed.

use druzhba_core::{Phv, Trace, ValueGen};

/// Deterministic generator of random PHVs.
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    gen: ValueGen,
    phv_length: usize,
}

impl TrafficGenerator {
    /// A generator of PHVs with `phv_length` containers whose values fit in
    /// `bits` bits, from the given seed.
    pub fn new(seed: u64, phv_length: usize, bits: u32) -> Self {
        TrafficGenerator {
            gen: ValueGen::new(seed, bits),
            phv_length,
        }
    }

    /// The PHV length this generator produces.
    pub fn phv_length(&self) -> usize {
        self.phv_length
    }

    /// Generate the next PHV.
    pub fn next_phv(&mut self) -> Phv {
        Phv::new(self.gen.values(self.phv_length))
    }

    /// Generate an input trace of `n` PHVs.
    pub fn trace(&mut self, n: usize) -> Trace {
        Trace::from_phvs((0..n).map(|_| self.next_phv()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let a = TrafficGenerator::new(42, 3, 10).trace(100);
        let b = TrafficGenerator::new(42, 3, 10).trace(100);
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_differ() {
        let a = TrafficGenerator::new(1, 3, 10).trace(100);
        let b = TrafficGenerator::new(2, 3, 10).trace(100);
        assert_ne!(a, b);
    }

    #[test]
    fn respects_phv_length_and_bits() {
        let mut tg = TrafficGenerator::new(7, 5, 4);
        for _ in 0..50 {
            let phv = tg.next_phv();
            assert_eq!(phv.len(), 5);
            assert!(phv.containers().iter().all(|&v| v <= 15));
        }
    }

    #[test]
    fn trace_has_requested_length() {
        let t = TrafficGenerator::new(9, 2, 8).trace(17);
        assert_eq!(t.len(), 17);
        assert!(t.state.is_none());
    }
}
