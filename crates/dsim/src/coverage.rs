//! Coverage-guided greybox fuzzing shared by both differential stacks.
//!
//! The blind random workflows ([`crate::testing::fuzz_test`],
//! [`crate::p4::p4_fuzz_test`]) sample every input independently; FP4 and
//! Gauntlet (PAPERS.md) show that *feedback-driven* generation finds
//! deeper compiler bugs with far fewer executions. This module is that
//! feedback loop:
//!
//! 1. every differential execution records an AFL-style edge-coverage map
//!    ([`CoverageMap`], instrumented into all four ALU backends and the
//!    P4 match-action engine);
//! 2. inputs that reach new coverage (a higher hit-count *bucket* on any
//!    edge) join a seed **corpus**, keyed by the bucketized map's
//!    [`CoverageMap::signature`];
//! 3. a **power schedule** picks the next parent, weighting seeds by the
//!    rarity of the edges they cover (a seed that alone reaches an edge
//!    outweighs the crowd on well-trodden paths);
//! 4. a deterministic **mutation stack** (bit flips, boundary values,
//!    packet duplication/removal/splicing — and, on the P4 side,
//!    entry-pattern resampling and table-entry mutations) derives the
//!    child input;
//! 5. the loop runs in sharded **rounds** over
//!    [`run_sharded`]: each round, every worker
//!    fuzzes independently from the shared corpus snapshot, then the
//!    shards' discoveries are merged deterministically (shard order, then
//!    discovery order) before the next round — periodic cross-shard
//!    corpus merging without any locking.
//!
//! Everything is a pure function of `(GreyboxConfig, worker count)`: the
//! per-shard RNG streams derive from [`shard_seed`], merging is ordered,
//! and no wall-clock or pointer-dependent state participates — the same
//! seed and `--jobs` reproduce a byte-identical report.
//!
//! ```
//! use druzhba_alu_dsl::atoms::atom;
//! use druzhba_core::{MachineCode, Phv, PipelineConfig};
//! use druzhba_dgen::{expected_machine_code, OptLevel, PipelineSpec};
//! use druzhba_dsim::coverage::{greybox_fuzz_test, GreyboxConfig};
//! use druzhba_dsim::testing::ClosureSpec;
//!
//! // 1-stage accumulator (see `testing::fuzz_test`), fuzzed greybox-style.
//! let spec = PipelineSpec::new(
//!     PipelineConfig::with_phv_length(1, 1, 2),
//!     atom("raw").unwrap(),
//!     atom("stateless_mux").unwrap(),
//! )
//! .unwrap();
//! let mut mc = MachineCode::from_pairs(
//!     expected_machine_code(&spec).into_iter().map(|(n, _)| (n, 0)),
//! );
//! mc.set("output_mux_phv_0_1", 2);
//! let make_spec = || {
//!     ClosureSpec::new(
//!         0u32,
//!         |state: &mut u32, input: &Phv| {
//!             let old = *state;
//!             *state = state.wrapping_add(input.get(0));
//!             Phv::new(vec![input.get(0), old])
//!         },
//!         |s| vec![*s],
//!     )
//! };
//! let cfg = GreyboxConfig { executions: 60, workers: 2, ..GreyboxConfig::default() };
//! let report = greybox_fuzz_test(&spec, &mc, OptLevel::Fused, make_spec, None, &[], &cfg);
//! assert!(report.passed());
//! assert!(report.edges_covered > 0);
//! assert!(report.corpus_size >= 1);
//! ```

use std::time::Instant;

use druzhba_core::value::max_for_bits;
use druzhba_core::{MachineCode, Phv, Trace, Value, ValueGen};
use druzhba_dgen::mat::MatPipeline;
use druzhba_dgen::{OptLevel, Pipeline, PipelineSpec};
use druzhba_p4::exec::Interpreter;
use druzhba_p4::tables::{parse_entries, render_entry, TableEntry};

pub use druzhba_core::coverage::{bucket, edge_id, CoverageMap, COVERAGE_MAP_SIZE};

use crate::minimize::{minimize, minimize_trace_with, MinimizeConfig, MinimizedCounterExample};
use crate::p4::{materialize_pattern, p4_differential, P4Traffic, P4Workload, PatternSeed};
use crate::runtime::{catch_silent, RuntimeOptions};
use crate::snapshot;
use crate::testing::{compare_against_spec, run_sharded, shard_seed, Specification, Verdict};

// ----------------------------------------------------------------------
// Configuration and reports.
// ----------------------------------------------------------------------

/// Configuration of a greybox campaign.
///
/// The defaults favor many small executions over few large ones — the
/// opposite trade from [`crate::testing::FuzzConfig`]'s 50 000-PHV
/// batches — because the guidance signal is per *execution*: short traces
/// mutate meaningfully and diverging executions pinpoint faults cheaply.
///
/// ```
/// use druzhba_dsim::coverage::GreyboxConfig;
/// let cfg = GreyboxConfig { executions: 500, ..GreyboxConfig::default() };
/// assert_eq!(cfg.executions, 500);
/// assert!(cfg.packets < 100, "greybox favors short traces");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreyboxConfig {
    /// Total differential-execution budget across all shards.
    pub executions: usize,
    /// Packets per *initial* seed input.
    pub packets: usize,
    /// Hard cap on mutated trace length (duplication/appending stops
    /// there; shrinking may go down to one packet). `0` means the
    /// default of `4 × packets`; benchmarks comparing against fixed-size
    /// random batches pin this to `packets` for a strictly equal
    /// per-execution budget.
    pub max_packets: usize,
    /// Campaign seed: corpus seeding, scheduling draws, and every
    /// mutation derive from it.
    pub seed: u64,
    /// Bit-width cap on generated/mutated container values (the P4 side
    /// additionally caps each field at its declared width).
    pub input_bits: u32,
    /// Seed-pool capacity; when full, the lowest-energy seed is evicted.
    pub corpus_max: usize,
    /// Worker threads per round (clamped to the remaining budget).
    pub workers: usize,
    /// Executions each shard runs between corpus merges.
    pub merge_every: usize,
    /// Fresh (unmutated) traffic inputs seeded before the guided loop.
    pub initial_seeds: usize,
    /// Minimize the diverging input on failure (shared delta-debugging
    /// engine; see [`mod@crate::minimize`]).
    pub minimize: bool,
    /// SIMD lane width for the fused oracle (`0` = scalar). When nonzero
    /// and the level under test is [`OptLevel::Fused`], each execution's
    /// trace runs through the lane-batched engine
    /// ([`druzhba_dgen::LanePipeline`]) instead of per-PHV scalar
    /// processing. The lane engine is bit-identical to scalar execution
    /// (outputs, state chain, and coverage counts), so campaign reports
    /// are byte-identical across lane widths; excluded from the snapshot
    /// fingerprint for the same reason.
    pub lanes: usize,
    /// Crash-resilience options: checkpoint/resume and wall-clock budget
    /// (see [`RuntimeOptions`]). Excluded from the snapshot fingerprint,
    /// so a resumed campaign may move its checkpoint directory or change
    /// its budget without orphaning the snapshot.
    pub runtime: RuntimeOptions,
}

impl Default for GreyboxConfig {
    fn default() -> Self {
        GreyboxConfig {
            executions: 2_000,
            packets: 24,
            max_packets: 0,
            seed: 0x000D_122B,
            input_bits: 10,
            corpus_max: 64,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
            merge_every: 64,
            initial_seeds: 4,
            minimize: true,
            lanes: 0,
            runtime: RuntimeOptions::default(),
        }
    }
}

/// Report of one greybox campaign — the guided analog of
/// [`crate::testing::FuzzReport`], extended with the coverage statistics
/// the hunt JSON schema surfaces (DESIGN.md §9).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreyboxReport {
    /// Campaign seed, echoed for replay.
    pub seed: u64,
    /// Differential executions actually performed.
    pub executions: usize,
    /// Distinct coverage-map edges reached across the whole campaign.
    pub edges_covered: usize,
    /// Seed-corpus size at the end of the campaign.
    pub corpus_size: usize,
    /// Merge rounds completed (shards re-synchronized after each).
    pub rounds: usize,
    /// Execution ordinal (1-based) of the first divergence, if any —
    /// the "executions-to-first-divergence" metric `BENCH_greybox.json`
    /// compares against blind random sampling.
    pub first_divergence: Option<usize>,
    /// The verdict: `Pass` when the budget ran dry without divergence.
    pub verdict: Verdict,
    /// The diverging input trace (pre-minimization), if any.
    pub diverging_input: Option<Trace>,
    /// The mutated table entries active at the divergence (P4 campaigns
    /// with entry mutation only).
    pub diverging_entries: Option<Vec<TableEntry>>,
    /// Minimized counterexample ([`GreyboxConfig::minimize`]).
    pub minimized: Option<MinimizedCounterExample>,
    /// True if the wall-clock budget expired before the execution budget:
    /// the statistics cover only the rounds that completed.
    pub truncated: bool,
}

/// Resolve [`GreyboxConfig::max_packets`]'s `0`-means-default encoding.
fn effective_max_packets(cfg: &GreyboxConfig) -> usize {
    if cfg.max_packets == 0 {
        cfg.packets.max(1) * 4
    } else {
        cfg.max_packets.max(1)
    }
}

impl GreyboxReport {
    /// True if no divergence was found.
    pub fn passed(&self) -> bool {
        self.verdict.passed()
    }
}

// ----------------------------------------------------------------------
// The input model: seeding and mutation.
// ----------------------------------------------------------------------

/// How a workflow seeds fresh inputs and mutates corpus entries. The
/// engine is generic over this so both stacks (packet traces for the ALU
/// path; packets *plus table entries* for the P4 path) share the
/// scheduler.
pub trait InputModel: Sync {
    /// The input an oracle executes.
    type Input: Clone + Send + Sync;
    /// A fresh, unmutated input (the corpus bootstrap).
    fn seed_input(&self, rng: &mut ValueGen, packets: usize) -> Self::Input;
    /// Apply one deterministic mutation stack step in place.
    fn mutate(&self, rng: &mut ValueGen, input: &mut Self::Input);
    /// Serialize an input to a single line (no `\n`) for corpus
    /// checkpoints. [`InputModel::decode_input`] must invert this
    /// exactly — resumed campaigns replay scheduling decisions over the
    /// decoded corpus, so a lossy codec silently breaks determinism.
    fn encode_input(&self, input: &Self::Input) -> String;
    /// Parse [`InputModel::encode_input`] output; `None` rejects a
    /// corrupt or foreign line (the snapshot is then discarded).
    fn decode_input(&self, s: &str) -> Option<Self::Input>;
}

/// Packet traces serialize as `|`-separated packets of `,`-separated
/// decimal container values — compact, line-safe, and byte-stable.
fn encode_trace(trace: &Trace) -> String {
    trace
        .phvs
        .iter()
        .map(|phv| {
            (0..phv.len())
                .map(|c| phv.get(c).to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect::<Vec<_>>()
        .join("|")
}

/// Inverse of [`encode_trace`]; `None` on any malformed value.
fn decode_trace(s: &str) -> Option<Trace> {
    let mut phvs = Vec::new();
    for packet in s.split('|') {
        let values: Option<Vec<Value>> = packet.split(',').map(|v| v.parse().ok()).collect();
        phvs.push(Phv::new(values?));
    }
    Some(Trace::from_phvs(phvs))
}

/// Mutate one packet trace in place: the shared packet-level mutation
/// stack (bit flips, boundary values, redraws, cross-packet splices,
/// duplication, removal). `width_of(container)` bounds each container's
/// values; `None` containers are never touched (P4 metadata/drop flag).
fn mutate_trace(
    rng: &mut ValueGen,
    trace: &mut Trace,
    width_of: &dyn Fn(usize) -> Option<u32>,
    max_packets: usize,
    fresh_phv: &mut dyn FnMut(&mut ValueGen) -> Phv,
) {
    if trace.phvs.is_empty() {
        trace.phvs.push(fresh_phv(rng));
        return;
    }
    let pick_container = |rng: &mut ValueGen, phv_len: usize| -> Option<usize> {
        // Rejection-sample a mutable container; bounded so fully-frozen
        // layouts (all metadata) terminate.
        for _ in 0..8 {
            let c = rng.value_below(phv_len as Value) as usize;
            if width_of(c).is_some() {
                return Some(c);
            }
        }
        None
    };
    let stacked = 1 + rng.value_below(3);
    for _ in 0..stacked {
        let n = trace.phvs.len();
        let i = rng.value_below(n as Value) as usize;
        match rng.value_below(8) {
            // Bit flip within the container's width.
            0 => {
                if let Some(c) = pick_container(rng, trace.phvs[i].len()) {
                    let bits = width_of(c).unwrap_or(1).max(1);
                    let bit = rng.value_below(bits as Value);
                    let v = trace.phvs[i].get(c) ^ (1 << bit);
                    trace.phvs[i].set(c, v & max_for_bits(bits));
                }
            }
            // Boundary values: zero and the width maximum.
            1 => {
                if let Some(c) = pick_container(rng, trace.phvs[i].len()) {
                    trace.phvs[i].set(c, 0);
                }
            }
            2 => {
                if let Some(c) = pick_container(rng, trace.phvs[i].len()) {
                    let bits = width_of(c).unwrap_or(0);
                    trace.phvs[i].set(c, max_for_bits(bits));
                }
            }
            // Redraw one container uniformly.
            3 => {
                if let Some(c) = pick_container(rng, trace.phvs[i].len()) {
                    let bits = width_of(c).unwrap_or(0);
                    trace.phvs[i].set(c, rng.value() & max_for_bits(bits));
                }
            }
            // Splice: copy a container value from another packet (state
            // bugs often need the *same* value to recur).
            4 => {
                let j = rng.value_below(n as Value) as usize;
                if let Some(c) = pick_container(rng, trace.phvs[i].len()) {
                    let v = trace.phvs[j].get(c);
                    trace.phvs[i].set(c, v);
                }
            }
            // Duplicate a packet (bounded).
            5 => {
                if n < max_packets {
                    let dup = trace.phvs[i].clone();
                    trace.phvs.insert(i, dup);
                }
            }
            // Remove a packet (never below one).
            6 => {
                if n > 1 {
                    trace.phvs.remove(i);
                }
            }
            // Append a fresh packet (re-seeds entropy mid-trace).
            _ => {
                if n < max_packets {
                    let phv = fresh_phv(rng);
                    trace.phvs.push(phv);
                }
            }
        }
    }
}

/// The ALU-stack input model: traces of uniform random PHVs under a fixed
/// bit width, mutated by the shared packet stack.
pub struct AluTraceModel {
    /// PHV length of the pipeline under test.
    pub phv_length: usize,
    /// Bit-width cap on container values.
    pub input_bits: u32,
    /// Hard cap on mutated trace length.
    pub max_packets: usize,
}

impl InputModel for AluTraceModel {
    type Input = Trace;

    fn seed_input(&self, rng: &mut ValueGen, packets: usize) -> Trace {
        let seed = (u64::from(rng.value()) << 32) | u64::from(rng.value());
        crate::traffic::TrafficGenerator::new(seed, self.phv_length, self.input_bits)
            .trace(packets.max(1))
    }

    fn mutate(&self, rng: &mut ValueGen, trace: &mut Trace) {
        let bits = self.input_bits;
        let phv_length = self.phv_length;
        mutate_trace(rng, trace, &|_c| Some(bits), self.max_packets, &mut |rng| {
            Phv::new(
                (0..phv_length)
                    .map(|_| rng.value() & max_for_bits(bits))
                    .collect(),
            )
        });
    }

    fn encode_input(&self, input: &Trace) -> String {
        encode_trace(input)
    }

    fn decode_input(&self, s: &str) -> Option<Trace> {
        decode_trace(s)
    }
}

/// One greybox input on the P4 stack: a packet trace plus the table
/// entries both executions run under. Entries are only mutated when the
/// model's `mutate_entries` is on (sound because the oracle installs the
/// *same* entries on both sides — a divergence is still a compiler bug,
/// now searched over the entry space too).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct P4GreyboxInput {
    /// The packet trace (PHVs under the workload's field layout).
    pub trace: Trace,
    /// The table entries installed on *both* sides for this execution.
    pub entries: Vec<TableEntry>,
}

/// The P4-stack input model: entry-aware packets (fields resample
/// installed entry patterns, mirroring [`P4Traffic`]'s bias) and an
/// optional table-entry mutation dimension.
pub struct P4TraceModel<'a> {
    workload: &'a P4Workload,
    input_bits: u32,
    mutate_entries: bool,
    max_packets: usize,
    /// Per container: uniform-draw width (`None` = frozen metadata/drop).
    widths: Vec<Option<u32>>,
    /// Per container: entry-derived pattern templates.
    candidates: Vec<Vec<PatternSeed>>,
}

impl<'a> P4TraceModel<'a> {
    /// A model over the workload's layout and intended entries.
    pub fn new(
        workload: &'a P4Workload,
        input_bits: u32,
        mutate_entries: bool,
        max_packets: usize,
    ) -> Self {
        // P4Traffic already derives the per-container widths and pattern
        // pools; borrow its construction rather than duplicating it.
        let traffic = P4Traffic::new(workload, 0, input_bits);
        P4TraceModel {
            workload,
            input_bits,
            mutate_entries,
            max_packets,
            widths: traffic.widths.clone(),
            candidates: traffic.candidates.clone(),
        }
    }
}

impl InputModel for P4TraceModel<'_> {
    type Input = P4GreyboxInput;

    fn seed_input(&self, rng: &mut ValueGen, packets: usize) -> P4GreyboxInput {
        let seed = (u64::from(rng.value()) << 32) | u64::from(rng.value());
        P4GreyboxInput {
            trace: P4Traffic::new(self.workload, seed, self.input_bits).trace(packets.max(1)),
            entries: if self.mutate_entries {
                self.workload.entries.clone()
            } else {
                Vec::new()
            },
        }
    }

    fn mutate(&self, rng: &mut ValueGen, input: &mut P4GreyboxInput) {
        // One draw in four mutates the entry dimension when enabled; the
        // rest mutate packets.
        if self.mutate_entries && !input.entries.is_empty() && rng.value_below(4) == 0 {
            let i = rng.value_below(input.entries.len() as Value) as usize;
            let entry = &mut input.entries[i];
            let flip = 1 + rng.value_below(7);
            if !entry.args.is_empty() && rng.value_below(2) == 0 {
                let a = rng.value_below(entry.args.len() as Value) as usize;
                entry.args[a] ^= flip;
            } else if !entry.matches.is_empty() {
                let m = rng.value_below(entry.matches.len() as Value) as usize;
                entry.matches[m].value ^= flip;
            }
            return;
        }
        let widths = &self.widths;
        let candidates = &self.candidates;
        let width_of = |c: usize| widths.get(c).copied().flatten();
        let mut fresh = |rng: &mut ValueGen| -> Phv {
            Phv::new(
                (0..widths.len())
                    .map(|c| match widths[c] {
                        Some(bits) => rng.value() & max_for_bits(bits),
                        None => 0,
                    })
                    .collect(),
            )
        };
        // Half the packet mutations resample an entry pattern into a
        // matched-on field — the greybox analog of P4Traffic's bias.
        if rng.value_below(2) == 0 && !input.trace.phvs.is_empty() {
            let biased: Vec<usize> = (0..widths.len())
                .filter(|&c| widths[c].is_some() && !candidates[c].is_empty())
                .collect();
            if !biased.is_empty() {
                let c = biased[rng.value_below(biased.len() as Value) as usize];
                let p = candidates[c][rng.value_below(candidates[c].len() as Value) as usize];
                let i = rng.value_below(input.trace.phvs.len() as Value) as usize;
                let v = materialize_pattern(&p, rng);
                input.trace.phvs[i].set(c, v);
                return;
            }
        }
        mutate_trace(
            rng,
            &mut input.trace,
            &width_of,
            self.max_packets,
            &mut fresh,
        );
    }

    fn encode_input(&self, input: &P4GreyboxInput) -> String {
        // Trace, then one rendered entry per tab. Entries round-trip
        // through the entries-file grammar ([`render_entry`]), and file
        // order restores the priorities the mutation stack never touches.
        let mut out = encode_trace(&input.trace);
        for entry in &input.entries {
            out.push('\t');
            out.push_str(&render_entry(entry));
        }
        out
    }

    fn decode_input(&self, s: &str) -> Option<P4GreyboxInput> {
        let mut parts = s.split('\t');
        let trace = decode_trace(parts.next()?)?;
        let text: String = parts.map(|line| format!("{line}\n")).collect();
        let entries = parse_entries(&text).ok()?;
        Some(P4GreyboxInput { trace, entries })
    }
}

// ----------------------------------------------------------------------
// The corpus scheduler and sharded campaign loop.
// ----------------------------------------------------------------------

/// One corpus entry: the input plus the edges its execution covered.
struct Seed<I> {
    input: I,
    edges: Vec<u16>,
}

/// Rarity-weighted energy: a seed earns `256 / freq(edge)` per covered
/// edge (min 1), where `freq` counts how many corpus seeds reach the
/// edge. Seeds holding rare edges dominate the draw; integer arithmetic
/// keeps scheduling platform-independent.
fn energy<I>(seed: &Seed<I>, freq: &[u32]) -> u64 {
    1 + seed
        .edges
        .iter()
        .map(|&e| u64::from((256 / freq[e as usize].max(1)).max(1)))
        .sum::<u64>()
}

/// Draw a corpus index weighted by energy. `extra` extends the base
/// corpus (shard-local finds). Deterministic per RNG state.
fn pick_seed<I>(rng: &mut ValueGen, base: &[Seed<I>], extra: &[Seed<I>], freq: &[u32]) -> usize {
    let total: u64 = base
        .iter()
        .chain(extra.iter())
        .map(|s| energy(s, freq))
        .sum();
    // Compose a 64-bit draw from two 32-bit values; modulo bias is
    // negligible against total energies far below 2^63.
    let draw = ((u64::from(rng.value()) << 32) | u64::from(rng.value())) % total.max(1);
    let mut acc = 0u64;
    for (i, s) in base.iter().chain(extra.iter()).enumerate() {
        acc += energy(s, freq);
        if draw < acc {
            return i;
        }
    }
    base.len() + extra.len() - 1
}

/// What one shard brings back from a round.
struct ShardOutcome<I> {
    executed: usize,
    /// `(local execution index, input, verdict)` of the shard's first
    /// divergence, if any.
    divergence: Option<(usize, I, Verdict)>,
    /// Inputs that reached new coverage, with their raw per-execution
    /// maps, in discovery order.
    finds: Vec<(I, CoverageMap)>,
}

/// Statistics-and-divergence result of the generic engine.
struct SearchResult<I> {
    executions: usize,
    rounds: usize,
    corpus_size: usize,
    edges_covered: usize,
    first_divergence: Option<usize>,
    divergence: Option<(I, Verdict)>,
    truncated: bool,
}

/// Campaign state restored from a snapshot: executions so far, completed
/// merge rounds, the global coverage map, and the corpus.
type RestoredState<I> = (usize, usize, CoverageMap, Vec<Seed<I>>);

/// Lowercase hex of a byte slice (the global coverage map in snapshots).
fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Inverse of [`hex_encode`]; `None` on odd length or non-hex digits.
fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(s.get(2 * i..2 * i + 2)?, 16).ok())
        .collect()
}

/// The generic greybox loop: seed, then mutate-execute-merge rounds until
/// the budget is spent, the wall clock runs out, or a divergence appears.
/// `make_oracle` builds one oracle per worker (oracles own mutable
/// pipelines and are never shared across threads).
///
/// Crash resilience (`cfg.runtime`):
///
/// - every differential execution runs under [`catch_silent`] — the
///   oracle is built lazily *inside* the guard, so a panicking backend
///   (generation or simulation) yields [`Verdict::BackendPanic`] and ends
///   the campaign as a divergence instead of unwinding it, and the
///   possibly-corrupted oracle is never reused;
/// - at round boundaries the corpus, the global coverage accumulator and
///   the execution counters snapshot to the checkpoint directory
///   (`fingerprint` binds the snapshot to the campaign configuration);
///   resuming restores them and re-enters the round loop — per-round RNG
///   streams are a pure function of `(seed, round, shard)`, so the
///   continuation is byte-identical to an uninterrupted run;
/// - the wall-clock budget is checked at round boundaries; expiry sets
///   `truncated` and returns the statistics accumulated so far.
fn greybox_search<M, O, F>(
    model: &M,
    make_oracle: F,
    cfg: &GreyboxConfig,
    fingerprint: u64,
) -> SearchResult<M::Input>
where
    M: InputModel,
    O: FnMut(&M::Input, &mut CoverageMap) -> Verdict,
    F: Fn() -> O + Sync,
{
    let budget = cfg.executions.max(1);
    let deadline = cfg.runtime.deadline(Instant::now());
    let ckpt_dir = cfg.runtime.checkpoint_dir.clone();
    let every = cfg.runtime.effective_every();
    let mut corpus: Vec<Seed<M::Input>> = Vec::new();
    let mut global = CoverageMap::new(); // per-edge max bucket observed
    let mut freq = vec![0u32; COVERAGE_MAP_SIZE];
    let mut executions = 0usize;
    let mut rounds = 0usize;
    let mut first_divergence = None;
    let mut divergence = None;
    let mut truncated = false;

    // One guarded differential execution (see the function docs).
    let run_one = |oracle: &mut Option<O>, input: &M::Input, cov: &mut CoverageMap| -> Verdict {
        match catch_silent(|| oracle.get_or_insert_with(&make_oracle)(input, cov)) {
            Ok(verdict) => verdict,
            Err(p) => Verdict::BackendPanic { payload: p.payload },
        }
    };

    // Serialize the campaign state: counters, the raw global coverage
    // counts, then one corpus seed per line in corpus order (order is
    // load-bearing — `pick_seed` draws and eviction both walk the corpus
    // by index).
    let save_state =
        |corpus: &[Seed<M::Input>], executions: usize, rounds: usize, global: &CoverageMap| {
            let Some(dir) = ckpt_dir.as_deref() else {
                return;
            };
            let mut lines = Vec::with_capacity(corpus.len() + 2);
            lines.push(format!("executions {executions} rounds {rounds}"));
            lines.push(format!("global {}", hex_encode(global.as_bytes())));
            for seed in corpus {
                let csv = seed
                    .edges
                    .iter()
                    .map(u16::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                lines.push(format!("seed {csv} {}", model.encode_input(&seed.input)));
            }
            if let Err(e) = snapshot::save(dir, "greybox", fingerprint, &lines) {
                eprintln!("warning: failed to write greybox checkpoint: {e}");
            }
            snapshot::write_heartbeat(dir, "greybox", executions, budget, false);
        };

    // Inverse of `save_state`; `None` rejects any malformed line and the
    // campaign starts fresh (never trust a snapshot blindly).
    let parse_state = |lines: &[String]| -> Option<RestoredState<M::Input>> {
        let head = lines.first()?.strip_prefix("executions ")?;
        let (executed_txt, rounds_txt) = head.split_once(" rounds ")?;
        let executions: usize = executed_txt.parse().ok()?;
        let rounds: usize = rounds_txt.parse().ok()?;
        let global = CoverageMap::from_bytes(&hex_decode(lines.get(1)?.strip_prefix("global ")?)?)?;
        let mut corpus = Vec::new();
        for line in lines.get(2..)? {
            let rest = line.strip_prefix("seed ")?;
            let (csv, encoded) = rest.split_once(' ')?;
            let edges: Vec<u16> = if csv.is_empty() {
                Vec::new()
            } else {
                csv.split(',')
                    .map(str::parse)
                    .collect::<Result<_, _>>()
                    .ok()?
            };
            let input = model.decode_input(encoded)?;
            corpus.push(Seed { input, edges });
        }
        Some((executions, rounds, global, corpus))
    };

    let mut resumed = false;
    if cfg.runtime.resume {
        if let Some(dir) = ckpt_dir.as_deref() {
            let loaded = snapshot::load_latest(dir, "greybox", fingerprint);
            for w in &loaded.warnings {
                eprintln!("warning: {w}");
            }
            if let Some(lines) = loaded.lines {
                if let Some((e, r, g, c)) = parse_state(&lines) {
                    executions = e;
                    rounds = r;
                    global = g;
                    corpus = c;
                    for seed in &corpus {
                        for &edge in &seed.edges {
                            freq[edge as usize] += 1;
                        }
                    }
                    resumed = true;
                } else {
                    eprintln!(
                        "warning: greybox snapshot in {} is malformed; starting fresh",
                        dir.display()
                    );
                }
            }
        }
    }

    let add_seed = |corpus: &mut Vec<Seed<M::Input>>,
                    freq: &mut Vec<u32>,
                    input: M::Input,
                    cov: &CoverageMap,
                    corpus_max: usize| {
        let edges: Vec<u16> = cov.covered_edges().map(|e| e as u16).collect();
        let seed = Seed { input, edges };
        if corpus.len() >= corpus_max.max(1) {
            // Evict the lowest-energy seed (ties: lowest index) — the one
            // contributing least rarity to the schedule.
            let victim = (0..corpus.len())
                .min_by_key(|&i| (energy(&corpus[i], freq), i))
                .expect("corpus is non-empty");
            for &e in &corpus[victim].edges {
                freq[e as usize] = freq[e as usize].saturating_sub(1);
            }
            corpus.swap_remove(victim);
        }
        for &e in &seed.edges {
            freq[e as usize] += 1;
        }
        corpus.push(seed);
    };

    // Bootstrap: fresh traffic inputs, run serially (they're few).
    // Skipped on resume — snapshots only exist past the bootstrap, and
    // replaying it would double-count its executions.
    if !resumed {
        let mut oracle: Option<O> = None;
        let mut cov = CoverageMap::new();
        for i in 0..cfg.initial_seeds.max(1).min(budget) {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                truncated = true;
                break;
            }
            let mut rng = ValueGen::new(shard_seed(cfg.seed ^ 0x5EED_0000, i as u64), 32);
            let input = model.seed_input(&mut rng, cfg.packets);
            cov.clear();
            let verdict = run_one(&mut oracle, &input, &mut cov);
            executions += 1;
            if !verdict.passed() {
                first_divergence = Some(executions);
                divergence = Some((input, verdict));
                break;
            }
            if global.accumulate_buckets(&cov) || corpus.is_empty() {
                add_seed(&mut corpus, &mut freq, input, &cov, cfg.corpus_max);
            }
        }
    }

    // Guided rounds with periodic cross-shard merging.
    while divergence.is_none() && !truncated && executions < budget {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            truncated = true;
            break;
        }
        rounds += 1;
        let per_shard = cfg.merge_every.max(1);
        let remaining = budget - executions;
        let shards = cfg.workers.max(1).min(remaining.div_ceil(per_shard));
        let tasks: Vec<usize> = (0..shards)
            .map(|s| per_shard.min(remaining.saturating_sub(s * per_shard)))
            .collect();
        let corpus_ref = &corpus;
        let global_ref = &global;
        let freq_ref = &freq;
        let round = rounds as u64;
        let outcomes: Vec<ShardOutcome<M::Input>> =
            run_sharded(tasks, shards, |shard, shard_budget| {
                let mut oracle: Option<O> = None;
                let mut rng = ValueGen::new(
                    shard_seed(cfg.seed ^ 0x6B0C_5000, round << 16 | shard as u64),
                    32,
                );
                let mut local_global = global_ref.clone();
                let mut local_freq = freq_ref.to_vec();
                let mut finds: Vec<(M::Input, CoverageMap)> = Vec::new();
                let mut local_seeds: Vec<Seed<M::Input>> = Vec::new();
                let mut cov = CoverageMap::new();
                let mut divergence = None;
                let mut executed = 0;
                for k in 0..shard_budget {
                    let pick = pick_seed(&mut rng, corpus_ref, &local_seeds, &local_freq);
                    let mut input = if pick < corpus_ref.len() {
                        corpus_ref[pick].input.clone()
                    } else {
                        local_seeds[pick - corpus_ref.len()].input.clone()
                    };
                    model.mutate(&mut rng, &mut input);
                    cov.clear();
                    let verdict = run_one(&mut oracle, &input, &mut cov);
                    executed += 1;
                    if !verdict.passed() {
                        divergence = Some((k, input, verdict));
                        break;
                    }
                    if local_global.accumulate_buckets(&cov) {
                        let edges: Vec<u16> = cov.covered_edges().map(|e| e as u16).collect();
                        for &e in &edges {
                            local_freq[e as usize] += 1;
                        }
                        local_seeds.push(Seed {
                            input: input.clone(),
                            edges,
                        });
                        finds.push((input, cov.clone()));
                    }
                }
                ShardOutcome {
                    executed,
                    divergence,
                    finds,
                }
            });

        // Deterministic merge: shard order, then discovery order. A find
        // is re-validated against the *merged* accumulator so a path two
        // shards discovered concurrently joins the corpus once.
        let base = executions;
        let mut best: Option<(usize, M::Input, Verdict)> = None;
        for (s, outcome) in outcomes.into_iter().enumerate() {
            executions += outcome.executed;
            if let Some((k, input, verdict)) = outcome.divergence {
                let ordinal = base + s * per_shard + k + 1;
                if best.as_ref().is_none_or(|(o, _, _)| ordinal < *o) {
                    best = Some((ordinal, input, verdict));
                }
            }
            for (input, cov) in outcome.finds {
                if global.accumulate_buckets(&cov) {
                    add_seed(&mut corpus, &mut freq, input, &cov, cfg.corpus_max);
                }
            }
        }
        if let Some((ordinal, input, verdict)) = best {
            first_divergence = Some(ordinal);
            divergence = Some((input, verdict));
        } else if rounds.is_multiple_of(every) || executions >= budget {
            // A round boundary is a consistent cut: the merge above has
            // already folded every shard's finds in, so the snapshot is
            // exactly the state an uninterrupted run holds here.
            save_state(&corpus, executions, rounds, &global);
        }
    }
    if let Some(dir) = ckpt_dir.as_deref() {
        snapshot::write_heartbeat(dir, "greybox", executions, budget, truncated);
    }

    SearchResult {
        executions,
        rounds,
        corpus_size: corpus.len(),
        edges_covered: global.edges_covered(),
        first_divergence,
        divergence,
        truncated,
    }
}

// ----------------------------------------------------------------------
// Workflow wrappers: the two stacks.
// ----------------------------------------------------------------------

/// The configuration contribution to a greybox snapshot fingerprint:
/// every field that shapes the search, with the runtime options masked
/// out — moving a checkpoint directory or changing the wall-clock budget
/// must not orphan a snapshot. The lane width is masked for the same
/// reason: the lane engine is bit-identical to scalar execution, so
/// switching `--lanes` mid-campaign resumes the same search.
fn greybox_config_fingerprint(cfg: &GreyboxConfig) -> String {
    format!(
        "{:?}",
        GreyboxConfig {
            lanes: 0,
            runtime: RuntimeOptions::default(),
            ..cfg.clone()
        }
    )
}

/// Run a coverage-guided greybox campaign on the ALU stack: the
/// differential oracle of [`crate::testing::fuzz_test`] (generated
/// pipeline vs. specification), driven by the corpus scheduler instead of
/// independent random batches. `druzhba fuzz --greybox` wires this up.
///
/// The pipeline is generated once per worker and *reset* between
/// executions (state zeroing is part of the oracle contract), so the
/// per-execution cost is simulation, not regeneration.
pub fn greybox_fuzz_test<S, F>(
    pipeline_spec: &PipelineSpec,
    mc: &MachineCode,
    opt: OptLevel,
    make_spec: F,
    observable: Option<&[usize]>,
    state_cells: &[(usize, usize, usize)],
    cfg: &GreyboxConfig,
) -> GreyboxReport
where
    S: Specification,
    F: Fn() -> S + Sync,
{
    let model = AluTraceModel {
        phv_length: pipeline_spec.config.phv_length,
        input_bits: cfg.input_bits,
        max_packets: effective_max_packets(cfg),
    };
    let make_oracle = || {
        let mut pipeline = Pipeline::generate(pipeline_spec, mc, opt);
        if let Ok(p) = &mut pipeline {
            p.enable_coverage();
        }
        let mut reference = make_spec();
        move |input: &Trace, cov: &mut CoverageMap| -> Verdict {
            match &mut pipeline {
                Err(e) => Verdict::Incompatible(e.clone()),
                Ok(p) => {
                    p.reset();
                    p.clear_coverage();
                    // Per-PHV full traversal is property-tested equivalent
                    // to tick-accurate simulation (state is ALU-local and
                    // PHVs are FIFO), and it lets one pipeline — and its
                    // coverage map — serve every execution. With a lane
                    // width configured, the same traversal runs through
                    // the SoA lane engine (bit-identical outputs, state
                    // chain, and coverage counts; scalar fallback on
                    // non-fused levels).
                    let mut out: Vec<Phv> = input.phvs.to_vec();
                    if cfg.lanes > 0 {
                        p.process_batch_lanes(&mut out, cfg.lanes);
                    } else {
                        for x in &mut out {
                            p.process_in_place(x);
                        }
                    }
                    let actual = Trace {
                        phvs: out,
                        state: Some(p.state_snapshot()),
                    };
                    if let Some(c) = p.coverage() {
                        cov.merge(c);
                    }
                    compare_against_spec(&mut reference, input, &actual, observable, state_cells)
                }
            }
        }
    };
    let fingerprint = snapshot::fingerprint_of(&[
        "greybox-alu".to_string(),
        format!("{opt:?}"),
        mc.to_text(),
        format!("{observable:?}"),
        format!("{state_cells:?}"),
        greybox_config_fingerprint(cfg),
    ]);
    let result = greybox_search(&model, make_oracle, cfg, fingerprint);
    let (diverging_input, verdict) = match result.divergence {
        Some((input, verdict)) => (Some(input), verdict),
        None => (None, Verdict::Pass),
    };
    // Panic verdicts are never minimized: delta-debugging would rebuild
    // the backend outside the guard and re-trip the panic.
    let should_minimize =
        cfg.minimize && !verdict.passed() && !matches!(verdict, Verdict::BackendPanic { .. });
    let minimized = match (&diverging_input, should_minimize) {
        (Some(input), true) => minimize(
            pipeline_spec,
            mc,
            opt,
            &mut make_spec(),
            input,
            &MinimizeConfig {
                observable: observable.map(<[usize]>::to_vec),
                state_cells: state_cells.to_vec(),
                ..MinimizeConfig::default()
            },
        ),
        _ => None,
    };
    GreyboxReport {
        seed: cfg.seed,
        executions: result.executions,
        edges_covered: result.edges_covered,
        corpus_size: result.corpus_size,
        rounds: result.rounds,
        first_divergence: result.first_divergence,
        verdict,
        diverging_input,
        diverging_entries: None,
        minimized,
        truncated: result.truncated,
    }
}

/// Run a coverage-guided greybox campaign on the P4 stack: the
/// differential oracle of [`crate::p4::p4_fuzz_test`] (match-action
/// pipeline vs. reference interpreter), corpus-scheduled. `druzhba
/// p4-fuzz --greybox` wires this up.
///
/// Two modes:
///
/// - `mutate_entries == false` (mutant hunts): the pipeline runs
///   `entries` while the interpreter runs the workload's intended
///   entries — the injected-fault oracle. Both sides are generated once
///   per worker and reset between executions.
/// - `mutate_entries == true` (compiler-bug search): both sides run the
///   *same* entry set, which the mutation stack perturbs alongside the
///   packets; entry sets that fail validation are skipped, not reported.
pub fn p4_greybox_fuzz_test(
    workload: &P4Workload,
    entries: &[TableEntry],
    level: OptLevel,
    mutate_entries: bool,
    cfg: &GreyboxConfig,
) -> GreyboxReport {
    let model = P4TraceModel::new(
        workload,
        cfg.input_bits,
        mutate_entries,
        effective_max_packets(cfg),
    );
    let make_oracle = || {
        // The cached, reset-between-executions sides only serve the
        // fixed-entry mode; entry-mutating campaigns regenerate both
        // sides per execution and must not pay for an unused pipeline.
        let mut fixed = (!mutate_entries).then(|| {
            let mut pipeline =
                MatPipeline::generate(&workload.hlir, entries, &workload.lowering, level);
            if let Ok(p) = &mut pipeline {
                p.enable_coverage();
            }
            let mut interp = workload.interpreter();
            interp.enable_coverage();
            (pipeline, interp)
        });
        move |input: &P4GreyboxInput, cov: &mut CoverageMap| -> Verdict {
            let Some((pipeline, interp)) = fixed.as_mut() else {
                // Dynamic entries: regenerate both sides against the
                // input's (shared) entry set; invalid sets are skipped.
                let pipe = MatPipeline::generate(
                    &workload.hlir,
                    &input.entries,
                    &workload.lowering,
                    level,
                );
                let reference = Interpreter::new(&workload.hlir, &input.entries);
                let (Ok(mut pipe), Ok(mut reference)) = (pipe, reference) else {
                    return Verdict::Pass;
                };
                pipe.enable_coverage();
                reference.enable_coverage();
                let verdict = p4_differential(&mut pipe, &mut reference, &input.trace);
                if let Some(c) = pipe.coverage() {
                    cov.merge(c);
                }
                if let Some(c) = reference.coverage() {
                    cov.merge(c);
                }
                return verdict;
            };
            match pipeline {
                Err(e) => Verdict::Incompatible(e.clone()),
                Ok(p) => {
                    p.reset();
                    p.clear_coverage();
                    interp.reset();
                    interp.clear_coverage();
                    let verdict = p4_differential(p, interp, &input.trace);
                    if let Some(c) = p.coverage() {
                        cov.merge(c);
                    }
                    if let Some(c) = interp.coverage() {
                        cov.merge(c);
                    }
                    verdict
                }
            }
        }
    };
    let fingerprint = snapshot::fingerprint_of(&[
        "greybox-p4".to_string(),
        format!("{level:?}"),
        format!("{:?}", workload.hlir),
        format!("{entries:?}"),
        format!("{mutate_entries:?}"),
        greybox_config_fingerprint(cfg),
    ]);
    let result = greybox_search(&model, make_oracle, cfg, fingerprint);
    let (diverging, verdict) = match result.divergence {
        Some((input, verdict)) => (Some(input), verdict),
        None => (None, Verdict::Pass),
    };
    // See `greybox_fuzz_test`: panic verdicts are never minimized.
    let should_minimize =
        cfg.minimize && !verdict.passed() && !matches!(verdict, Verdict::BackendPanic { .. });
    let minimized = match (&diverging, should_minimize) {
        (Some(input), true) => {
            let case_entries: &[TableEntry] = if mutate_entries {
                &input.entries
            } else {
                entries
            };
            if mutate_entries {
                // Shared-entries oracle: both sides regenerate per check.
                let mut oracle = |phvs: &[Phv]| -> Verdict {
                    let pipe = MatPipeline::generate(
                        &workload.hlir,
                        case_entries,
                        &workload.lowering,
                        level,
                    );
                    let reference = Interpreter::new(&workload.hlir, case_entries);
                    let (Ok(mut pipe), Ok(mut reference)) = (pipe, reference) else {
                        return Verdict::Pass;
                    };
                    p4_differential(&mut pipe, &mut reference, &Trace::from_phvs(phvs.to_vec()))
                };
                minimize_trace_with(&mut oracle, &input.trace, 3_000)
            } else {
                crate::p4::p4_minimize(workload, entries, level, &input.trace, 3_000)
            }
        }
        _ => None,
    };
    let (diverging_input, diverging_entries) = match diverging {
        Some(input) => (Some(input.trace), mutate_entries.then_some(input.entries)),
        None => (None, None),
    };
    GreyboxReport {
        seed: cfg.seed,
        executions: result.executions,
        edges_covered: result.edges_covered,
        corpus_size: result.corpus_size,
        rounds: result.rounds,
        first_divergence: result.first_divergence,
        verdict,
        diverging_input,
        diverging_entries,
        minimized,
        truncated: result.truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::ClosureSpec;
    use druzhba_alu_dsl::atoms::atom;
    use druzhba_core::PipelineConfig;
    use druzhba_dgen::expected_machine_code;
    use druzhba_p4::lower::RmtConfig;

    fn accumulator() -> (PipelineSpec, MachineCode) {
        let spec = PipelineSpec::new(
            PipelineConfig::with_phv_length(1, 1, 2),
            atom("raw").unwrap(),
            atom("stateless_mux").unwrap(),
        )
        .unwrap();
        let mut mc = MachineCode::from_pairs(
            expected_machine_code(&spec)
                .into_iter()
                .map(|(n, _)| (n, 0)),
        );
        mc.set("output_mux_phv_0_1", 2);
        (spec, mc)
    }

    fn accumulator_spec() -> impl Specification {
        ClosureSpec::new(
            0u32,
            |state: &mut u32, input: &Phv| {
                let old = *state;
                *state = state.wrapping_add(input.get(0));
                Phv::new(vec![input.get(0), old])
            },
            |s| vec![*s],
        )
    }

    fn small_cfg() -> GreyboxConfig {
        GreyboxConfig {
            executions: 120,
            packets: 8,
            workers: 3,
            merge_every: 16,
            ..GreyboxConfig::default()
        }
    }

    #[test]
    fn clean_program_passes_and_builds_a_corpus() {
        let (spec, mc) = accumulator();
        for level in OptLevel::ALL {
            let report =
                greybox_fuzz_test(&spec, &mc, level, accumulator_spec, None, &[], &small_cfg());
            assert!(report.passed(), "{level:?}: {:?}", report.verdict);
            assert_eq!(report.executions, 120, "{level:?}");
            assert!(report.edges_covered > 0, "{level:?}");
            assert!(report.corpus_size >= 1, "{level:?}");
            assert!(report.rounds >= 1, "{level:?}");
        }
    }

    #[test]
    fn faulty_machine_code_diverges_quickly_with_minimized_ce() {
        let (spec, mut mc) = accumulator();
        // Subtract instead of add.
        mc.set("stateful_alu_0_0_arith_op_0", 1);
        let report = greybox_fuzz_test(
            &spec,
            &mc,
            OptLevel::Fused,
            accumulator_spec,
            None,
            &[],
            &small_cfg(),
        );
        assert!(!report.passed());
        let ordinal = report.first_divergence.expect("divergence ordinal");
        assert!(ordinal <= report.executions);
        assert!(report.diverging_input.is_some());
        let mce = report.minimized.expect("minimized");
        assert!(mce.packets() <= 8);
    }

    #[test]
    fn incompatible_machine_code_diverges_on_first_execution() {
        let (spec, mut mc) = accumulator();
        mc.remove("output_mux_phv_0_0");
        let report = greybox_fuzz_test(
            &spec,
            &mc,
            OptLevel::SccInline,
            accumulator_spec,
            None,
            &[],
            &small_cfg(),
        );
        assert!(matches!(report.verdict, Verdict::Incompatible(_)));
        assert_eq!(report.first_divergence, Some(1));
    }

    #[test]
    fn same_seed_and_workers_reproduce_identical_reports() {
        let (spec, mc) = accumulator();
        let run = || {
            greybox_fuzz_test(
                &spec,
                &mc,
                OptLevel::Fused,
                accumulator_spec,
                None,
                &[],
                &small_cfg(),
            )
        };
        assert_eq!(run(), run(), "greybox campaigns must be deterministic");
    }

    const PROGRAM: &str = r#"
        header_type pkt_t { fields { dst : 8; len : 16; } }
        header_type meta_t { fields { port : 8; } }
        header pkt_t pkt;
        metadata meta_t meta;
        parser start { extract(pkt); return ingress; }
        counter hits { instance_count : 4; }
        action set_port(p) { modify_field(meta.port, p); }
        action toss() { drop(); }
        action note() { count(hits, 0); add_to_field(pkt.len, 1); }
        table forward {
            reads { pkt.dst : exact; }
            actions { set_port; toss; }
            default_action : toss;
        }
        table audit { reads { meta.port : ternary; } actions { note; } }
        control ingress { apply(forward); apply(audit); }
    "#;

    const ENTRIES: &str = "forward : pkt.dst=1 => set_port(10)\n\
                           forward : pkt.dst=2 => set_port(20)\n\
                           audit : meta.port=10/0xff => note()\n";

    fn workload() -> P4Workload {
        P4Workload::parse(PROGRAM, ENTRIES, &RmtConfig::default()).unwrap()
    }

    #[test]
    fn p4_clean_workload_passes_with_and_without_entry_mutation() {
        let w = workload();
        for mutate_entries in [false, true] {
            let report = p4_greybox_fuzz_test(
                &w,
                &w.entries,
                OptLevel::Fused,
                mutate_entries,
                &small_cfg(),
            );
            assert!(
                report.passed(),
                "mutate_entries={mutate_entries}: {:?}",
                report.verdict
            );
            assert!(report.edges_covered > 0);
        }
    }

    #[test]
    fn p4_faulty_entries_detected_and_minimized() {
        let w = workload();
        let mut bad = w.entries.clone();
        bad[0].args[0] = 11; // forward to the wrong port
        let report = p4_greybox_fuzz_test(&w, &bad, OptLevel::SccInline, false, &small_cfg());
        assert!(!report.passed());
        assert!(report.first_divergence.is_some());
        let mce = report.minimized.expect("minimized");
        assert_eq!(mce.packets(), 1, "one packet suffices");
        // The minimized packet reproduces through the plain case runner.
        let v = crate::p4::run_p4_case(&w, &bad, OptLevel::SccInline, &mce.input);
        assert_eq!(v.class(), mce.verdict.class());
    }

    #[test]
    fn p4_campaign_is_deterministic() {
        let w = workload();
        let run = || p4_greybox_fuzz_test(&w, &w.entries, OptLevel::Fused, true, &small_cfg());
        assert_eq!(run(), run());
    }

    #[test]
    fn coverage_guidance_grows_the_corpus_past_bootstrap() {
        // Guidance is only real if mutation keeps discovering inputs with
        // new coverage after the bootstrap seeds: the corpus must grow
        // (small programs saturate their *edge set* quickly, but longer
        // and rarer paths keep escalating hit-count buckets).
        let w = workload();
        let narrow = GreyboxConfig {
            executions: 4, // bootstrap only
            packets: 4,
            initial_seeds: 4,
            workers: 1,
            ..GreyboxConfig::default()
        };
        let wide = GreyboxConfig {
            executions: 300,
            packets: 4,
            initial_seeds: 4,
            workers: 2,
            merge_every: 32,
            ..GreyboxConfig::default()
        };
        let base = p4_greybox_fuzz_test(&w, &w.entries, OptLevel::Fused, true, &narrow);
        let guided = p4_greybox_fuzz_test(&w, &w.entries, OptLevel::Fused, true, &wide);
        assert!(guided.edges_covered >= base.edges_covered);
        assert!(
            guided.corpus_size > base.corpus_size,
            "guided corpus: {} vs bootstrap: {}",
            guided.corpus_size,
            base.corpus_size
        );
    }

    #[test]
    fn input_codecs_round_trip() {
        let alu = AluTraceModel {
            phv_length: 3,
            input_bits: 8,
            max_packets: 16,
        };
        let mut rng = ValueGen::new(7, 32);
        let mut trace = alu.seed_input(&mut rng, 5);
        for _ in 0..32 {
            alu.mutate(&mut rng, &mut trace);
        }
        let decoded = alu.decode_input(&alu.encode_input(&trace)).unwrap();
        assert_eq!(decoded, trace);

        let w = workload();
        let p4 = P4TraceModel::new(&w, 8, true, 16);
        let mut input = p4.seed_input(&mut rng, 5);
        for _ in 0..32 {
            p4.mutate(&mut rng, &mut input);
        }
        assert!(!input.entries.is_empty());
        let decoded = p4.decode_input(&p4.encode_input(&input)).unwrap();
        assert_eq!(decoded, input);

        assert!(alu.decode_input("1,2|oops").is_none());
        assert!(p4.decode_input("1,2\tnot an entry").is_none());
    }

    #[test]
    fn checkpointed_campaign_resumes_to_identical_report() {
        let (spec, mc) = accumulator();
        let dir = std::env::temp_dir().join(format!("druzhba-greybox-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let run = |runtime: RuntimeOptions| {
            let cfg = GreyboxConfig {
                runtime,
                ..small_cfg()
            };
            greybox_fuzz_test(
                &spec,
                &mc,
                OptLevel::Fused,
                accumulator_spec,
                None,
                &[],
                &cfg,
            )
        };
        let clean = run(RuntimeOptions::default());
        let checkpointed = run(RuntimeOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 1,
            ..RuntimeOptions::default()
        });
        assert_eq!(
            checkpointed, clean,
            "checkpointing must not perturb the campaign"
        );
        // Simulate dying before the last checkpoint finished: drop the
        // current snapshot so resume falls back to the previous round
        // boundary and re-runs the tail of the campaign.
        std::fs::remove_file(snapshot::current_path(&dir, "greybox")).unwrap();
        let resumed = run(RuntimeOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 1,
            resume: true,
            ..RuntimeOptions::default()
        });
        assert_eq!(
            resumed, clean,
            "a resumed campaign must reproduce the uninterrupted report"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_wallclock_budget_truncates_cleanly() {
        let (spec, mc) = accumulator();
        let cfg = GreyboxConfig {
            runtime: RuntimeOptions {
                budget_secs: Some(0),
                ..RuntimeOptions::default()
            },
            ..small_cfg()
        };
        let report = greybox_fuzz_test(
            &spec,
            &mc,
            OptLevel::Fused,
            accumulator_spec,
            None,
            &[],
            &cfg,
        );
        assert!(report.truncated);
        assert_eq!(report.executions, 0);
        assert!(report.passed(), "truncation is not a failure");
    }

    #[test]
    fn backend_panic_ends_the_campaign_as_a_divergence() {
        let (spec, mut mc) = accumulator();
        let hole = expected_machine_code(&spec)
            .into_iter()
            .find(|(_, d)| matches!(d, druzhba_alu_dsl::HoleDomain::Bits(b) if *b >= 32))
            .map(|(n, _)| n)
            .expect("the accumulator has a 32-bit constant hole");
        mc.set(&hole, druzhba_core::hostile::HOSTILE_TRAP_VALUE);
        let report = greybox_fuzz_test(
            &spec,
            &mc,
            OptLevel::Fused,
            accumulator_spec,
            None,
            &[],
            &small_cfg(),
        );
        assert!(matches!(report.verdict, Verdict::BackendPanic { .. }));
        assert_eq!(report.first_divergence, Some(1));
        assert!(
            report.minimized.is_none(),
            "panic verdicts must not be minimized"
        );
    }

    #[test]
    fn mutation_stack_is_deterministic_and_bounded() {
        let model = AluTraceModel {
            phv_length: 3,
            input_bits: 8,
            max_packets: 16,
        };
        let mut a_rng = ValueGen::new(42, 32);
        let mut b_rng = ValueGen::new(42, 32);
        let mut a = model.seed_input(&mut a_rng, 4);
        let mut b = model.seed_input(&mut b_rng, 4);
        assert_eq!(a, b);
        for _ in 0..200 {
            model.mutate(&mut a_rng, &mut a);
            model.mutate(&mut b_rng, &mut b);
            assert_eq!(a, b, "mutation must be a pure function of the rng");
            assert!(!a.phvs.is_empty() && a.phvs.len() <= 16);
            for phv in &a.phvs {
                for c in 0..phv.len() {
                    assert!(phv.get(c) <= 255, "values stay within input_bits");
                }
            }
        }
    }
}
