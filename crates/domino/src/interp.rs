//! Reference interpreter for Domino programs.
//!
//! Used in two roles: as the *synthesis oracle* inside the compiler (the
//! semantics every synthesized atom must match) and as an executable
//! *high-level specification* in the fuzz-testing workflow of Fig. 5 (the
//! "program spec" box).

use std::collections::HashMap;

use druzhba_core::value::{self, Value};

use crate::ast::{BinOp, DominoExpr, DominoProgram, DominoStmt, UnOp};

/// An interpreter holding a program's persistent state across packets.
#[derive(Debug, Clone)]
pub struct Interpreter {
    program: DominoProgram,
    state: Vec<Value>,
}

impl Interpreter {
    /// Create an interpreter with state initialized from the declarations.
    pub fn new(program: DominoProgram) -> Self {
        let state = program.state_vars.iter().map(|d| d.init).collect();
        Interpreter { program, state }
    }

    /// The program being interpreted.
    pub fn program(&self) -> &DominoProgram {
        &self.program
    }

    /// Current state values, in declaration order.
    pub fn state(&self) -> &[Value] {
        &self.state
    }

    /// Reset state to the declared initial values.
    pub fn reset(&mut self) {
        for (slot, decl) in self.state.iter_mut().zip(&self.program.state_vars) {
            *slot = decl.init;
        }
    }

    /// Run the transaction once on a packet, returning the fields it wrote.
    ///
    /// `fields` carries the input packet's field values; reads of fields
    /// absent from the map evaluate to 0 (matching a zeroed PHV container).
    pub fn step(&mut self, fields: &HashMap<String, Value>) -> HashMap<String, Value> {
        let mut written = HashMap::new();
        // Clone of state for the body to mutate; committed at the end so a
        // failed step cannot half-apply (there are no failure paths today,
        // but the transactional shape is the Domino model).
        let mut state = self.state.clone();
        exec_stmts(
            &self.program,
            &self.program.body,
            fields,
            &mut state,
            &mut written,
        );
        self.state = state;
        written
    }
}

fn exec_stmts(
    program: &DominoProgram,
    stmts: &[DominoStmt],
    fields: &HashMap<String, Value>,
    state: &mut [Value],
    written: &mut HashMap<String, Value>,
) {
    for stmt in stmts {
        match stmt {
            DominoStmt::AssignField { field, value } => {
                let v = eval(program, value, fields, state);
                written.insert(field.clone(), v);
            }
            DominoStmt::AssignState { var, value } => {
                let v = eval(program, value, fields, state);
                let idx = program.state_index(var).expect("validated");
                state[idx] = v;
            }
            DominoStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if value::truthy(eval(program, cond, fields, state)) {
                    exec_stmts(program, then_body, fields, state, written);
                } else {
                    exec_stmts(program, else_body, fields, state, written);
                }
            }
        }
    }
}

/// Evaluate a Domino expression against packet fields and current state.
pub fn eval(
    program: &DominoProgram,
    expr: &DominoExpr,
    fields: &HashMap<String, Value>,
    state: &[Value],
) -> Value {
    match expr {
        DominoExpr::Const(v) => *v,
        DominoExpr::Field(name) => fields.get(name).copied().unwrap_or(0),
        DominoExpr::State(name) => {
            let idx = program.state_index(name).expect("validated");
            state[idx]
        }
        DominoExpr::Binary { op, l, r } => {
            let (l, r) = (
                eval(program, l, fields, state),
                eval(program, r, fields, state),
            );
            apply_binop(*op, l, r)
        }
        DominoExpr::Unary { op, x } => {
            let x = eval(program, x, fields, state);
            match op {
                UnOp::Neg => value::wneg(x),
                UnOp::Not => value::from_bool(!value::truthy(x)),
            }
        }
    }
}

/// The shared total-semantics binary operators (identical to the ALU DSL's).
pub fn apply_binop(op: BinOp, a: Value, b: Value) -> Value {
    match op {
        BinOp::Add => value::wadd(a, b),
        BinOp::Sub => value::wsub(a, b),
        BinOp::Mul => value::wmul(a, b),
        BinOp::Div => value::wdiv(a, b),
        BinOp::Mod => value::wmod(a, b),
        BinOp::Eq => value::from_bool(a == b),
        BinOp::Ne => value::from_bool(a != b),
        BinOp::Lt => value::from_bool(a < b),
        BinOp::Gt => value::from_bool(a > b),
        BinOp::Le => value::from_bool(a <= b),
        BinOp::Ge => value::from_bool(a >= b),
        BinOp::And => value::from_bool(value::truthy(a) && value::truthy(b)),
        BinOp::Or => value::from_bool(value::truthy(a) || value::truthy(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn fields(pairs: &[(&str, Value)]) -> HashMap<String, Value> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn sampling_program_counts_to_ten() {
        let p = parse_program(
            "state int count = 0;\n\
             if (count == 9) {\n\
                 count = 0;\n\
                 pkt.sample = 1;\n\
             } else {\n\
                 count = count + 1;\n\
                 pkt.sample = 0;\n\
             }",
        )
        .unwrap();
        let mut interp = Interpreter::new(p);
        let mut samples = 0;
        for _ in 0..30 {
            let out = interp.step(&fields(&[]));
            samples += out["sample"];
        }
        assert_eq!(samples, 3, "every 10th packet is sampled");
        assert_eq!(interp.state(), &[0]);
    }

    #[test]
    fn state_persists_across_steps() {
        let p = parse_program("state int sum = 0;\nsum = sum + pkt.x;").unwrap();
        let mut interp = Interpreter::new(p);
        interp.step(&fields(&[("x", 5)]));
        interp.step(&fields(&[("x", 7)]));
        assert_eq!(interp.state(), &[12]);
        interp.reset();
        assert_eq!(interp.state(), &[0]);
    }

    #[test]
    fn nonzero_initial_state_honoured() {
        let p = parse_program("state int s = 100;\ns = s - pkt.x;\npkt.o = 1;").unwrap();
        let mut interp = Interpreter::new(p);
        interp.step(&fields(&[("x", 30)]));
        assert_eq!(interp.state(), &[70]);
    }

    #[test]
    fn sequential_statements_see_updates() {
        let p = parse_program(
            "state int s = 0;\n\
             s = s + 1;\n\
             s = s * 2;\n\
             pkt.o = 5;",
        )
        .unwrap();
        let mut interp = Interpreter::new(p);
        interp.step(&fields(&[]));
        assert_eq!(interp.state(), &[2]);
        interp.step(&fields(&[]));
        assert_eq!(interp.state(), &[6]);
    }

    #[test]
    fn missing_fields_read_as_zero() {
        let p = parse_program("pkt.o = pkt.ghost + 1;").unwrap();
        let mut interp = Interpreter::new(p);
        let out = interp.step(&fields(&[]));
        assert_eq!(out["o"], 1);
    }

    #[test]
    fn wrapping_semantics_match_core() {
        let p = parse_program("pkt.o = pkt.a - pkt.b;\npkt.d = pkt.a / pkt.b;").unwrap();
        let mut interp = Interpreter::new(p);
        let out = interp.step(&fields(&[("a", 0), ("b", 1)]));
        assert_eq!(out["o"], u32::MAX);
        assert_eq!(out["d"], 0, "division by b=1 is 0/1");
        let out = interp.step(&fields(&[("a", 5), ("b", 0)]));
        assert_eq!(out["d"], 0, "division by zero is total");
    }

    #[test]
    fn branch_conditions_on_fields() {
        let p = parse_program(
            "state int hits = 0;\n\
             if (pkt.port == 80 || pkt.port == 443) { hits = hits + 1; }",
        )
        .unwrap();
        let mut interp = Interpreter::new(p);
        interp.step(&fields(&[("port", 80)]));
        interp.step(&fields(&[("port", 22)]));
        interp.step(&fields(&[("port", 443)]));
        assert_eq!(interp.state(), &[2]);
    }
}
