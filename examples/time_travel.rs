//! Time-travel debugging a buggy compilation (the paper's §7 vision):
//! record a full simulation, set a breakpoint on the first wrong output,
//! then rewind to find the state write that caused it.
//!
//! Run with: `cargo run --example time_travel`

use druzhba::chipmunk::{compile, CompiledSpec, CompilerConfig};
use druzhba::core::Trace;
use druzhba::dgen::OptLevel;
use druzhba::domino::parse_program;
use druzhba::dsim::testing::Specification;
use druzhba::dsim::{TimeTravelDebugger, TrafficGenerator};

const SOURCE: &str = "
    state int count = 0;
    if (count == 9) { count = 0; pkt.sample = 1; }
    else { count = count + 1; pkt.sample = 0; }
";

fn main() {
    // Compile the sampling program, then sabotage the reset constant:
    // the pipeline will reset at count == 6 instead of 9.
    let program = parse_program(SOURCE).unwrap();
    let compiled = compile(&program, &CompilerConfig::new(2, 1, "if_else_raw")).unwrap();
    let mut bad = compiled.machine_code.clone();
    let guard_const = bad
        .iter()
        .find(|(n, v)| n.contains("stateful") && n.contains("const") && *v == 9)
        .map(|(n, _)| n.to_string())
        .expect("the sampling threshold is a stateful immediate");
    bad.set(guard_const.clone(), 6);
    println!("sabotaged `{guard_const}`: 9 -> 6");

    // Record 24 ticks of simulation against the corrupted machine code.
    let input = TrafficGenerator::new(11, compiled.pipeline_spec.config.phv_length, 4).trace(24);
    let mut dbg =
        TimeTravelDebugger::record(&compiled.pipeline_spec, &bad, OptLevel::SccInline, &input)
            .unwrap();

    // The spec says the first sample fires on packet 10; break on the
    // first emitted PHV that disagrees with the spec.
    let mut spec = CompiledSpec::new(program, &compiled);
    spec.reset();
    let expected = Trace::from_phvs(input.phvs.iter().map(|p| spec.process(p)).collect());
    let sample_container = compiled.output_fields["sample"];
    let mut emitted_idx = 0usize;
    let mut expected_iter = expected.phvs.iter();
    // Walk forward with a breakpoint comparing each emitted PHV to the
    // spec's corresponding output.
    let mut first_bad_tick = None;
    for record in dbg.history().to_vec() {
        if let Some(phv) = &record.emitted {
            let want = expected_iter.next().unwrap();
            if phv.get(sample_container) != want.get(sample_container) {
                first_bad_tick = Some((record.tick, emitted_idx));
                break;
            }
            emitted_idx += 1;
        }
    }
    let (bad_tick, bad_packet) = first_bad_tick.expect("the sabotage must surface");
    println!(
        "first wrong output: packet #{bad_packet} at tick {bad_tick} \
         (sample fired too early)"
    );

    // Jump there and rewind to the state write that caused it: the
    // counter reset (a decrease) that should not have happened yet.
    let (stage, slot, var) = compiled.state_cells[0];
    dbg.goto(bad_tick as usize);
    let culprit = dbg
        .rewind_until(|r| r.state[stage][slot][var] == 0 && r.injected.is_some() && r.tick > 0)
        .expect("find the premature reset");
    println!("rewound to tick {culprit}: counter reset to 0 while the spec still counts");
    for (tick, old, new) in dbg.state_changes(stage, slot, var) {
        println!("  state[{stage}][{slot}][{var}] @ tick {tick}: {old} -> {new}");
    }
    println!("time-travel debugging OK");
}
