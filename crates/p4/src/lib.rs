//! # druzhba-p4
//!
//! A from-scratch P4-14 subset frontend for the dRMT side of Druzhba
//! (paper §4.1): *"dgen takes as input a P4 file representing the
//! algorithmic behavior specified in the context of a feed-forward
//! pipeline. dgen converts the given P4 file into a DAG representing the
//! match+action table dependencies."*
//!
//! Supported P4-14 constructs:
//!
//! - `header_type` declarations with fixed-width fields;
//! - `header` / `metadata` instances;
//! - a linear `parser` (a chain of `extract` statements ending in
//!   `return ingress`);
//! - `register` declarations (`width` / `instance_count`);
//! - `counter` declarations;
//! - `action` declarations over the primitive actions `modify_field`,
//!   `add_to_field`, `subtract_from_field`, `register_read`,
//!   `register_write`, `count`, `no_op`, and `drop`;
//! - `table` declarations with `reads { field : exact|ternary|lpm; }`,
//!   `actions`, and `size`;
//! - a `control ingress` block applying tables in sequence, with
//!   `if (valid(header)) { … } else { … }` conditionals.
//!
//! [`deps`] classifies the pairwise table dependencies (match, action,
//! successor) that drive the dRMT scheduler, following the taxonomy of the
//! RMT/dRMT papers.
//!
//! Beyond parsing and analysis, this crate gives the subset *executable*
//! match-action semantics:
//!
//! - [`tables`] — the table-entry configuration format of §4.2 plus the
//!   shared exact/ternary/lpm match engine every execution model uses;
//! - [`exec`] — the sequential reference interpreter ([`exec::Interpreter`]):
//!   per-packet table application in control order with registers,
//!   counters, default actions, and per-packet table-hit traces. This is
//!   the oracle the simulated pipelines are differentially fuzzed against;
//! - [`lower`] — the RMT lowering pass: packet fields are laid out onto
//!   PHV containers ([`lower::FieldLayout`]) and tables are assigned to
//!   pipeline stages from the dependency DAG ([`lower::lower`]), producing
//!   the placement that dgen's match-action backends execute.
//!
//! Data-flow neighbors: `druzhba-core` supplies the value domain and
//! errors; `druzhba-drmt` consumes [`Hlir`]/[`TableDag`] for scheduling
//! and re-exports [`exec::Packet`] and [`tables`] for its machine; dgen's
//! `mat` module executes [`lower::RmtLowering`] on four backends; dsim's
//! `p4` module drives the differential fuzzing loop.
//!
//! # Example
//!
//! ```
//! let hlir = druzhba_p4::parse_p4(
//!     "header_type h { fields { a : 32; } }\n\
//!      header h pkt;\n\
//!      parser start { extract(pkt); return ingress; }\n\
//!      action nop() { no_op(); }\n\
//!      table t { reads { pkt.a : exact; } actions { nop; } }\n\
//!      control ingress { apply(t); }",
//! )
//! .unwrap();
//! assert_eq!(hlir.tables.len(), 1);
//! assert_eq!(hlir.fields.len(), 1);
//! ```

pub mod ast;
pub mod deps;
pub mod exec;
pub mod hlir;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod tables;

pub use ast::P4Program;
pub use deps::{DependencyKind, TableDag};
pub use exec::{Interpreter, Packet};
pub use hlir::Hlir;
pub use lower::{FieldLayout, RmtConfig, RmtLowering};
pub use tables::{parse_entries, render_entry, ProgramTables, TableEntry};

use druzhba_core::Result;

/// Parse and resolve a P4-14 subset program.
pub fn parse_p4(source: &str) -> Result<Hlir> {
    let tokens = lexer::lex(source)?;
    let program = parser::parse(&tokens)?;
    hlir::resolve(program)
}
