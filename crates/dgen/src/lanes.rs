//! SIMD/SoA lane-batched execution of the fused register program
//! (ROADMAP item 2 — the order-of-magnitude step past [`crate::fused`]).
//!
//! The fused backend is scalar: one PHV at a time through a flat register
//! program. This module lowers that same program into **lane-parallel**
//! form: every register becomes a `[u32; LANES]` row of a
//! structure-of-arrays frame, arithmetic/bitwise ops map 1:1 across lanes,
//! and every conditional jump becomes a masked select over a per-lane
//! predicate, so 8–64 PHVs flow through one instruction stream with zero
//! per-PHV dispatch. The lane loops are written as fixed-trip-count
//! operations over local `[u32; L]` arrays precisely so the compiler's
//! auto-vectorizer turns them into SIMD (SSE2/AVX on x86, NEON on ARM) —
//! no intrinsics, no `unsafe`.
//!
//! # Predication instead of branching
//!
//! Fused jumps are **forward-only** ("jumps never cross an ALU body"), so
//! per-lane control flow reduces to one `resume_pc` per lane: a lane is
//! *active* at `pc` iff `resume_pc[lane] <= pc`. Executing a taken jump
//! just raises the lane's `resume_pc` to the target; every instruction in
//! between computes harmlessly (all ops are total — division by zero
//! yields zero) and its result is discarded by a bitwise mask:
//!
//! ```text
//! m = active ? 0xFFFF_FFFF : 0
//! dst[lane] = (value & m) | (dst[lane] & !m)
//! ```
//!
//! The same sentinel makes partial batches safe: tail lanes start with
//! `resume_pc = instruction count`, are never active, and therefore never
//! write a register, never touch state, and never record coverage.
//!
//! # Two execution modes over one lowering
//!
//! **Batch mode** ([`crate::Pipeline::process_batch_lanes`]) reproduces the
//! scalar [`FusedPipeline::process_in_place`] chain *bit-identically*,
//! including the cross-PHV stateful-ALU ordering: PHV `i` must observe the
//! state writes of PHV `i-1`. Lowering classifies the program into
//! *regions*: instruction spans that touch a stateful ALU's state window
//! run **serial** (lane-major: each lane in order against the shared
//! scalar state), everything else runs **transposed** (instruction-major
//! across all lanes at once). Stateless spans — input muxes, specialized
//! stateless ALU bodies, output copies — dominate wide pipelines, and
//! those are exactly the spans that vectorize.
//!
//! **Sweep mode** ([`LanePipeline::sweep`]) gives every lane its own
//! independent state lanes inside the SoA frame and runs the *whole*
//! program transposed. That is the native shape of bounded verification
//! and greybox fuzzing (every input is an independent execution from reset
//! state), and it is where the full SIMD win lives: no serial regions at
//! all.
//!
//! # Determinism guarantee
//!
//! For a fixed program and input batch, batch mode produces the same
//! outputs, final state, and coverage totals for **every** lane width in
//! [`LANE_WIDTHS`] — identical to scalar width 1. Ops are exact u32
//! semantics (no floating point, no reassociation), serial regions
//! preserve scalar state order, and the coverage map's saturating per-edge
//! counters make hit totals independent of the order lanes record them.
//! Greybox campaigns can therefore adopt lanes without changing a single
//! report byte.

use druzhba_alu_dsl::{BinOp, UnOp};
use druzhba_core::coverage::{edge_id, CoverageMap};
use druzhba_core::value::{self, Value};
use druzhba_core::Phv;

use crate::eval::{apply_binop, apply_unop};
use crate::fused::{FusedInstr, FusedPipeline, Reg, FUSED_SITE};

/// Lane widths the const-generic dispatch supports. Width 1 is the
/// degenerate scalar case (useful for differential testing); 8–64 are the
/// SIMD sweet spots (one to eight 256-bit vectors per register row).
pub const LANE_WIDTHS: [usize; 5] = [1, 8, 16, 32, 64];

/// Largest supported lane width.
pub const MAX_LANES: usize = 64;

/// True if `width` is one of [`LANE_WIDTHS`].
pub fn supported_width(width: usize) -> bool {
    matches!(width, 1 | 8 | 16 | 32 | 64)
}

/// One contiguous instruction span of the lowered program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Region {
    /// Touches at least one stateful ALU's state window: executed
    /// lane-major against the shared scalar state so cross-PHV ordering
    /// matches the scalar backend exactly.
    Serial { start: usize, end: usize },
    /// Touches no state: executed instruction-major across all lanes.
    Transposed { start: usize, end: usize },
}

/// A fused register program lowered to lane-parallel form.
///
/// The lowering is width-independent: one `LanePipeline` serves every
/// width in [`LANE_WIDTHS`] (the width is a per-call parameter), so a
/// cached lowering can be shared by differential tests that sweep widths.
#[derive(Debug, Clone)]
pub struct LanePipeline {
    instrs: Vec<FusedInstr>,
    regions: Vec<Region>,
    stage_count: usize,
    frame_len: usize,
    phv_len: usize,
    /// Shared-state window `[base, base+len)` in fused-frame register
    /// numbering (batch mode executes serial regions against the fused
    /// pipeline's own state slice; sweep mode gives each lane its own
    /// copy of these registers inside the SoA frame).
    state_window: (usize, usize),
    /// `state_regs[stage][slot]` = (first register, register count).
    state_regs: Vec<Vec<(Reg, Reg)>>,
    /// Batch-mode SoA scratch frame (`frame_len * width` values), kept
    /// across calls so steady-state batch processing allocates nothing.
    scratch: Vec<Value>,
}

impl LanePipeline {
    /// Lower a fused program. Returns `None` when the program violates
    /// the forward-jump invariant the predication scheme relies on (the
    /// fuser never emits such programs; callers fall back to scalar).
    pub fn lower(fused: &FusedPipeline) -> Option<Self> {
        let instrs = fused.instrs().to_vec();
        for (pc, instr) in instrs.iter().enumerate() {
            if let Some(t) = jump_target(instr) {
                if t as usize <= pc {
                    return None;
                }
            }
        }

        // One span per stateful ALU: [first, last] over every instruction
        // touching any register of its state window. Spans are contiguous
        // by construction (only the owning ALU body references its state),
        // but merging overlapping/adjacent spans keeps this correct even
        // for exotic programs — anything between two touches of the same
        // window (e.g. the branch guarding a conditional state write) must
        // stay inside the serial region.
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for row in fused.state_regs() {
            for &(base, count) in row {
                if count == 0 {
                    continue;
                }
                let mut first = None;
                let mut last = 0usize;
                for (pc, instr) in instrs.iter().enumerate() {
                    if touches_window(instr, base, base + count) {
                        first.get_or_insert(pc);
                        last = pc;
                    }
                }
                if let Some(f) = first {
                    spans.push((f, last + 1));
                }
            }
        }
        spans.sort_unstable();
        let mut merged: Vec<(usize, usize)> = Vec::new();
        for (s, e) in spans {
            match merged.last_mut() {
                Some(m) if s <= m.1 => m.1 = m.1.max(e),
                _ => merged.push((s, e)),
            }
        }

        let len = instrs.len();
        let mut regions = Vec::new();
        let mut pos = 0;
        for (s, e) in merged {
            if pos < s {
                regions.push(Region::Transposed { start: pos, end: s });
            }
            regions.push(Region::Serial { start: s, end: e });
            pos = e;
        }
        if pos < len {
            regions.push(Region::Transposed {
                start: pos,
                end: len,
            });
        }

        Some(LanePipeline {
            instrs,
            regions,
            stage_count: fused.stage_bounds().len(),
            frame_len: fused.frame_len(),
            phv_len: fused.phv_len(),
            state_window: fused.state_window(),
            state_regs: fused.state_regs().to_vec(),
            scratch: Vec::new(),
        })
    }

    /// Number of instructions in the lowered program.
    pub fn instr_count(&self) -> usize {
        self.instrs.len()
    }

    /// PHV length the program was compiled for.
    pub fn phv_len(&self) -> usize {
        self.phv_len
    }

    /// Fraction of instructions living in transposed (vectorizable)
    /// regions — a quick Amdahl diagnostic for batch mode.
    pub fn transposed_fraction(&self) -> f64 {
        if self.instrs.is_empty() {
            return 1.0;
        }
        let t: usize = self
            .regions
            .iter()
            .map(|r| match *r {
                Region::Transposed { start, end } => end - start,
                Region::Serial { .. } => 0,
            })
            .sum();
        t as f64 / self.instrs.len() as f64
    }

    /// Batch mode: process `phvs` in lane chunks of `width`,
    /// bit-identically to running the scalar fused backend over the batch
    /// in order — same outputs, same final `state`, same coverage totals.
    ///
    /// `state` must be the owning fused pipeline's live state window
    /// ([`FusedPipeline::state_mut`]) so snapshots and resets keep working
    /// unchanged. Panics if `width` is not in [`LANE_WIDTHS`].
    pub(crate) fn process_batch_cov(
        &mut self,
        width: usize,
        state: &mut [Value],
        phvs: &mut [Phv],
        cov: Option<&mut CoverageMap>,
    ) {
        assert!(supported_width(width), "unsupported lane width {width}");
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.resize(self.frame_len * width, 0);
        match width {
            1 => self.chunks::<1>(&mut scratch, state, phvs, cov),
            8 => self.chunks::<8>(&mut scratch, state, phvs, cov),
            16 => self.chunks::<16>(&mut scratch, state, phvs, cov),
            32 => self.chunks::<32>(&mut scratch, state, phvs, cov),
            64 => self.chunks::<64>(&mut scratch, state, phvs, cov),
            _ => unreachable!(),
        }
        self.scratch = scratch;
    }

    fn chunks<const L: usize>(
        &self,
        scratch: &mut [Value],
        state: &mut [Value],
        phvs: &mut [Phv],
        mut cov: Option<&mut CoverageMap>,
    ) {
        let end_pc = self.instrs.len() as u32;
        let (sbase, slen) = self.state_window;
        for chunk in phvs.chunks_mut(L) {
            let n = chunk.len();
            // The scalar path records one edge per stage per PHV before
            // executing it; totals are order-independent, so batching the
            // hits per chunk lands on the identical coverage map.
            if let Some(c) = cov.as_deref_mut() {
                for stage in 0..self.stage_count {
                    let e = edge_id(FUSED_SITE, 0x8000 + stage as u32, 0);
                    for _ in 0..n {
                        c.hit(e);
                    }
                }
            }
            for (lane, phv) in chunk.iter().enumerate() {
                debug_assert_eq!(phv.len(), self.phv_len);
                for c in 0..self.phv_len {
                    scratch[c * L + lane] = phv.get(c);
                }
            }
            let mut resume = [end_pc; L];
            for r in resume.iter_mut().take(n) {
                *r = 0;
            }
            for &region in &self.regions {
                match region {
                    Region::Transposed { start, end } => exec_transposed::<L>(
                        &self.instrs,
                        scratch,
                        &mut resume,
                        start,
                        end,
                        cov.as_deref_mut(),
                    ),
                    Region::Serial { start, end } => {
                        for (lane, r) in resume.iter_mut().enumerate().take(n) {
                            exec_serial_lane::<L>(
                                &self.instrs,
                                scratch,
                                state,
                                sbase,
                                slen,
                                lane,
                                r,
                                start,
                                end,
                                cov.as_deref_mut(),
                            );
                        }
                    }
                }
            }
            for (lane, phv) in chunk.iter_mut().enumerate() {
                for c in 0..self.phv_len {
                    phv.set(c, scratch[c * L + lane]);
                }
            }
        }
    }

    /// Sweep mode: `width` independent executions in lockstep, each lane
    /// with its own state. Returns `None` if `width` is not in
    /// [`LANE_WIDTHS`].
    pub fn sweep(&self, width: usize) -> Option<LaneSweep<'_>> {
        if !supported_width(width) {
            return None;
        }
        Some(LaneSweep {
            lp: self,
            width,
            frame: vec![0; self.frame_len * width],
        })
    }
}

/// Independent-lane execution over a [`LanePipeline`]: every lane is its
/// own simulation (own PHV, own stateful-ALU state), and one
/// [`LaneSweep::step`] pushes one packet through all active lanes with the
/// whole program running transposed — the shape bounded verification and
/// benchmark sweeps want.
///
/// Protocol per batch of executions: [`LaneSweep::reset`] (zero all state
/// lanes), then per packet [`LaneSweep::clear_phv`] +
/// [`LaneSweep::set_input`] + [`LaneSweep::step`] + [`LaneSweep::output`].
/// State lanes persist across steps, so multi-packet executions work
/// exactly like repeated scalar [`FusedPipeline::process_in_place`] calls.
#[derive(Debug)]
pub struct LaneSweep<'a> {
    lp: &'a LanePipeline,
    width: usize,
    frame: Vec<Value>,
}

impl LaneSweep<'_> {
    /// The lane width this sweep was built with.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Zero every lane's stateful-ALU state (the per-execution reset).
    pub fn reset(&mut self) {
        let (sbase, slen) = self.lp.state_window;
        let w = self.width;
        self.frame[sbase * w..(sbase + slen) * w].fill(0);
    }

    /// Zero every lane's PHV registers (fresh packet).
    pub fn clear_phv(&mut self) {
        let w = self.width;
        self.frame[..self.lp.phv_len * w].fill(0);
    }

    /// Set one input container for one lane.
    pub fn set_input(&mut self, lane: usize, container: usize, v: Value) {
        debug_assert!(lane < self.width && container < self.lp.phv_len);
        self.frame[container * self.width + lane] = v;
    }

    /// Read one output container for one lane (valid after
    /// [`LaneSweep::step`]).
    pub fn output(&self, lane: usize, container: usize) -> Value {
        debug_assert!(lane < self.width && container < self.lp.phv_len);
        self.frame[container * self.width + lane]
    }

    /// Read one state variable for one lane, or `None` if the (stage,
    /// slot, var) coordinate does not exist.
    pub fn state_value(&self, lane: usize, stage: usize, slot: usize, var: usize) -> Option<Value> {
        let &(base, count) = self.lp.state_regs.get(stage)?.get(slot)?;
        if var >= count as usize || lane >= self.width {
            return None;
        }
        Some(self.frame[(base as usize + var) * self.width + lane])
    }

    /// Push one packet through lanes `0..active`. Lanes `active..width`
    /// are masked out for the whole step: their PHV registers and state
    /// lanes are left untouched.
    pub fn step(&mut self, active: usize) {
        debug_assert!(active <= self.width);
        match self.width {
            1 => self.step_l::<1>(active),
            8 => self.step_l::<8>(active),
            16 => self.step_l::<16>(active),
            32 => self.step_l::<32>(active),
            64 => self.step_l::<64>(active),
            _ => unreachable!(),
        }
    }

    fn step_l<const L: usize>(&mut self, active: usize) {
        let end = self.lp.instrs.len();
        let mut resume = [end as u32; L];
        for r in resume.iter_mut().take(active) {
            *r = 0;
        }
        exec_transposed::<L>(&self.lp.instrs, &mut self.frame, &mut resume, 0, end, None);
    }
}

fn jump_target(instr: &FusedInstr) -> Option<u32> {
    match *instr {
        FusedInstr::JumpIfZero { target, .. }
        | FusedInstr::CmpJumpIfZero { target, .. }
        | FusedInstr::CmpImmJumpIfZero { target, .. }
        | FusedInstr::Jump { target } => Some(target),
        _ => None,
    }
}

/// Does `instr` read or write any register in `[lo, hi)`?
fn touches_window(instr: &FusedInstr, lo: Reg, hi: Reg) -> bool {
    let hit = |r: Reg| r >= lo && r < hi;
    match *instr {
        FusedInstr::Const { dst, .. } => hit(dst),
        FusedInstr::Copy { dst, src } => hit(dst) || hit(src),
        FusedInstr::Bin { dst, l, r, .. } => hit(dst) || hit(l) || hit(r),
        FusedInstr::BinImm { dst, l, .. } => hit(dst) || hit(l),
        FusedInstr::Un { dst, src, .. } => hit(dst) || hit(src),
        FusedInstr::JumpIfZero { src, .. } => hit(src),
        FusedInstr::CmpJumpIfZero { l, r, .. } => hit(l) || hit(r),
        FusedInstr::CmpImmJumpIfZero { l, .. } => hit(l),
        FusedInstr::Jump { .. } => false,
    }
}

/// Dispatch a [`BinOp`] to a lane macro, appending the op's scalar
/// semantics as a `|a, b| expr` closure-shaped token tree. Each arm
/// mirrors [`apply_binop`] exactly (wrapping arithmetic, total division,
/// 0/1 booleans) so lane results are bit-identical to scalar.
macro_rules! binop_dispatch {
    ($op:expr, $mac:ident ! ($($pre:tt)*)) => {
        match $op {
            BinOp::Add => $mac!($($pre)* |a, b| a.wrapping_add(b)),
            BinOp::Sub => $mac!($($pre)* |a, b| a.wrapping_sub(b)),
            BinOp::Mul => $mac!($($pre)* |a, b| a.wrapping_mul(b)),
            BinOp::Div => $mac!($($pre)* |a, b| if b == 0 { 0 } else { a / b }),
            BinOp::Mod => $mac!($($pre)* |a, b| if b == 0 { 0 } else { a % b }),
            BinOp::Eq => $mac!($($pre)* |a, b| u32::from(a == b)),
            BinOp::Ne => $mac!($($pre)* |a, b| u32::from(a != b)),
            BinOp::Lt => $mac!($($pre)* |a, b| u32::from(a < b)),
            BinOp::Gt => $mac!($($pre)* |a, b| u32::from(a > b)),
            BinOp::Le => $mac!($($pre)* |a, b| u32::from(a <= b)),
            BinOp::Ge => $mac!($($pre)* |a, b| u32::from(a >= b)),
            BinOp::And => $mac!($($pre)* |a, b| u32::from(a != 0 && b != 0)),
            BinOp::Or => $mac!($($pre)* |a, b| u32::from(a != 0 || b != 0)),
        }
    };
}

/// Execute `instrs[start..end]` instruction-major across all `L` lanes.
///
/// Every lane op is a fixed-trip loop over local `[u32; L]` arrays — the
/// shape LLVM reliably auto-vectorizes. Inactive lanes (tail lanes of a
/// partial chunk, lanes that took a forward jump past `pc`) compute
/// alongside active ones but their stores are masked to a no-op, their
/// jumps ignored, and their coverage unrecorded.
fn exec_transposed<const L: usize>(
    instrs: &[FusedInstr],
    frame: &mut [Value],
    resume: &mut [u32; L],
    start: usize,
    end: usize,
    mut cov: Option<&mut CoverageMap>,
) {
    debug_assert!(end <= instrs.len());
    for (pc, instr) in instrs.iter().enumerate().take(end).skip(start) {
        let pcw = pc as u32;
        let mut mask = [0u32; L];
        let mut any = false;
        for (i, m) in mask.iter_mut().enumerate() {
            let active = resume[i] <= pcw;
            any |= active;
            *m = (active as u32).wrapping_neg();
        }
        if !any {
            continue;
        }

        // Hygiene requires locals (`frame`, `mask`, `resume`, `pcw`,
        // `cov`) to be bound before these macros are defined.
        macro_rules! read_lanes {
            ($r:expr) => {{
                let base = $r as usize * L;
                let mut v = [0u32; L];
                v.copy_from_slice(&frame[base..base + L]);
                v
            }};
        }
        macro_rules! lane_store {
            ($dst:expr, $av:expr, $bv:expr, |$a:ident, $b:ident| $res:expr) => {{
                let av = $av;
                let bv = $bv;
                let mut out = [0u32; L];
                for i in 0..L {
                    let $a = av[i];
                    let $b = bv[i];
                    out[i] = $res;
                }
                let base = $dst as usize * L;
                let d = &mut frame[base..base + L];
                for i in 0..L {
                    d[i] = (out[i] & mask[i]) | (d[i] & !mask[i]);
                }
            }};
        }
        macro_rules! lane_cmp_jump {
            ($av:expr, $bv:expr, $target:expr, |$a:ident, $b:ident| $res:expr) => {{
                let av = $av;
                let bv = $bv;
                let target: u32 = $target;
                match cov.as_deref_mut() {
                    None => {
                        for i in 0..L {
                            let $a = av[i];
                            let $b = bv[i];
                            let v: u32 = $res;
                            let taken = (resume[i] <= pcw) & (v == 0);
                            resume[i] = if taken { target } else { resume[i] };
                        }
                    }
                    Some(c) => {
                        for i in 0..L {
                            if resume[i] <= pcw {
                                let $a = av[i];
                                let $b = bv[i];
                                let v: u32 = $res;
                                let taken = v == 0;
                                c.hit(edge_id(FUSED_SITE, pcw, u32::from(taken)));
                                if taken {
                                    resume[i] = target;
                                }
                            }
                        }
                    }
                }
            }};
        }

        match *instr {
            FusedInstr::Const { dst, v } => {
                lane_store!(dst, [v; L], [0u32; L], |a, _b| a);
            }
            FusedInstr::Copy { dst, src } => {
                let av = read_lanes!(src);
                lane_store!(dst, av, [0u32; L], |a, _b| a);
            }
            FusedInstr::Bin { op, dst, l, r } => {
                let av = read_lanes!(l);
                let bv = read_lanes!(r);
                binop_dispatch!(op, lane_store!(dst, av, bv,));
            }
            FusedInstr::BinImm { op, dst, l, imm } => {
                let av = read_lanes!(l);
                binop_dispatch!(op, lane_store!(dst, av, [imm; L],));
            }
            FusedInstr::Un { op, dst, src } => {
                let av = read_lanes!(src);
                match op {
                    UnOp::Neg => lane_store!(dst, av, [0u32; L], |a, _b| a.wrapping_neg()),
                    UnOp::Not => lane_store!(dst, av, [0u32; L], |a, _b| u32::from(a == 0)),
                }
            }
            FusedInstr::JumpIfZero { src, target } => {
                let av = read_lanes!(src);
                lane_cmp_jump!(av, [0u32; L], target, |a, _b| a);
            }
            FusedInstr::CmpJumpIfZero { op, l, r, target } => {
                let av = read_lanes!(l);
                let bv = read_lanes!(r);
                binop_dispatch!(op, lane_cmp_jump!(av, bv, target,));
            }
            FusedInstr::CmpImmJumpIfZero { op, l, imm, target } => {
                let av = read_lanes!(l);
                binop_dispatch!(op, lane_cmp_jump!(av, [imm; L], target,));
            }
            FusedInstr::Jump { target } => {
                // Matches scalar: unconditional jumps record no coverage.
                for r in resume.iter_mut() {
                    *r = if *r <= pcw { target } else { *r };
                }
            }
        }
    }
}

/// Execute `instrs[start..end]` for one lane with the plain scalar
/// interpreter, reading/writing the shared `state` slice for registers in
/// the state window and the lane's SoA rows for everything else. Used for
/// batch mode's serial regions, where cross-PHV state order must match the
/// scalar backend.
#[allow(clippy::too_many_arguments)]
fn exec_serial_lane<const L: usize>(
    instrs: &[FusedInstr],
    frame: &mut [Value],
    state: &mut [Value],
    sbase: usize,
    slen: usize,
    lane: usize,
    resume: &mut u32,
    start: usize,
    end: usize,
    mut cov: Option<&mut CoverageMap>,
) {
    if *resume as usize >= end {
        return;
    }
    let mut pc = (*resume as usize).max(start);
    macro_rules! get {
        ($r:expr) => {{
            let r = $r as usize;
            if r.wrapping_sub(sbase) < slen {
                state[r - sbase]
            } else {
                frame[r * L + lane]
            }
        }};
    }
    macro_rules! set {
        ($r:expr, $v:expr) => {{
            let value = $v;
            let r = $r as usize;
            if r.wrapping_sub(sbase) < slen {
                state[r - sbase] = value;
            } else {
                frame[r * L + lane] = value;
            }
        }};
    }
    while pc < end {
        macro_rules! branch {
            ($taken:expr, $target:expr) => {{
                let taken = $taken;
                if let Some(c) = cov.as_deref_mut() {
                    c.hit(edge_id(FUSED_SITE, pc as u32, u32::from(taken)));
                }
                if taken {
                    let t = $target;
                    if (t as usize) < end {
                        pc = t as usize;
                        continue;
                    }
                    *resume = t;
                    return;
                }
            }};
        }
        match instrs[pc] {
            FusedInstr::Const { dst, v } => set!(dst, v),
            FusedInstr::Copy { dst, src } => set!(dst, get!(src)),
            FusedInstr::Bin { op, dst, l, r } => {
                set!(dst, apply_binop(op, get!(l), get!(r)));
            }
            FusedInstr::BinImm { op, dst, l, imm } => {
                set!(dst, apply_binop(op, get!(l), imm));
            }
            FusedInstr::Un { op, dst, src } => set!(dst, apply_unop(op, get!(src))),
            FusedInstr::JumpIfZero { src, target } => {
                branch!(!value::truthy(get!(src)), target);
            }
            FusedInstr::CmpJumpIfZero { op, l, r, target } => {
                branch!(!value::truthy(apply_binop(op, get!(l), get!(r))), target);
            }
            FusedInstr::CmpImmJumpIfZero { op, l, imm, target } => {
                branch!(!value::truthy(apply_binop(op, get!(l), imm)), target);
            }
            FusedInstr::Jump { target } => {
                if (target as usize) < end {
                    pc = target as usize;
                    continue;
                }
                *resume = target;
                return;
            }
        }
        pc += 1;
    }
    *resume = end as u32;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{expected_machine_code, PipelineSpec};
    use druzhba_alu_dsl::atoms::atom;
    use druzhba_core::{MachineCode, PipelineConfig, ValueGen};

    fn spec_for(stateful: &str, stateless: &str, depth: usize, width: usize) -> PipelineSpec {
        PipelineSpec::new(
            PipelineConfig::new(depth, width),
            atom(stateful).unwrap(),
            atom(stateless).unwrap(),
        )
        .unwrap()
    }

    fn random_mc(spec: &PipelineSpec, gen: &mut ValueGen) -> MachineCode {
        MachineCode::from_pairs(
            expected_machine_code(spec)
                .into_iter()
                .map(|(name, domain)| {
                    let bound = domain.bound().min(1 << 8) as u32;
                    (name, gen.value_below(bound))
                }),
        )
    }

    fn batch(gen: &mut ValueGen, phv_len: usize, count: usize) -> Vec<Phv> {
        (0..count).map(|_| Phv::new(gen.values(phv_len))).collect()
    }

    #[test]
    fn regions_tile_the_program_and_contain_every_state_touch() {
        let spec = spec_for("if_else_raw", "stateless_full", 3, 2);
        let mut gen = ValueGen::new(0x1A1E5, 32);
        for _ in 0..8 {
            let mc = random_mc(&spec, &mut gen);
            let fused = FusedPipeline::fuse(&spec, &mc);
            let lp = LanePipeline::lower(&fused).unwrap();
            // Regions tile [0, len) exactly, in order, without overlap.
            let mut pos = 0;
            for r in &lp.regions {
                let (s, e) = match *r {
                    Region::Serial { start, end } | Region::Transposed { start, end } => {
                        (start, end)
                    }
                };
                assert_eq!(s, pos, "gap or overlap before {r:?}");
                assert!(e > s, "empty region {r:?}");
                pos = e;
            }
            assert_eq!(pos, lp.instrs.len());
            // Every state-touching instruction sits in a Serial region.
            let (sbase, slen) = lp.state_window;
            for (pc, instr) in lp.instrs.iter().enumerate() {
                if touches_window(instr, sbase as Reg, (sbase + slen) as Reg) {
                    let serial = lp.regions.iter().any(
                        |r| matches!(*r, Region::Serial { start, end } if start <= pc && pc < end),
                    );
                    assert!(serial, "state touch at pc {pc} in transposed region");
                }
            }
            assert!(lp.transposed_fraction() <= 1.0);
        }
    }

    #[test]
    fn batch_mode_matches_scalar_for_every_width() {
        let spec = spec_for("if_else_raw", "stateless_full", 2, 2);
        let mut gen = ValueGen::new(0x0005_0A01, 32);
        for trial in 0..10 {
            let mc = random_mc(&spec, &mut gen);
            let phvs = batch(&mut gen, spec.config.phv_length, 13);
            // Scalar reference: one fused pipeline, one PHV at a time.
            let mut scalar = FusedPipeline::fuse(&spec, &mc);
            let mut scalar_cov = CoverageMap::new();
            let mut expect = phvs.clone();
            for phv in &mut expect {
                scalar.process_in_place_cov(phv, Some(&mut scalar_cov));
            }
            for &w in &LANE_WIDTHS {
                let mut fused = FusedPipeline::fuse(&spec, &mc);
                let mut lp = LanePipeline::lower(&fused).unwrap();
                let mut cov = CoverageMap::new();
                let mut got = phvs.clone();
                lp.process_batch_cov(w, fused.state_mut(), &mut got, Some(&mut cov));
                assert_eq!(got, expect, "trial {trial} width {w}: outputs");
                assert_eq!(
                    fused.state_snapshot(),
                    scalar.state_snapshot(),
                    "trial {trial} width {w}: state"
                );
                assert_eq!(
                    cov.as_bytes(),
                    scalar_cov.as_bytes(),
                    "trial {trial} width {w}: coverage"
                );
            }
        }
    }

    #[test]
    fn masked_tail_lanes_never_touch_state_outputs_or_coverage() {
        let spec = spec_for("pred_raw", "stateless_full", 2, 1);
        let mut gen = ValueGen::new(0xBAD_1A9E, 32);
        let mc = random_mc(&spec, &mut gen);
        let phv_len = spec.config.phv_length;

        let mut fused = FusedPipeline::fuse(&spec, &mc);
        let mut lp = LanePipeline::lower(&fused).unwrap();
        let mut cov = CoverageMap::new();
        let mut scalar = FusedPipeline::fuse(&spec, &mc);
        let mut scov = CoverageMap::new();

        // Poison the scratch lanes with a full-width batch first, so a
        // masked-lane leak in the later partial batches has garbage to
        // leak.
        let warm = batch(&mut gen, phv_len, 64);
        let mut lane_in = warm.clone();
        lp.process_batch_cov(64, fused.state_mut(), &mut lane_in, Some(&mut cov));
        let mut scal_in = warm;
        for phv in &mut scal_in {
            scalar.process_in_place_cov(phv, Some(&mut scov));
        }
        assert_eq!(lane_in, scal_in);

        // Single-PHV batch: 63 poisoned lanes ride along masked out.
        let single = batch(&mut gen, phv_len, 1);
        let mut lane_one = single.clone();
        lp.process_batch_cov(64, fused.state_mut(), &mut lane_one, Some(&mut cov));
        let mut scal_one = single;
        for phv in &mut scal_one {
            scalar.process_in_place_cov(phv, Some(&mut scov));
        }
        assert_eq!(lane_one, scal_one);

        // Empty batch: a strict no-op on outputs, state, and coverage.
        let mut empty: Vec<Phv> = Vec::new();
        lp.process_batch_cov(64, fused.state_mut(), &mut empty, Some(&mut cov));

        assert_eq!(fused.state_snapshot(), scalar.state_snapshot());
        assert_eq!(cov.as_bytes(), scov.as_bytes());
    }

    #[test]
    fn sweep_lanes_match_independent_scalar_executions() {
        let spec = spec_for("if_else_raw", "stateless_full", 2, 2);
        let mut gen = ValueGen::new(0x5EED, 32);
        let phv_len = spec.config.phv_length;
        for trial in 0..6 {
            let mc = random_mc(&spec, &mut gen);
            let fused = FusedPipeline::fuse(&spec, &mc);
            let lp = LanePipeline::lower(&fused).unwrap();
            let mut sweep = lp.sweep(8).unwrap();
            // Three packets per execution, eight independent executions.
            let packets: Vec<Vec<Phv>> = (0..3).map(|_| batch(&mut gen, phv_len, 8)).collect();
            sweep.reset();
            let mut lane_out = vec![vec![Phv::zeroed(phv_len); 8]; 3];
            for (t, round) in packets.iter().enumerate() {
                sweep.clear_phv();
                for (lane, phv) in round.iter().enumerate() {
                    for c in 0..phv_len {
                        sweep.set_input(lane, c, phv.get(c));
                    }
                }
                sweep.step(8);
                for (lane, out) in lane_out[t].iter_mut().enumerate() {
                    for c in 0..phv_len {
                        out.set(c, sweep.output(lane, c));
                    }
                }
            }
            for lane in 0..8 {
                let mut scalar = FusedPipeline::fuse(&spec, &mc);
                for (t, round) in packets.iter().enumerate() {
                    let mut phv = round[lane].clone();
                    scalar.process_in_place(&mut phv);
                    assert_eq!(phv, lane_out[t][lane], "trial {trial} lane {lane} tick {t}");
                }
                let snap = scalar.state_snapshot();
                for (stage, row) in snap.iter().enumerate() {
                    for (slot, cells) in row.iter().enumerate() {
                        for (var, &v) in cells.iter().enumerate() {
                            assert_eq!(
                                sweep.state_value(lane, stage, slot, var),
                                Some(v),
                                "trial {trial} lane {lane} state ({stage},{slot},{var})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sweep_inactive_lanes_are_fully_preserved() {
        let spec = spec_for("pred_raw", "stateless_full", 2, 1);
        let mut gen = ValueGen::new(0x1D1E, 32);
        let mc = random_mc(&spec, &mut gen);
        let fused = FusedPipeline::fuse(&spec, &mc);
        let lp = LanePipeline::lower(&fused).unwrap();
        let phv_len = spec.config.phv_length;
        let mut sweep = lp.sweep(8).unwrap();
        sweep.reset();
        sweep.clear_phv();
        for lane in 0..8 {
            for c in 0..phv_len {
                sweep.set_input(lane, c, 1000 + lane as Value);
            }
        }
        sweep.step(3);
        for lane in 3..8 {
            for c in 0..phv_len {
                assert_eq!(
                    sweep.output(lane, c),
                    1000 + lane as Value,
                    "inactive lane {lane} container {c} was clobbered"
                );
            }
            assert_eq!(sweep.state_value(lane, 0, 0, 0), Some(0));
        }
        // Active lanes match scalar.
        for lane in 0..3 {
            let mut scalar = FusedPipeline::fuse(&spec, &mc);
            let mut phv = Phv::new(vec![1000 + lane as Value; phv_len]);
            scalar.process_in_place(&mut phv);
            for c in 0..phv_len {
                assert_eq!(sweep.output(lane, c), phv.get(c), "lane {lane} c {c}");
            }
        }
    }

    #[test]
    fn unsupported_widths_are_rejected() {
        assert!(supported_width(1) && supported_width(64));
        assert!(!supported_width(0) && !supported_width(7) && !supported_width(128));
        let spec = spec_for("raw", "stateless_full", 1, 1);
        let mc = random_mc(&spec, &mut ValueGen::new(1, 32));
        let fused = FusedPipeline::fuse(&spec, &mc);
        let lp = LanePipeline::lower(&fused).unwrap();
        assert!(lp.sweep(7).is_none());
        assert!(lp.sweep(0).is_none());
    }
}
