//! `druzhba p4-fuzz --mutants`: mutation-driven bug-hunt campaigns over
//! the P4 corpus, plus the cross-model dRMT-vs-RMT differential check.
//!
//! The structure mirrors [`crate::hunt`] — Gauntlet/FP4-style detection-
//! power measurement — applied to the P4 workload:
//!
//! 1. every selected corpus program's entries are mutated by a
//!    deterministic [`P4FaultInjector`]: `mutants_per_class` mutants per
//!    [`P4FaultKind`] (removed entry, mutated action argument, mutated
//!    match value);
//! 2. candidates are *screened for behavioral effect* first (a mutated
//!    match value under masked-out ternary bits, or a removed entry no
//!    probe packet hits, is an equivalent mutant, not a fault); the
//!    probe's diverging traffic seed becomes the mutant's *witness*;
//! 3. every surviving mutant is evaluated on every requested
//!    [`OptLevel`] backend — fresh seeded differential fuzzing first,
//!    then the witness seed — spread across OS threads by the
//!    work-stealing [`run_stealing_observed`] scheduler, with the same
//!    crash-proofing as [`crate::hunt`]: per-case panic isolation,
//!    periodic checkpoints, resume, and wall-clock/per-case budgets
//!    (DESIGN.md §11);
//! 4. every divergence is reduced by the shared delta-debugging engine
//!    ([`druzhba_dsim::p4::p4_minimize`]) so the report carries a
//!    minimized reproducing packet sequence.
//!
//! [`cross_model_check`] is the second differential axis the paper's §4
//! machinery enables: the *same* packets through the sequential
//! interpreter, the staged RMT match-action pipeline, and the scheduled
//! dRMT machine, asserting identical outputs, registers, and counters.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use druzhba_analysis::p4_symbolic_entries_equivalent;
use druzhba_core::{Trace, Value};
use druzhba_dgen::mat::MatPipeline;
use druzhba_dgen::OptLevel;
use druzhba_drmt::{solve, DrmtMachine, ScheduleConfig};
use druzhba_dsim::minimize::MinimizedCounterExample;
use druzhba_dsim::p4::{
    p4_minimize, run_p4_case, P4Fault, P4FaultInjector, P4FaultKind, P4Traffic, P4Workload,
};
use druzhba_dsim::runtime::{run_stealing_observed, RuntimeOptions};
use druzhba_dsim::snapshot;
use druzhba_dsim::testing::{shard_seed, Verdict};
use druzhba_p4::deps::build_dag;
use druzhba_p4::tables::TableEntry;
use druzhba_programs::{p4_by_name, P4_PROGRAMS};

/// Configuration of a P4 hunt campaign.
#[derive(Debug, Clone)]
pub struct P4HuntConfig {
    /// Corpus programs to hunt over (registry names); empty = all.
    pub programs: Vec<String>,
    /// Mutants seeded per fault class per program.
    pub mutants_per_class: usize,
    /// Campaign seed: mutant selection and fuzz seeds derive from it.
    pub seed: u64,
    /// Backends each mutant is evaluated on.
    pub levels: Vec<OptLevel>,
    /// Packets per differential fuzz run.
    pub fuzz_phvs: usize,
    /// Independently seeded fuzz runs per (mutant, level) before the
    /// witness fallback.
    pub fuzz_runs: usize,
    /// Bit-width cap on randomized header fields.
    pub input_bits: u32,
    /// Worker threads for the evaluation shards.
    pub workers: usize,
    /// Cap on differential batches per (mutant, level) evaluation
    /// (`None` = the full phase schedule).
    pub case_budget: Option<usize>,
    /// Crash-proofing: checkpoint/resume/budget options. Excluded from
    /// the campaign fingerprint — a resumed run may change them freely.
    pub runtime: RuntimeOptions,
}

impl Default for P4HuntConfig {
    fn default() -> Self {
        P4HuntConfig {
            programs: Vec::new(),
            mutants_per_class: 2,
            seed: 0x000D_122B,
            levels: OptLevel::ALL.to_vec(),
            fuzz_phvs: 2_000,
            fuzz_runs: 2,
            input_bits: 16,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
            case_budget: None,
            runtime: RuntimeOptions::default(),
        }
    }
}

/// How (whether) one mutant evaluation detected its fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum P4Detection {
    /// Caught by fresh seeded fuzzing (`druzhba p4-fuzz --seed` replays).
    Fuzz {
        /// The diverging traffic seed.
        seed: u64,
    },
    /// Missed by fresh seeds, caught by the screening probe's witness.
    Witness {
        /// The witness traffic seed.
        seed: u64,
    },
    /// A backend panicked while evaluating the mutant — recorded as a
    /// detection (the crash *is* the divergence) with the replay seed.
    Panic {
        /// The traffic seed that provoked the panic.
        seed: u64,
    },
    /// Survived every phase under this budget.
    Undetected,
}

/// Stable JSON/snapshot key for a detection.
fn detector_key(d: &P4Detection) -> &'static str {
    match d {
        P4Detection::Fuzz { .. } => "fuzz",
        P4Detection::Witness { .. } => "witness",
        P4Detection::Panic { .. } => "panic",
        P4Detection::Undetected => "none",
    }
}

/// Outcome of evaluating one mutant on one backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct P4MutantOutcome {
    /// Corpus program name.
    pub program: String,
    /// The injected fault.
    pub fault: P4Fault,
    /// Backend evaluated.
    pub level: OptLevel,
    /// How the fault was detected, if at all.
    pub detection: P4Detection,
    /// Differential batches executed up to and including the detecting
    /// one (fresh fuzz runs then the witness replay; the full budget when
    /// undetected) — the per-mutant executions-to-detection figure
    /// `BENCH_greybox.json` compares against greybox search.
    pub executions: usize,
    /// The observed divergence (`None` when undetected).
    pub verdict: Option<Verdict>,
    /// Minimized counterexample (`None` when undetected).
    pub minimized: Option<MinimizedCounterExample>,
}

impl P4MutantOutcome {
    /// True if the fault was detected on this backend.
    pub fn detected(&self) -> bool {
        !matches!(self.detection, P4Detection::Undetected)
    }
}

/// The checkpoint-codable essence of one completed evaluation: the
/// aggregate keys plus the verbatim JSON row. A resumed campaign restores
/// these instead of re-evaluating, and because the JSON is stored
/// verbatim the final report is byte-identical to an uninterrupted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct P4EvalRecord {
    /// Corpus program name.
    pub program: String,
    /// The injected fault's class.
    pub fault_kind: P4FaultKind,
    /// Backend evaluated.
    pub level: OptLevel,
    /// Stable detector key (`fuzz`/`witness`/`panic`/`none`).
    pub detector: &'static str,
    /// The verdict's class key (`pass` when undetected).
    pub verdict_class: &'static str,
    /// Differential batches executed.
    pub executions: usize,
    /// The verbatim JSON report row.
    pub json: String,
}

/// Project one outcome into its checkpoint record.
fn record_of(o: &P4MutantOutcome) -> P4EvalRecord {
    P4EvalRecord {
        program: o.program.clone(),
        fault_kind: o.fault.kind(),
        level: o.level,
        detector: detector_key(&o.detection),
        verdict_class: o.verdict.as_ref().map_or("pass", |v| v.class().key()),
        executions: o.executions,
        json: outcome_json(o),
    }
}

/// One snapshot line per completed task: tab-separated keys, JSON last
/// (the JSON row never contains a raw tab or newline; snapshot escaping
/// covers the rest).
fn record_line(idx: usize, r: &P4EvalRecord) -> String {
    format!(
        "{idx}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        r.program,
        r.fault_kind.key(),
        r.level.key(),
        r.detector,
        r.verdict_class,
        r.executions,
        r.json
    )
}

fn p4_fault_kind_from_key(key: &str) -> Option<P4FaultKind> {
    P4FaultKind::ALL.into_iter().find(|k| k.key() == key)
}

fn opt_level_from_key(key: &str) -> Option<OptLevel> {
    OptLevel::ALL.into_iter().find(|l| l.key() == key)
}

fn detector_from_key(key: &str) -> Option<&'static str> {
    ["fuzz", "witness", "panic", "none"]
        .into_iter()
        .find(|k| *k == key)
}

fn verdict_class_from_key(key: &str) -> Option<&'static str> {
    [
        "pass",
        "incompatible",
        "length_mismatch",
        "container_mismatch",
        "state_mismatch",
        "backend_panic",
    ]
    .into_iter()
    .find(|k| *k == key)
}

/// Parse one snapshot line back into `(task_index, record)`; `None` on
/// any malformed field (the caller re-evaluates that task).
fn parse_record_line(line: &str) -> Option<(usize, P4EvalRecord)> {
    let mut parts = line.splitn(8, '\t');
    let idx: usize = parts.next()?.parse().ok()?;
    let program = parts.next()?.to_string();
    let fault_kind = p4_fault_kind_from_key(parts.next()?)?;
    let level = opt_level_from_key(parts.next()?)?;
    let detector = detector_from_key(parts.next()?)?;
    let verdict_class = verdict_class_from_key(parts.next()?)?;
    let executions: usize = parts.next()?.parse().ok()?;
    let json = parts.next()?.to_string();
    Some((
        idx,
        P4EvalRecord {
            program,
            fault_kind,
            level,
            detector,
            verdict_class,
            executions,
            json,
        },
    ))
}

/// Aggregate result of a P4 hunt campaign.
#[derive(Debug, Clone)]
pub struct P4HuntReport {
    /// One record per completed (program, mutant, level) task in
    /// deterministic task order — restored from a checkpoint or produced
    /// by this process; the canonical source for aggregates and JSON.
    pub records: Vec<P4EvalRecord>,
    /// Structured outcomes for the evaluations *this process* ran (a
    /// resumed campaign restores earlier tasks as records only).
    pub outcomes: Vec<P4MutantOutcome>,
    /// Tasks abandoned because the wall-clock budget expired.
    pub truncated: usize,
    /// Candidates discarded by screening as behaviorally neutral.
    pub neutral_discarded: usize,
    /// The configuration that produced the report.
    pub config: P4HuntConfig,
}

impl P4HuntReport {
    /// Total completed evaluations.
    pub fn evaluations(&self) -> usize {
        self.records.len()
    }

    /// Detected evaluations.
    pub fn detected(&self) -> usize {
        self.records.iter().filter(|r| r.detector != "none").count()
    }

    /// Detected fraction (1.0 for an empty campaign).
    pub fn detection_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.detected() as f64 / self.evaluations() as f64
    }

    /// `(total, detected)` per fault class.
    pub fn by_fault_kind(&self) -> BTreeMap<P4FaultKind, (usize, usize)> {
        let mut out = BTreeMap::new();
        for r in &self.records {
            let e = out.entry(r.fault_kind).or_insert((0, 0));
            e.0 += 1;
            e.1 += usize::from(r.detector != "none");
        }
        out
    }

    /// Render the campaign as a JSON document (hand-written — the
    /// vendored `serde` is a no-op stand-in; schema in DESIGN.md §7).
    pub fn to_json(&self) -> String {
        let cfg = &self.config;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"config\": {{");
        let _ = writeln!(s, "    \"seed\": {},", cfg.seed);
        let _ = writeln!(s, "    \"mutants_per_class\": {},", cfg.mutants_per_class);
        let levels: Vec<String> = cfg
            .levels
            .iter()
            .map(|l| format!("\"{}\"", l.key()))
            .collect();
        let _ = writeln!(s, "    \"levels\": [{}],", levels.join(", "));
        let _ = writeln!(s, "    \"fuzz_phvs\": {},", cfg.fuzz_phvs);
        let _ = writeln!(s, "    \"fuzz_runs\": {},", cfg.fuzz_runs);
        let _ = writeln!(s, "    \"input_bits\": {},", cfg.input_bits);
        let case_budget = cfg
            .case_budget
            .map_or("null".to_string(), |b| b.to_string());
        let _ = writeln!(s, "    \"case_budget\": {case_budget}");
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"summary\": {{");
        let _ = writeln!(s, "    \"evaluations\": {},", self.evaluations());
        let _ = writeln!(s, "    \"truncated\": {},", self.truncated);
        let _ = writeln!(s, "    \"detected\": {},", self.detected());
        let _ = writeln!(s, "    \"detection_rate\": {:.4},", self.detection_rate());
        let _ = writeln!(s, "    \"neutral_discarded\": {},", self.neutral_discarded);
        let by_fault: Vec<String> = self
            .by_fault_kind()
            .into_iter()
            .map(|(kind, (total, detected))| {
                format!(
                    "\"{}\": {{\"total\": {total}, \"detected\": {detected}}}",
                    kind.key()
                )
            })
            .collect();
        let _ = writeln!(s, "    \"by_fault\": {{{}}}", by_fault.join(", "));
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"mutants\": [");
        let rows: Vec<&str> = self.records.iter().map(|r| r.json.as_str()).collect();
        let _ = writeln!(s, "{}", rows.join(",\n"));
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }
}

fn esc(raw: &str) -> String {
    raw.replace('\\', "\\\\").replace('"', "\\\"")
}

fn outcome_json(o: &P4MutantOutcome) -> String {
    let mut s = String::new();
    let _ = write!(s, "    {{\"program\": \"{}\", ", esc(&o.program));
    let fault = match &o.fault {
        P4Fault::RemovedEntry { table, priority } => format!(
            "{{\"kind\": \"removed_entry\", \"table\": \"{}\", \"priority\": {priority}}}",
            esc(table)
        ),
        P4Fault::ActionArg {
            table,
            priority,
            arg,
            old,
            new,
        } => format!(
            "{{\"kind\": \"action_arg\", \"table\": \"{}\", \"priority\": {priority}, \
             \"arg\": {arg}, \"old\": {old}, \"new\": {new}}}",
            esc(table)
        ),
        P4Fault::MatchValue {
            table,
            priority,
            clause,
            old,
            new,
        } => format!(
            "{{\"kind\": \"match_value\", \"table\": \"{}\", \"priority\": {priority}, \
             \"clause\": {clause}, \"old\": {old}, \"new\": {new}}}",
            esc(table)
        ),
    };
    let _ = write!(s, "\"fault\": {fault}, \"level\": \"{}\", ", o.level.key());
    match &o.detection {
        P4Detection::Fuzz { seed } => {
            let _ = write!(s, "\"detected_by\": \"fuzz\", \"seed\": {seed}, ");
        }
        P4Detection::Witness { seed } => {
            let _ = write!(s, "\"detected_by\": \"witness\", \"seed\": {seed}, ");
        }
        P4Detection::Panic { seed } => {
            let _ = write!(s, "\"detected_by\": \"panic\", \"seed\": {seed}, ");
        }
        P4Detection::Undetected => {
            let _ = write!(s, "\"detected_by\": \"none\", ");
        }
    }
    let _ = write!(s, "\"executions_to_detection\": {}, ", o.executions);
    let verdict = o
        .verdict
        .as_ref()
        .map_or("null".to_string(), |v| format!("\"{}\"", v.class().key()));
    let _ = write!(s, "\"verdict\": {verdict}, ");
    match &o.minimized {
        None => {
            let _ = write!(s, "\"minimized\": null}}");
        }
        Some(mce) => {
            let packets: Vec<String> = mce
                .input
                .phvs
                .iter()
                .map(|p| {
                    let vals: Vec<String> = (0..p.len()).map(|c| p.get(c).to_string()).collect();
                    format!("[{}]", vals.join(", "))
                })
                .collect();
            let _ = write!(
                s,
                "\"minimized\": {{\"original_packets\": {}, \"packets\": {}, \
                 \"input\": [{}], \"checks\": {}}}}}",
                mce.original_packets,
                mce.packets(),
                packets.join(", "),
                mce.checks,
            );
        }
    }
    s
}

/// One seeded mutant awaiting evaluation.
struct Mutant {
    target: usize,
    fault: P4Fault,
    entries: Vec<TableEntry>,
    /// Traffic seed under which the screening probe saw the divergence.
    witness: u64,
}

/// Run a hunt over named corpus programs (empty = the whole corpus).
pub fn p4_hunt(cfg: &P4HuntConfig) -> Result<P4HuntReport, String> {
    let targets: Vec<(String, P4Workload)> = if cfg.programs.is_empty() {
        P4_PROGRAMS
            .iter()
            .map(|def| {
                def.workload()
                    .map(|w| (def.name.to_string(), w))
                    .map_err(|e| format!("{}: {e}", def.name))
            })
            .collect::<Result<_, _>>()?
    } else {
        cfg.programs
            .iter()
            .map(|name| {
                let def = p4_by_name(name).ok_or_else(|| {
                    format!("unknown P4 program `{name}` (see `druzhba programs`)")
                })?;
                def.workload()
                    .map(|w| (def.name.to_string(), w))
                    .map_err(|e| format!("{name}: {e}"))
            })
            .collect::<Result<_, _>>()?
    };
    Ok(p4_hunt_workloads(cfg, &targets))
}

/// Run a hunt over explicit (name, workload) targets — the entry point
/// the CLI uses for ad-hoc `.p4` files.
pub fn p4_hunt_workloads(cfg: &P4HuntConfig, targets: &[(String, P4Workload)]) -> P4HuntReport {
    // Seed mutants deterministically per program and fault class,
    // screening candidates for behavioral effect (the P4 analog of
    // mutation testing's equivalent-mutant problem: a match-value flip
    // under masked-out ternary bits changes nothing).
    let mut mutants: Vec<Mutant> = Vec::new();
    let mut neutral_discarded = 0usize;
    let mut candidate_counter = 0u64;
    for (ti, (_, workload)) in targets.iter().enumerate() {
        let mut injector = P4FaultInjector::new(shard_seed(cfg.seed, ti as u64));
        for kind in P4FaultKind::ALL {
            let mut seeded: Vec<P4Fault> = Vec::new();
            // Faults already probed and found behaviorally neutral: a
            // redraw of the same fault must neither pay another
            // screening probe nor inflate `neutral_discarded`.
            let mut known_neutral: Vec<P4Fault> = Vec::new();
            for _ in 0..cfg.mutants_per_class * 10 {
                if seeded.len() >= cfg.mutants_per_class {
                    break;
                }
                let Some((entries, fault)) = injector.inject(&workload.entries, kind) else {
                    break;
                };
                if seeded.contains(&fault) || known_neutral.contains(&fault) {
                    continue;
                }
                let probe_seed = shard_seed(cfg.seed ^ 0x5343_524E, candidate_counter); // "SCRN"
                candidate_counter += 1;
                let Some(witness) = screen(cfg, workload, &entries, probe_seed) else {
                    neutral_discarded += 1;
                    known_neutral.push(fault);
                    continue;
                };
                seeded.push(fault.clone());
                mutants.push(Mutant {
                    target: ti,
                    fault,
                    entries,
                    witness,
                });
            }
        }
    }

    // Every (mutant, level) pair is one evaluation task. Task order (and
    // thus record order and every per-task seed) is a pure function of
    // the configuration, so restored and fresh evaluations interleave
    // into the exact report an uninterrupted run produces.
    let tasks: Vec<(usize, OptLevel)> = mutants
        .iter()
        .enumerate()
        .flat_map(|(mi, _)| cfg.levels.iter().map(move |&l| (mi, l)))
        .collect();
    let total = tasks.len();
    let fingerprint = snapshot::fingerprint_of(&[
        "p4-hunt".to_string(),
        format!(
            "{:?}",
            P4HuntConfig {
                runtime: RuntimeOptions::default(),
                ..cfg.clone()
            }
        ),
    ]);

    // Resume: restore completed evaluations by task index.
    let mut slots: Vec<Option<P4EvalRecord>> = vec![None; total];
    if cfg.runtime.resume {
        if let Some(dir) = cfg.runtime.checkpoint_dir.as_deref() {
            let loaded = snapshot::load_latest(dir, "p4-hunt", fingerprint);
            for w in &loaded.warnings {
                eprintln!("warning: {w}");
            }
            for line in loaded.lines.unwrap_or_default() {
                match parse_record_line(&line) {
                    Some((idx, record)) if idx < total => slots[idx] = Some(record),
                    _ => eprintln!("warning: ignoring malformed p4-hunt checkpoint line"),
                }
            }
        }
    }
    let pending: Vec<(usize, usize, OptLevel)> = tasks
        .iter()
        .enumerate()
        .filter(|(i, _)| slots[*i].is_none())
        .map(|(i, &(mi, level))| (i, mi, level))
        .collect();

    let deadline = cfg.runtime.deadline(Instant::now());
    let every = cfg.runtime.effective_every();
    let ckpt_dir = cfg.runtime.checkpoint_dir.clone();
    let mutants = &mutants;

    // A worker that dies at the pool level still yields a per-task row:
    // the panic becomes a `P4Detection::Panic` outcome.
    let death_outcome = |gi: usize, mi: usize, level: OptLevel, payload: &str| -> P4MutantOutcome {
        let mutant: &Mutant = &mutants[mi];
        P4MutantOutcome {
            program: targets[mutant.target].0.clone(),
            fault: mutant.fault.clone(),
            level,
            detection: P4Detection::Panic {
                seed: shard_seed(shard_seed(cfg.seed ^ 0x5034_4855, gi as u64), 0),
            },
            executions: 0,
            verdict: Some(Verdict::BackendPanic {
                payload: payload.to_string(),
            }),
            minimized: None,
        }
    };

    let mut since_save = 0usize;
    let results = {
        let slots = &mut slots;
        run_stealing_observed(
            pending.clone(),
            cfg.workers,
            deadline,
            |_, (gi, mi, level)| evaluate(cfg, targets, &mutants[mi], level, gi as u64),
            |i, result| {
                let (gi, mi, level) = pending[i];
                slots[gi] = Some(match result {
                    Ok(outcome) => record_of(outcome),
                    Err(p) => record_of(&death_outcome(gi, mi, level, &p.payload)),
                });
                since_save += 1;
                if since_save >= every {
                    since_save = 0;
                    if let Some(dir) = ckpt_dir.as_deref() {
                        save_records(dir, fingerprint, slots);
                        let completed = slots.iter().flatten().count();
                        snapshot::write_heartbeat(dir, "p4-hunt", completed, total, false);
                    }
                }
            },
        )
    };

    // Index-ordered post-pass: structured outcomes for this process's
    // evaluations, truncation count for budget-expired slots.
    let mut outcomes: Vec<P4MutantOutcome> = Vec::new();
    let mut truncated = 0usize;
    for (i, result) in results.into_iter().enumerate() {
        let (gi, mi, level) = pending[i];
        match result {
            Some(Ok(outcome)) => outcomes.push(outcome),
            Some(Err(p)) => outcomes.push(death_outcome(gi, mi, level, &p.payload)),
            None => truncated += 1,
        }
    }
    if let Some(dir) = ckpt_dir.as_deref() {
        save_records(dir, fingerprint, &slots);
        let completed = slots.iter().flatten().count();
        snapshot::write_heartbeat(dir, "p4-hunt", completed, total, truncated > 0);
    }

    let records: Vec<P4EvalRecord> = slots.into_iter().flatten().collect();
    P4HuntReport {
        records,
        outcomes,
        truncated,
        neutral_discarded,
        config: cfg.clone(),
    }
}

/// Write every completed record to the campaign snapshot (atomic write +
/// rotation happen inside [`snapshot::save`]).
fn save_records(dir: &Path, fingerprint: u64, slots: &[Option<P4EvalRecord>]) {
    let lines: Vec<String> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.as_ref().map(|r| record_line(i, r)))
        .collect();
    if let Err(e) = snapshot::save(dir, "p4-hunt", fingerprint, &lines) {
        eprintln!("warning: failed to write p4-hunt checkpoint: {e}");
    }
}

/// Probe a candidate for behavioral effect: seeded differential fuzz runs
/// on the default backend. Returns the first diverging traffic seed, or
/// `None` for a presumed-equivalent mutant.
fn screen(
    cfg: &P4HuntConfig,
    workload: &P4Workload,
    entries: &[TableEntry],
    probe_seed: u64,
) -> Option<u64> {
    // Screen by proof first: if the mutated entry set compiles to the
    // same canonical symbolic transfer function as the intended one, no
    // packet stream can distinguish them — discard without probing.
    if p4_symbolic_entries_equivalent(
        &workload.hlir,
        &workload.entries,
        entries,
        &workload.lowering,
    ) == Some(true)
    {
        return None;
    }
    for run in 0..cfg.fuzz_runs.max(1) {
        let seed = shard_seed(probe_seed, run as u64);
        let input = P4Traffic::new(workload, seed, cfg.input_bits).trace(cfg.fuzz_phvs);
        if !run_p4_case(workload, entries, OptLevel::SccInline, &input).passed() {
            return Some(seed);
        }
    }
    None
}

/// Evaluate one mutant on one backend: fresh seeded fuzzing, then the
/// witness seed, then minimize whatever diverged.
fn evaluate(
    cfg: &P4HuntConfig,
    targets: &[(String, P4Workload)],
    mutant: &Mutant,
    level: OptLevel,
    task_index: u64,
) -> P4MutantOutcome {
    let (name, workload) = &targets[mutant.target];

    let fuzz_round = |seed: u64| -> Option<(Verdict, Option<MinimizedCounterExample>)> {
        let input = P4Traffic::new(workload, seed, cfg.input_bits).trace(cfg.fuzz_phvs);
        let verdict = run_p4_case(workload, &mutant.entries, level, &input);
        if verdict.passed() {
            return None;
        }
        // A panicking backend can't be delta-debugged — minimization
        // would rebuild it outside the panic guard and re-trip the abort.
        if matches!(verdict, Verdict::BackendPanic { .. }) {
            return Some((verdict, None));
        }
        let minimized = p4_minimize(workload, &mutant.entries, level, &input, 3_000);
        Some((verdict, minimized))
    };

    // Phase 1: fresh seeded fuzzing (ordinary detection power).
    // `executions` counts differential batches so the report carries
    // executions-to-detection per mutant; the per-case budget caps it.
    let budget = cfg.case_budget.unwrap_or(usize::MAX).max(1);
    let mut executions = 0usize;
    let task_seed = shard_seed(cfg.seed ^ 0x5034_4855, task_index); // "P4HU"
    for run in 0..cfg.fuzz_runs {
        if executions >= budget {
            break;
        }
        let seed = shard_seed(task_seed, run as u64);
        executions += 1;
        if let Some((verdict, minimized)) = fuzz_round(seed) {
            let detection = if matches!(verdict, Verdict::BackendPanic { .. }) {
                P4Detection::Panic { seed }
            } else {
                P4Detection::Fuzz { seed }
            };
            return P4MutantOutcome {
                program: name.clone(),
                fault: mutant.fault.clone(),
                level,
                detection,
                executions,
                verdict: Some(verdict),
                minimized,
            };
        }
    }

    // Phase 2: the screening witness (a known-diverging stream; backends
    // are observationally equivalent, so it fires on every level).
    if executions < budget {
        executions += 1;
        if let Some((verdict, minimized)) = fuzz_round(mutant.witness) {
            let detection = if matches!(verdict, Verdict::BackendPanic { .. }) {
                P4Detection::Panic {
                    seed: mutant.witness,
                }
            } else {
                P4Detection::Witness {
                    seed: mutant.witness,
                }
            };
            return P4MutantOutcome {
                program: name.clone(),
                fault: mutant.fault.clone(),
                level,
                detection,
                executions,
                verdict: Some(verdict),
                minimized,
            };
        }
    }

    P4MutantOutcome {
        program: name.clone(),
        fault: mutant.fault.clone(),
        level,
        detection: P4Detection::Undetected,
        executions,
        verdict: None,
        minimized: None,
    }
}

// ----------------------------------------------------------------------
// Cross-model differential: interpreter vs. RMT pipeline vs. dRMT.
// ----------------------------------------------------------------------

/// Result of one cross-model check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossModelReport {
    /// Packets driven through the models.
    pub packets: usize,
    /// The dRMT schedule's makespan (ticks per packet; 0 when the dRMT
    /// leg was skipped).
    pub drmt_makespan: u32,
    /// RMT pipeline depth (stages).
    pub rmt_stages: usize,
    /// `None` when the dRMT machine participated; `Some(reason)` when
    /// its leg was skipped because the program violates the dRMT
    /// state-consistency precondition (see [`drmt_state_consistent`]).
    pub drmt_skipped: Option<String>,
}

/// Whether the dRMT machine's pipelined execution is guaranteed
/// equivalent to sequential per-packet execution for this program: every
/// register/counter must be touched by at most one *live* table (guards
/// statically true). A stateful object shared across tables has
/// cross-packet read/write hazards the scheduler does not serialize —
/// `drmt::machine`'s documented state-consistency model — so comparing
/// such a program against the sequential interpreter would report
/// spurious divergences. Returns the first shared object's name, or
/// `None` when the program is consistent.
pub fn drmt_state_consistent(workload: &P4Workload) -> Option<String> {
    let mut owner: BTreeMap<&str, usize> = BTreeMap::new();
    for (t, info) in workload.hlir.tables.iter().enumerate() {
        let live = info
            .guards
            .iter()
            .all(|(h, pol)| workload.hlir.header_valid(h) == *pol);
        if !live {
            continue;
        }
        for obj in &info.stateful {
            if let Some(&first) = owner.get(obj.as_str()) {
                if first != t {
                    return Some(obj.clone());
                }
            } else {
                owner.insert(obj, t);
            }
        }
    }
    None
}

/// Drive the same seeded packet stream through the sequential reference
/// interpreter, the staged RMT match-action pipeline
/// ([`OptLevel::Fused`]), and the scheduled dRMT machine, and assert all
/// three agree on every output packet and on final registers/counters —
/// the dRMT-schedule-vs-RMT-schedule oracle.
///
/// The dRMT leg only runs when the program satisfies the machine's
/// state-consistency precondition ([`drmt_state_consistent`]); otherwise
/// it is skipped (recorded in [`CrossModelReport::drmt_skipped`]) rather
/// than reported as a spurious divergence — the dRMT model for shared
/// stateful objects is the paper's explicit "ongoing work".
pub fn cross_model_check(
    workload: &P4Workload,
    seed: u64,
    packets: usize,
    input_bits: u32,
) -> Result<CrossModelReport, String> {
    let layout = &workload.lowering.layout;
    let input = P4Traffic::new(workload, seed, input_bits).trace(packets);
    let packet_list: Vec<druzhba_p4::exec::Packet> = input
        .phvs
        .iter()
        .enumerate()
        .map(|(i, phv)| layout.phv_to_packet(i as u64, phv))
        .collect();

    // Model 1: sequential reference interpreter.
    let mut interp = workload.interpreter();
    let (expected_packets, _) = interp.run(packet_list.clone());

    // Model 2: staged RMT match-action pipeline (fused backend).
    let mut pipeline = MatPipeline::generate(
        &workload.hlir,
        &workload.entries,
        &workload.lowering,
        OptLevel::Fused,
    )
    .map_err(|e| e.to_string())?;
    let rmt_out = pipeline.run(&input);
    for (i, (expected, actual)) in expected_packets.iter().zip(rmt_out.phvs.iter()).enumerate() {
        let expected_phv = layout.packet_to_phv(expected);
        if &expected_phv != actual {
            return Err(format!(
                "RMT pipeline diverges from interpreter on packet {i}: \
                 expected {expected_phv}, got {actual}"
            ));
        }
    }

    // Model 3: scheduled dRMT machine — only when its pipelined
    // execution is guaranteed sequential-equivalent for this program.
    type StatefulState = (BTreeMap<String, Vec<Value>>, BTreeMap<String, Vec<u64>>);
    let drmt_skipped = drmt_state_consistent(workload)
        .map(|obj| format!("stateful object `{obj}` is shared across tables"));
    let mut makespan = 0;
    let mut drmt_state: Option<StatefulState> = None;
    if drmt_skipped.is_none() {
        let dag = build_dag(&workload.hlir);
        let sched_cfg = ScheduleConfig::default();
        let schedule = solve(&dag, &sched_cfg).map_err(|e| e.to_string())?;
        makespan = schedule.makespan();
        let mut machine = DrmtMachine::new(
            workload.hlir.clone(),
            schedule,
            sched_cfg,
            workload.entries.clone(),
        )
        .map_err(|e| e.to_string())?;
        let drmt_out = machine.run(packet_list);
        if drmt_out.len() != expected_packets.len() {
            return Err(format!(
                "dRMT completed {} of {} packets",
                drmt_out.len(),
                expected_packets.len()
            ));
        }
        for (i, (expected, actual)) in expected_packets.iter().zip(drmt_out.iter()).enumerate() {
            if expected != actual {
                return Err(format!(
                    "dRMT machine diverges from interpreter on packet {i}: \
                     expected {expected:?}, got {actual:?}"
                ));
            }
        }
        drmt_state = Some((machine.registers().clone(), machine.counters().clone()));
    }

    // Final state: every participating model agrees.
    let mut reg_views: Vec<(&str, BTreeMap<String, Vec<Value>>)> =
        vec![("RMT pipeline", pipeline.registers())];
    let mut ctr_views: Vec<(&str, BTreeMap<String, Vec<u64>>)> =
        vec![("RMT pipeline", pipeline.counters())];
    if let Some((regs, ctrs)) = drmt_state {
        reg_views.push(("dRMT machine", regs));
        ctr_views.push(("dRMT machine", ctrs));
    }
    for (model, regs) in &reg_views {
        if regs != interp.registers() {
            return Err(format!(
                "{model} register state diverges: expected {:?}, got {regs:?}",
                interp.registers()
            ));
        }
    }
    for (model, ctrs) in &ctr_views {
        if ctrs != interp.counters() {
            return Err(format!(
                "{model} counter state diverges: expected {:?}, got {ctrs:?}",
                interp.counters()
            ));
        }
    }

    Ok(CrossModelReport {
        packets,
        drmt_makespan: makespan,
        rmt_stages: workload.lowering.num_stages(),
        drmt_skipped,
    })
}

/// Replay one input trace through the P4 differential check (used by the
/// integration tests to re-validate minimized counterexamples).
pub fn p4_replay(
    workload: &P4Workload,
    entries: &[TableEntry],
    level: OptLevel,
    input: &Trace,
) -> Verdict {
    run_p4_case(workload, entries, level, input)
}
