//! Semantic analysis of parsed ALU specifications.
//!
//! Checks performed:
//! - name sets (state variables, hole variables, packet fields) are disjoint
//!   and contain no duplicates;
//! - every variable reference resolves to a declared name;
//! - assignment targets are declared state variables (so stateless ALUs,
//!   which declare none, cannot write state);
//! - stateless ALUs are guaranteed to `return` on every control path —
//!   their PHV-visible output would otherwise be undefined;
//! - stateful ALUs declare at least one state variable (otherwise they are
//!   stateless and should say so);
//! - hole local names are unique.

use std::collections::HashSet;

use druzhba_core::names::AluKind;
use druzhba_core::{Error, Result};

use crate::ast::{AluSpec, Expr, Stmt};

/// Validate an [`AluSpec`]; returns the first violation found.
pub fn analyze(spec: &AluSpec) -> Result<()> {
    let err = |message: String| Error::AluParse { line: 0, message };

    // Disjoint, duplicate-free name sets.
    let mut seen: HashSet<&str> = HashSet::new();
    for name in spec
        .state_vars
        .iter()
        .chain(spec.packet_fields.iter())
        .chain(spec.hole_vars.iter().map(|h| &h.name))
    {
        if !seen.insert(name.as_str()) {
            return Err(err(format!(
                "name `{name}` declared more than once across state variables, \
                 hole variables, and packet fields"
            )));
        }
    }

    if spec.packet_fields.is_empty() {
        return Err(err("ALU must declare at least one packet field".into()));
    }

    match spec.kind {
        AluKind::Stateful => {
            if spec.state_vars.is_empty() {
                return Err(err(
                    "stateful ALU must declare at least one state variable".into()
                ));
            }
        }
        AluKind::Stateless => {
            if !spec.state_vars.is_empty() {
                return Err(err("stateless ALU must not declare state variables".into()));
            }
            if !guarantees_return(&spec.body) {
                return Err(err(
                    "stateless ALU must return a value on every control path".into(),
                ));
            }
        }
    }

    // Unique hole names.
    let mut hole_names = HashSet::new();
    for h in &spec.holes {
        if !hole_names.insert(h.local.as_str()) {
            return Err(err(format!("duplicate hole name `{}`", h.local)));
        }
    }

    check_stmts(spec, &spec.body)?;
    Ok(())
}

/// True if every control path through `stmts` executes a `return`.
pub fn guarantees_return(stmts: &[Stmt]) -> bool {
    for stmt in stmts {
        match stmt {
            Stmt::Return(_) => return true,
            Stmt::If { arms, else_body } => {
                // An if-chain guarantees a return only if every arm *and*
                // the else body do; without an else the fall-through path
                // escapes.
                let all_arms = arms.iter().all(|(_, body)| guarantees_return(body));
                if all_arms && !else_body.is_empty() && guarantees_return(else_body) {
                    return true;
                }
            }
            Stmt::Assign { .. } => {}
        }
    }
    false
}

fn check_stmts(spec: &AluSpec, stmts: &[Stmt]) -> Result<()> {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { target, value } => {
                if spec.state_var_index(target).is_none() {
                    return Err(Error::AluParse {
                        line: 0,
                        message: format!(
                            "assignment target `{target}` is not a declared state variable"
                        ),
                    });
                }
                check_expr(spec, value)?;
            }
            Stmt::If { arms, else_body } => {
                for (cond, body) in arms {
                    check_expr(spec, cond)?;
                    check_stmts(spec, body)?;
                }
                check_stmts(spec, else_body)?;
            }
            Stmt::Return(e) => check_expr(spec, e)?,
        }
    }
    Ok(())
}

fn check_expr(spec: &AluSpec, expr: &Expr) -> Result<()> {
    let mut bad = None;
    expr.visit(&mut |e| {
        if bad.is_some() {
            return;
        }
        if let Expr::Var(name) = e {
            let known = spec.packet_field_index(name).is_some()
                || spec.state_var_index(name).is_some()
                || spec.hole_vars.iter().any(|h| &h.name == name);
            if !known {
                bad = Some(name.clone());
            }
        }
    });
    match bad {
        Some(name) => Err(Error::AluParse {
            line: 0,
            message: format!("reference to undeclared variable `{name}`"),
        }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check(src: &str) -> Result<()> {
        analyze(&parse(&lex(src).unwrap())?)
    }

    #[test]
    fn valid_stateful_passes() {
        check(
            "type: stateful\nstate variables: {s}\npacket fields: {p}\n\
             s = s + p;",
        )
        .unwrap();
    }

    #[test]
    fn valid_stateless_passes() {
        check("type: stateless\npacket fields: {p}\nreturn p + 1;").unwrap();
    }

    #[test]
    fn undeclared_variable_rejected() {
        let err = check(
            "type: stateful\nstate variables: {s}\npacket fields: {p}\n\
             s = s + q;",
        )
        .unwrap_err();
        assert!(err.to_string().contains("undeclared variable `q`"));
    }

    #[test]
    fn assignment_to_packet_field_rejected() {
        let err = check(
            "type: stateful\nstate variables: {s}\npacket fields: {p}\n\
             p = s;",
        )
        .unwrap_err();
        assert!(err.to_string().contains("not a declared state variable"));
    }

    #[test]
    fn stateless_with_state_vars_rejected() {
        let err = check(
            "type: stateless\nstate variables: {s}\npacket fields: {p}\n\
             return p;",
        )
        .unwrap_err();
        assert!(err.to_string().contains("must not declare state"));
    }

    #[test]
    fn stateful_without_state_vars_rejected() {
        let err = check("type: stateful\npacket fields: {p}\nreturn p;").unwrap_err();
        assert!(err.to_string().contains("at least one state variable"));
    }

    #[test]
    fn stateless_missing_return_rejected() {
        let err = check(
            "type: stateless\npacket fields: {p}\n\
             if (p == 0) { return 1; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("every control path"));
    }

    #[test]
    fn stateless_return_in_all_branches_passes() {
        check(
            "type: stateless\npacket fields: {p}\n\
             if (p == 0) { return 1; } else { return 2; }",
        )
        .unwrap();
    }

    #[test]
    fn stateless_return_after_partial_if_passes() {
        check(
            "type: stateless\npacket fields: {p}\n\
             if (p == 0) { return 1; }\nreturn 2;",
        )
        .unwrap();
    }

    #[test]
    fn duplicate_names_across_sets_rejected() {
        let err = check(
            "type: stateful\nstate variables: {x}\npacket fields: {x}\n\
             x = 1;",
        )
        .unwrap_err();
        assert!(err.to_string().contains("more than once"));
    }

    #[test]
    fn duplicate_packet_fields_rejected() {
        let err = check("type: stateless\npacket fields: {p, p}\nreturn p;").unwrap_err();
        assert!(err.to_string().contains("more than once"));
    }

    #[test]
    fn empty_packet_fields_rejected() {
        let err = check("type: stateless\npacket fields: {}\nreturn 1;").unwrap_err();
        assert!(err.to_string().contains("at least one packet field"));
    }

    #[test]
    fn hole_variable_references_resolve() {
        check(
            "type: stateless\nhole variables: {opcode}\npacket fields: {p}\n\
             if (opcode == 0) { return p; } else { return 0; }",
        )
        .unwrap();
    }

    #[test]
    fn guarantees_return_nested() {
        // Nested ifs where every leaf returns.
        check(
            "type: stateless\npacket fields: {p, q}\n\
             if (p == 0) {\n\
               if (q == 0) { return 1; } else { return 2; }\n\
             } else { return 3; }",
        )
        .unwrap();
    }
}
