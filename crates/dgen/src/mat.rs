//! The match-action pipeline generator: execute a lowered P4 program on
//! the simulated RMT pipeline at every [`OptLevel`].
//!
//! The paper's dgen generates *"a family of simulators, one for each
//! possible pipeline configuration"* from machine code and an ALU spec.
//! This module is the same idea for the paper's §4 P4 direction: from a
//! resolved program ([`Hlir`]), populated table entries, and an RMT
//! lowering ([`RmtLowering`]), it generates an executable *match-action
//! pipeline description* — and, mirroring the ALU path, each
//! [`OptLevel`] selects a progressively more specialized backend:
//!
//! | Level | Strategy |
//! |-------|----------|
//! | [`OptLevel::Unoptimized`] | fields live in string-keyed maps; every lookup re-resolves names and match kinds at runtime |
//! | [`OptLevel::Scc`] | configuration constants propagated: fields resolved to frame slots, entry arguments folded into the action bodies, statically-false guards eliminated |
//! | [`OptLevel::SccInline`] | each table's match+action logic flattened into a linear compare-and-jump instruction program (per-table bytecode) |
//! | [`OptLevel::Fused`] | the whole pipeline fused into one flat instruction program over a single preallocated frame — zero heap allocations and zero string hashing per packet |
//!
//! **Execution discipline** (DESIGN.md §8): packets traverse stages in
//! order; at each stage boundary the frame is snapshotted, *matches read
//! the stage-entry snapshot* while *actions read and write the live
//! frame* in control order. Because the lowering places every match- and
//! action-dependent table pair in distinct stages, this is exactly
//! equivalent to the sequential reference interpreter
//! ([`druzhba_p4::exec::Interpreter`]) on well-lowered programs — and
//! diverges observably when a lowering or table-entry fault violates a
//! dependency, which is what the differential fuzzer exists to catch.
//!
//! Tables with LPM fields pre-sort their entries by total prefix length
//! (stable, so priority breaks ties); an entry's LPM score is constant —
//! an entry only hits when *all* its patterns match — so the first hit in
//! sorted order is the longest-prefix match, letting the compiled
//! backends use straight-line first-hit chains.

use std::collections::BTreeMap;

use druzhba_core::coverage::{edge_id, CoverageMap};
use druzhba_core::{Error, Phv, Result, Trace, Value};
use druzhba_p4::ast::{ActionArg, ActionDecl, MatchKind, Primitive};
use druzhba_p4::exec::{execute_action, initial_counters, initial_registers};
use druzhba_p4::hlir::Hlir;
use druzhba_p4::lower::{FieldLayout, RmtLowering};
use druzhba_p4::tables::{bind, BoundEntry, ProgramTables, TableEntry};

use crate::OptLevel;

/// An instruction operand: a frame slot (live value) or a folded
/// constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Read the live frame slot.
    Slot(usize),
    /// A constant (entry argument or literal), folded at generation time.
    Const(Value),
}

impl Src {
    #[inline]
    fn read(self, cur: &[Value]) -> Value {
        match self {
            Src::Slot(i) => cur[i],
            Src::Const(v) => v,
        }
    }
}

/// One instruction of the compiled match-action backends
/// ([`OptLevel::SccInline`] and [`OptLevel::Fused`]).
///
/// `Cmp*` instructions read the *stage-entry snapshot* and jump to `miss`
/// when the pattern fails; everything else reads/writes the live frame.
/// Jump targets are absolute indices into the owning program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatInstr {
    /// Stage boundary: copy the live frame into the snapshot.
    Snapshot,
    /// Exact match against the snapshot: `if snap[slot] != value -> miss`.
    CmpExact {
        slot: usize,
        value: Value,
        miss: usize,
    },
    /// Ternary match: `if snap[slot] & mask != value -> miss` (`value`
    /// pre-masked).
    CmpTernary {
        slot: usize,
        value: Value,
        mask: Value,
        miss: usize,
    },
    /// LPM match: `if snap[slot] >> shift != value -> miss` (`value`
    /// pre-shifted; zero-length prefixes emit no instruction).
    CmpLpm {
        slot: usize,
        value: Value,
        shift: u32,
        miss: usize,
    },
    /// Unconditional jump (end of a hit entry's action: skip the rest of
    /// the table).
    Jump { target: usize },
    /// `cur[dst] = src`.
    Set { dst: usize, src: Src },
    /// `cur[dst] = cur[dst].wrapping_add(src)`.
    Add { dst: usize, src: Src },
    /// `cur[dst] = cur[dst].wrapping_sub(src)`.
    Sub { dst: usize, src: Src },
    /// `cur[dst] = regs[base + idx]` (0 when `idx >= len`).
    RegRead {
        dst: usize,
        base: usize,
        len: usize,
        idx: Src,
    },
    /// `regs[base + idx] = src` (dropped when `idx >= len`).
    RegWrite {
        base: usize,
        len: usize,
        idx: Src,
        src: Src,
    },
    /// `ctrs[base + idx] += 1` (dropped when `idx >= len`).
    Count { base: usize, len: usize, idx: Src },
}

/// A resolved match pattern over frame slots (the [`OptLevel::Scc`]
/// representation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotPattern {
    Exact {
        slot: usize,
        value: Value,
    },
    Ternary {
        slot: usize,
        value: Value,
        mask: Value,
    },
    /// `shift == 32` encodes a zero-length prefix (always matches).
    Lpm {
        slot: usize,
        value: Value,
        shift: u32,
    },
}

impl SlotPattern {
    #[inline]
    fn matches(self, snap: &[Value]) -> bool {
        match self {
            SlotPattern::Exact { slot, value } => snap[slot] == value,
            SlotPattern::Ternary { slot, value, mask } => snap[slot] & mask == value,
            SlotPattern::Lpm { slot, value, shift } => {
                shift >= 32 || (snap[slot] >> shift) == value
            }
        }
    }
}

/// A resolved action: primitive ops over frame slots with entry arguments
/// folded in.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SlotAction {
    ops: Vec<SlotOp>,
}

/// One resolved primitive (the tree-walking [`OptLevel::Scc`] form; the
/// compiled backends flatten these into [`MatInstr`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotOp {
    Set { dst: usize, src: Src },
    Add { dst: usize, src: Src },
    Sub { dst: usize, src: Src },
    RegRead { dst: usize, reg: usize, idx: Src },
    RegWrite { reg: usize, idx: Src, src: Src },
    Count { ctr: usize, idx: Src },
    Drop,
}

/// One resolved entry.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SlotEntry {
    patterns: Vec<SlotPattern>,
    action: SlotAction,
    /// Constant total LPM prefix length (see module docs).
    lpm_score: u64,
}

/// One resolved table (guard-true tables only; statically-false guards
/// are eliminated at generation time).
#[derive(Debug, Clone, PartialEq, Eq)]
struct SlotTable {
    /// Entries pre-sorted: LPM tables by (score desc, priority asc),
    /// others in priority order.
    entries: Vec<SlotEntry>,
    default_action: Option<SlotAction>,
}

/// Register/counter cell layout shared by the resolved and compiled
/// backends: object `i` owns `len[i]` cells starting at `base[i]` of one
/// flat array.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct StateLayout {
    names: Vec<String>,
    base: Vec<usize>,
    len: Vec<usize>,
}

impl StateLayout {
    fn build<'a>(items: impl Iterator<Item = (&'a str, usize)>) -> Self {
        let mut layout = StateLayout::default();
        let mut next = 0;
        for (name, len) in items {
            layout.names.push(name.to_string());
            layout.base.push(next);
            layout.len.push(len);
            next += len;
        }
        layout
    }

    fn total(&self) -> usize {
        self.base.last().map_or(0, |b| b + self.len.last().unwrap())
    }

    fn index_of(&self, name: &str) -> usize {
        self.names.iter().position(|n| n == name).expect("resolved")
    }

    fn to_map<T: Copy>(&self, flat: &[T]) -> BTreeMap<String, Vec<T>> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                (
                    n.clone(),
                    flat[self.base[i]..self.base[i] + self.len[i]].to_vec(),
                )
            })
            .collect()
    }
}

/// The interpretive backend state ([`OptLevel::Unoptimized`]).
#[derive(Debug, Clone)]
struct InterpBackend {
    hlir: Hlir,
    tables: ProgramTables,
    /// Stage of each applied table (the one lowering decision that must
    /// be kept — stage placement is the program being executed).
    stage_of: Vec<usize>,
    registers: BTreeMap<String, Vec<Value>>,
    counters: BTreeMap<String, Vec<u64>>,
}

/// The resolved backend state ([`OptLevel::Scc`]).
#[derive(Debug, Clone)]
struct ResolvedBackend {
    /// Per stage: the resolved tables applied there, in control order.
    stages: Vec<Vec<SlotTable>>,
}

/// The per-table bytecode backend state ([`OptLevel::SccInline`]).
#[derive(Debug, Clone)]
struct BytecodeBackend {
    /// Per stage: one instruction program per table, in control order.
    stages: Vec<Vec<Vec<MatInstr>>>,
}

/// The fused whole-pipeline backend state ([`OptLevel::Fused`]).
#[derive(Debug, Clone)]
struct FusedBackend {
    program: Vec<MatInstr>,
}

#[derive(Debug, Clone)]
enum Backend {
    Interp(Box<InterpBackend>),
    Resolved(ResolvedBackend),
    Bytecode(BytecodeBackend),
    Fused(FusedBackend),
}

/// An executable match-action pipeline at one [`OptLevel`].
///
/// Generate one with [`MatPipeline::generate`], drive packets (as PHVs
/// under the lowering's [`FieldLayout`]) with [`MatPipeline::process`] or
/// [`MatPipeline::run`], and read back the final stateful objects with
/// [`MatPipeline::registers`]/[`MatPipeline::counters`].
#[derive(Debug, Clone)]
pub struct MatPipeline {
    level: OptLevel,
    layout: FieldLayout,
    num_stages: usize,
    backend: Backend,
    /// Flat register/counter state shared by the slot-based backends.
    state_layout: StateLayout,
    ctr_layout: StateLayout,
    regs: Vec<Value>,
    ctrs: Vec<u64>,
    /// Preallocated frame buffers (live + stage-entry snapshot).
    cur: Vec<Value>,
    snap: Vec<Value>,
    /// Optional execution-coverage map ([`MatPipeline::enable_coverage`]).
    cov: Option<Box<CoverageMap>>,
}

/// Coverage site tags for the match-action backends (distinct from the
/// interpreter's so merged maps keep the two sides' edges apart).
const MAT_TABLE_SITE: u32 = 0x3A71_0000;
const MAT_BRANCH_SITE: u32 = 0x3A72_0000;
const MAT_DROP_SITE: u32 = 0x3A73_0000;

impl MatPipeline {
    /// Generate the pipeline description for a lowered program at the
    /// given optimization level. Entry validation follows
    /// [`bind`]; faults that make the entries
    /// unbindable are the P4 analog of "machine code incompatible with
    /// the pipeline".
    pub fn generate(
        hlir: &Hlir,
        entries: &[TableEntry],
        lowering: &RmtLowering,
        level: OptLevel,
    ) -> Result<Self> {
        let tables = bind(hlir, entries)?;
        let layout = lowering.layout.clone();
        let state_layout = StateLayout::build(
            hlir.program
                .registers
                .iter()
                .map(|r| (r.name.as_str(), r.instance_count as usize)),
        );
        let ctr_layout = StateLayout::build(
            hlir.program
                .counters
                .iter()
                .map(|c| (c.name.as_str(), c.instance_count as usize)),
        );
        let num_stages = lowering.num_stages();

        let backend = match level {
            OptLevel::Unoptimized => Backend::Interp(Box::new(InterpBackend {
                hlir: hlir.clone(),
                tables,
                stage_of: lowering.stage_of.clone(),
                registers: initial_registers(hlir),
                counters: initial_counters(hlir),
            })),
            OptLevel::Scc => Backend::Resolved(ResolvedBackend {
                stages: resolve_stages(hlir, &tables, lowering, &state_layout, &ctr_layout)?,
            }),
            OptLevel::SccInline => {
                let resolved = resolve_stages(hlir, &tables, lowering, &state_layout, &ctr_layout)?;
                let drop_slot = layout.drop_flag();
                let stages = resolved
                    .iter()
                    .map(|tabs| {
                        tabs.iter()
                            .map(|t| compile_table(t, drop_slot, &state_layout, &ctr_layout))
                            .collect()
                    })
                    .collect();
                Backend::Bytecode(BytecodeBackend { stages })
            }
            OptLevel::Fused => {
                let resolved = resolve_stages(hlir, &tables, lowering, &state_layout, &ctr_layout)?;
                let drop_slot = layout.drop_flag();
                let mut program = Vec::new();
                for tabs in &resolved {
                    program.push(MatInstr::Snapshot);
                    for t in tabs {
                        let base = program.len();
                        let mut chunk = compile_table(t, drop_slot, &state_layout, &ctr_layout);
                        relocate(&mut chunk, base);
                        program.append(&mut chunk);
                    }
                }
                Backend::Fused(FusedBackend { program })
            }
        };
        let phv_length = layout.phv_length();
        Ok(MatPipeline {
            level,
            layout,
            num_stages,
            backend,
            regs: vec![0; state_layout.total()],
            ctrs: vec![0; ctr_layout.total()],
            state_layout,
            ctr_layout,
            cur: vec![0; phv_length],
            snap: vec![0; phv_length],
            cov: None,
        })
    }

    /// Attach (or reset) an execution-coverage map: subsequent packets
    /// record table-outcome edges (interpretive/resolved backends),
    /// compare-and-jump branch edges (compiled backends), and drop edges.
    /// One allocation here; the per-packet path stays allocation-free on
    /// the fused backend.
    pub fn enable_coverage(&mut self) {
        match &mut self.cov {
            Some(cov) => cov.clear(),
            None => self.cov = Some(Box::new(CoverageMap::new())),
        }
    }

    /// The coverage accumulated since [`MatPipeline::enable_coverage`].
    pub fn coverage(&self) -> Option<&CoverageMap> {
        self.cov.as_deref()
    }

    /// Zero the attached coverage map (no-op when disabled).
    pub fn clear_coverage(&mut self) {
        if let Some(cov) = &mut self.cov {
            cov.clear();
        }
    }

    /// The backend's optimization level.
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// Pipeline depth (occupied stages).
    pub fn num_stages(&self) -> usize {
        self.num_stages
    }

    /// The field-to-container layout packets are presented in.
    pub fn layout(&self) -> &FieldLayout {
        &self.layout
    }

    /// Reset all registers and counters to zero.
    pub fn reset(&mut self) {
        self.regs.iter_mut().for_each(|v| *v = 0);
        self.ctrs.iter_mut().for_each(|v| *v = 0);
        if let Backend::Interp(b) = &mut self.backend {
            b.registers = initial_registers(&b.hlir);
            b.counters = initial_counters(&b.hlir);
        }
    }

    /// Process one packet (a PHV under the lowering's layout) through
    /// every stage; returns the output PHV.
    pub fn process(&mut self, phv: &Phv) -> Phv {
        let mut cov = self.cov.as_deref_mut();
        let out = match &mut self.backend {
            Backend::Interp(b) => {
                // Version-1 semantics: the packet lives in string-keyed
                // maps; every field access hashes names at runtime.
                let mut packet = self.layout.phv_to_packet(0, phv);
                for stage in 0..self.num_stages {
                    let snapshot = packet.clone();
                    for (t, info) in b.hlir.tables.iter().enumerate() {
                        if b.stage_of[t] != stage {
                            continue;
                        }
                        let guard_ok = info
                            .guards
                            .iter()
                            .all(|(h, pol)| b.hlir.header_valid(h) == *pol);
                        if !guard_ok {
                            continue;
                        }
                        let Some(sel) = b.tables.table(t).lookup(&mut |f| snapshot.get(f)) else {
                            if let Some(cov) = cov.as_deref_mut() {
                                cov.hit(edge_id(MAT_TABLE_SITE, t as u32, 0));
                            }
                            continue;
                        };
                        if let Some(cov) = cov.as_deref_mut() {
                            let outcome = sel.entry.map_or(1, |e| e as Value + 2);
                            cov.hit(edge_id(MAT_TABLE_SITE, t as u32, outcome));
                        }
                        let (name, args) = (sel.action.to_string(), sel.args.to_vec());
                        let was_dropped = packet.dropped;
                        if let Some(action) = b.hlir.program.action(&name) {
                            execute_action(
                                action,
                                &args,
                                &mut packet,
                                &mut b.registers,
                                &mut b.counters,
                            );
                        }
                        if packet.dropped && !was_dropped {
                            if let Some(cov) = cov.as_deref_mut() {
                                cov.hit(edge_id(MAT_DROP_SITE, t as u32, 1));
                            }
                        }
                    }
                }
                self.layout.packet_to_phv(&packet)
            }
            Backend::Resolved(b) => {
                load_frame(&mut self.cur, phv);
                for (stage, tabs) in b.stages.iter().enumerate() {
                    self.snap.copy_from_slice(&self.cur);
                    for (ti, t) in tabs.iter().enumerate() {
                        let selected = select(t, &self.snap);
                        if let Some(cov) = cov.as_deref_mut() {
                            let site = MAT_TABLE_SITE | ((stage as u32) << 8) | ti as u32;
                            cov.hit(edge_id(site, 0, selected.0));
                        }
                        if let Some(action) = selected.1 {
                            run_slot_ops(
                                &action.ops,
                                &mut self.cur,
                                self.layout.drop_flag(),
                                &self.state_layout,
                                &self.ctr_layout,
                                &mut self.regs,
                                &mut self.ctrs,
                            );
                        }
                    }
                }
                Phv::new(self.cur.clone())
            }
            Backend::Bytecode(b) => {
                load_frame(&mut self.cur, phv);
                for (stage, tabs) in b.stages.iter().enumerate() {
                    self.snap.copy_from_slice(&self.cur);
                    for (ti, prog) in tabs.iter().enumerate() {
                        let site = MAT_BRANCH_SITE | ((stage as u32) << 8) | ti as u32;
                        if let Some(cov) = cov.as_deref_mut() {
                            // Per-table execution edge: default-only tables
                            // compile to zero compares but still count.
                            cov.hit(edge_id(site, 0xFFFF, 0));
                        }
                        run_instrs(
                            prog,
                            &mut self.cur,
                            &mut self.snap,
                            &mut self.regs,
                            &mut self.ctrs,
                            cov.as_deref_mut(),
                            site,
                        );
                    }
                }
                Phv::new(self.cur.clone())
            }
            Backend::Fused(b) => {
                load_frame(&mut self.cur, phv);
                if let Some(cov) = cov.as_deref_mut() {
                    // Per-packet execution edge: a compare-free program
                    // still produces a signal whose buckets track volume.
                    cov.hit(edge_id(MAT_BRANCH_SITE, 0xFFFF, 0));
                }
                run_instrs(
                    &b.program,
                    &mut self.cur,
                    &mut self.snap,
                    &mut self.regs,
                    &mut self.ctrs,
                    cov.as_deref_mut(),
                    MAT_BRANCH_SITE,
                );
                Phv::new(self.cur.clone())
            }
        };
        // Drop edge for the slot-based backends: the interpretive arm
        // already attributed drops to their table above.
        if !matches!(self.backend, Backend::Interp(_)) {
            if let Some(cov) = cov {
                if self.cur[self.layout.drop_flag()] != 0 {
                    cov.hit(edge_id(MAT_DROP_SITE, 0, 1));
                }
            }
        }
        out
    }

    /// Run a whole input trace; the output trace holds one PHV per input
    /// packet, in order.
    pub fn run(&mut self, input: &Trace) -> Trace {
        Trace::from_phvs(input.phvs.iter().map(|p| self.process(p)).collect())
    }

    /// Final register contents, normalized by name (comparable across
    /// backends and against the reference interpreter).
    pub fn registers(&self) -> BTreeMap<String, Vec<Value>> {
        match &self.backend {
            Backend::Interp(b) => b.registers.clone(),
            _ => self.state_layout.to_map(&self.regs),
        }
    }

    /// Final counter contents, normalized by name.
    pub fn counters(&self) -> BTreeMap<String, Vec<u64>> {
        match &self.backend {
            Backend::Interp(b) => b.counters.clone(),
            _ => self.ctr_layout.to_map(&self.ctrs),
        }
    }

    /// The fused instruction program (for emission and testing); `None`
    /// on non-fused backends.
    pub fn fused_program(&self) -> Option<&[MatInstr]> {
        match &self.backend {
            Backend::Fused(b) => Some(&b.program),
            _ => None,
        }
    }
}

#[inline]
fn load_frame(cur: &mut [Value], phv: &Phv) {
    for (i, v) in cur.iter_mut().enumerate() {
        *v = phv.get(i);
    }
}

/// Scan a resolved table for its selected action (first hit in sorted
/// order wins; see the module docs for why that implements LPM). Returns
/// the coverage outcome discriminator (`idx+2` hit, `1` default, `0`
/// skip) alongside the action.
fn select<'a>(table: &'a SlotTable, snap: &[Value]) -> (Value, Option<&'a SlotAction>) {
    for (i, entry) in table.entries.iter().enumerate() {
        if entry.patterns.iter().all(|p| p.matches(snap)) {
            return (i as Value + 2, Some(&entry.action));
        }
    }
    match &table.default_action {
        Some(a) => (1, Some(a)),
        None => (0, None),
    }
}

/// Execute resolved primitive ops against the live frame.
fn run_slot_ops(
    ops: &[SlotOp],
    cur: &mut [Value],
    drop_slot: usize,
    regs_layout: &StateLayout,
    ctrs_layout: &StateLayout,
    regs: &mut [Value],
    ctrs: &mut [u64],
) {
    for &op in ops {
        match op {
            SlotOp::Set { dst, src } => cur[dst] = src.read(cur),
            SlotOp::Add { dst, src } => cur[dst] = cur[dst].wrapping_add(src.read(cur)),
            SlotOp::Sub { dst, src } => cur[dst] = cur[dst].wrapping_sub(src.read(cur)),
            SlotOp::RegRead { dst, reg, idx } => {
                let i = idx.read(cur) as usize;
                let (base, len) = (regs_layout.base[reg], regs_layout.len[reg]);
                cur[dst] = if i < len { regs[base + i] } else { 0 };
            }
            SlotOp::RegWrite { reg, idx, src } => {
                let i = idx.read(cur) as usize;
                let (base, len) = (regs_layout.base[reg], regs_layout.len[reg]);
                let v = src.read(cur);
                if i < len {
                    regs[base + i] = v;
                }
            }
            SlotOp::Count { ctr, idx } => {
                let i = idx.read(cur) as usize;
                let (base, len) = (ctrs_layout.base[ctr], ctrs_layout.len[ctr]);
                if i < len {
                    ctrs[base + i] += 1;
                }
            }
            SlotOp::Drop => cur[drop_slot] = 1,
        }
    }
}

/// The compiled-instruction executor shared by the bytecode and fused
/// backends: a single program-counter loop, no allocation. `cov`, when
/// present, records one edge per compare decision (`(site, pc, taken)`).
fn run_instrs(
    program: &[MatInstr],
    cur: &mut [Value],
    snap: &mut [Value],
    regs: &mut [Value],
    ctrs: &mut [u64],
    mut cov: Option<&mut CoverageMap>,
    site: u32,
) {
    macro_rules! cmp {
        ($pc:expr, $miss_taken:expr) => {
            if let Some(cov) = cov.as_deref_mut() {
                cov.hit(edge_id(site, $pc as u32, u32::from($miss_taken)));
            }
        };
    }
    let mut pc = 0;
    while pc < program.len() {
        match program[pc] {
            MatInstr::Snapshot => snap.copy_from_slice(cur),
            MatInstr::CmpExact { slot, value, miss } => {
                let missed = snap[slot] != value;
                cmp!(pc, missed);
                if missed {
                    pc = miss;
                    continue;
                }
            }
            MatInstr::CmpTernary {
                slot,
                value,
                mask,
                miss,
            } => {
                let missed = snap[slot] & mask != value;
                cmp!(pc, missed);
                if missed {
                    pc = miss;
                    continue;
                }
            }
            MatInstr::CmpLpm {
                slot,
                value,
                shift,
                miss,
            } => {
                let missed = (snap[slot] >> shift) != value;
                cmp!(pc, missed);
                if missed {
                    pc = miss;
                    continue;
                }
            }
            MatInstr::Jump { target } => {
                pc = target;
                continue;
            }
            MatInstr::Set { dst, src } => cur[dst] = src.read(cur),
            MatInstr::Add { dst, src } => cur[dst] = cur[dst].wrapping_add(src.read(cur)),
            MatInstr::Sub { dst, src } => cur[dst] = cur[dst].wrapping_sub(src.read(cur)),
            MatInstr::RegRead {
                dst,
                base,
                len,
                idx,
            } => {
                let i = idx.read(cur) as usize;
                cur[dst] = if i < len { regs[base + i] } else { 0 };
            }
            MatInstr::RegWrite {
                base,
                len,
                idx,
                src,
            } => {
                let i = idx.read(cur) as usize;
                let v = src.read(cur);
                if i < len {
                    regs[base + i] = v;
                }
            }
            MatInstr::Count { base, len, idx } => {
                let i = idx.read(cur) as usize;
                if i < len {
                    ctrs[base + i] += 1;
                }
            }
        }
        pc += 1;
    }
}

/// Resolve a bound action-argument into an instruction operand, folding
/// entry arguments to constants.
fn resolve_src(arg: &ActionArg, action: &ActionDecl, args: &[Value], layout: &FieldLayout) -> Src {
    match arg {
        ActionArg::Const(v) => Src::Const(*v),
        ActionArg::Field(f) => Src::Slot(layout.container(f).expect("resolved")),
        ActionArg::Param(p) => {
            let idx = action
                .params
                .iter()
                .position(|q| q == p)
                .unwrap_or(usize::MAX);
            Src::Const(args.get(idx).copied().unwrap_or(0))
        }
        ActionArg::Stateful(_) => Src::Const(0),
    }
}

/// Resolve one action body (entry arguments folded) into slot ops.
fn resolve_action(
    action: &ActionDecl,
    args: &[Value],
    layout: &FieldLayout,
    regs: &StateLayout,
    ctrs: &StateLayout,
) -> SlotAction {
    let slot = |f| layout.container(f).expect("resolved");
    let ops = action
        .body
        .iter()
        .map(|prim| match prim {
            Primitive::ModifyField { dst, src } => SlotOp::Set {
                dst: slot(dst),
                src: resolve_src(src, action, args, layout),
            },
            Primitive::AddToField { dst, src } => SlotOp::Add {
                dst: slot(dst),
                src: resolve_src(src, action, args, layout),
            },
            Primitive::SubtractFromField { dst, src } => SlotOp::Sub {
                dst: slot(dst),
                src: resolve_src(src, action, args, layout),
            },
            Primitive::RegisterRead {
                dst,
                register,
                index,
            } => SlotOp::RegRead {
                dst: slot(dst),
                reg: regs.index_of(register),
                idx: resolve_src(index, action, args, layout),
            },
            Primitive::RegisterWrite {
                register,
                index,
                src,
            } => SlotOp::RegWrite {
                reg: regs.index_of(register),
                idx: resolve_src(index, action, args, layout),
                src: resolve_src(src, action, args, layout),
            },
            Primitive::Count { counter, index } => SlotOp::Count {
                ctr: ctrs.index_of(counter),
                idx: resolve_src(index, action, args, layout),
            },
            Primitive::Drop => SlotOp::Drop,
            Primitive::NoOp => SlotOp::Set {
                dst: layout.drop_flag(),
                src: Src::Slot(layout.drop_flag()),
            },
        })
        .collect();
    SlotAction { ops }
}

/// Resolve one bound entry into slot patterns (constants pre-masked /
/// pre-shifted).
fn resolve_entry(
    entry: &BoundEntry,
    decl_action: &ActionDecl,
    layout: &FieldLayout,
    regs: &StateLayout,
    ctrs: &StateLayout,
) -> SlotEntry {
    let patterns = entry
        .patterns
        .iter()
        .map(|p| {
            let slot = layout.container(&p.field).expect("resolved");
            match p.kind {
                MatchKind::Exact => SlotPattern::Exact {
                    slot,
                    value: p.value,
                },
                MatchKind::Ternary => {
                    let mask = p.qualifier.unwrap_or(Value::MAX);
                    SlotPattern::Ternary {
                        slot,
                        value: p.value & mask,
                        mask,
                    }
                }
                MatchKind::Lpm => {
                    let len = p.lpm_len();
                    let shift = p.width - len;
                    if len == 0 {
                        SlotPattern::Lpm {
                            slot,
                            value: 0,
                            shift: 32,
                        }
                    } else {
                        SlotPattern::Lpm {
                            slot,
                            value: p.value >> shift,
                            shift,
                        }
                    }
                }
            }
        })
        .collect();
    SlotEntry {
        patterns,
        action: resolve_action(decl_action, &entry.args, layout, regs, ctrs),
        lpm_score: entry.lpm_score,
    }
}

/// Resolve the whole program into per-stage tables (the SCC-propagated
/// form): fields to slots, entry arguments folded, statically-false
/// guards eliminated, LPM entries pre-sorted.
fn resolve_stages(
    hlir: &Hlir,
    tables: &ProgramTables,
    lowering: &RmtLowering,
    regs: &StateLayout,
    ctrs: &StateLayout,
) -> Result<Vec<Vec<SlotTable>>> {
    let layout = &lowering.layout;
    let mut stages: Vec<Vec<SlotTable>> = vec![Vec::new(); lowering.num_stages()];
    for (s, table_indices) in lowering.stages.iter().enumerate() {
        for &t in table_indices {
            let info = &hlir.tables[t];
            let guard_ok = info
                .guards
                .iter()
                .all(|(h, pol)| hlir.header_valid(h) == *pol);
            if !guard_ok {
                // Dead control path: eliminated, exactly like SCC's dead
                // branch elimination on the ALU side.
                continue;
            }
            let runtime = tables.table(t);
            let mut entries: Vec<(u64, usize, SlotEntry)> = Vec::new();
            for (i, e) in runtime.entries.iter().enumerate() {
                let Some(action) = hlir.program.action(&e.action) else {
                    return Err(Error::Other {
                        message: format!("entry action `{}` is not declared", e.action),
                    });
                };
                entries.push((e.lpm_score, i, resolve_entry(e, action, layout, regs, ctrs)));
            }
            if runtime.has_lpm {
                // Longest total prefix first; stable on priority.
                entries.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            }
            let default_action = match &runtime.default_action {
                Some(name) => {
                    let Some(action) = hlir.program.action(name) else {
                        return Err(Error::Other {
                            message: format!("default action `{name}` is not declared"),
                        });
                    };
                    Some(resolve_action(action, &[], layout, regs, ctrs))
                }
                None => None,
            };
            stages[s].push(SlotTable {
                entries: entries.into_iter().map(|(_, _, e)| e).collect(),
                default_action,
            });
        }
    }
    Ok(stages)
}

/// Compile one resolved table into a linear compare-and-jump program
/// (targets relative to the program start; [`relocate`] shifts them for
/// fusion).
fn compile_table(
    table: &SlotTable,
    drop_slot: usize,
    regs: &StateLayout,
    ctrs: &StateLayout,
) -> Vec<MatInstr> {
    let mut program: Vec<MatInstr> = Vec::new();
    // Two passes: emit with placeholder targets, then patch. Every entry
    // records (start, patch sites).
    let mut end_jumps: Vec<usize> = Vec::new();
    for entry in &table.entries {
        let mut miss_sites: Vec<usize> = Vec::new();
        for &p in &entry.patterns {
            match p {
                SlotPattern::Exact { slot, value } => {
                    miss_sites.push(program.len());
                    program.push(MatInstr::CmpExact {
                        slot,
                        value,
                        miss: usize::MAX,
                    });
                }
                SlotPattern::Ternary { slot, value, mask } => {
                    miss_sites.push(program.len());
                    program.push(MatInstr::CmpTernary {
                        slot,
                        value,
                        mask,
                        miss: usize::MAX,
                    });
                }
                SlotPattern::Lpm { slot, value, shift } => {
                    if shift < 32 {
                        miss_sites.push(program.len());
                        program.push(MatInstr::CmpLpm {
                            slot,
                            value,
                            shift,
                            miss: usize::MAX,
                        });
                    }
                }
            }
        }
        emit_action(&mut program, &entry.action, drop_slot, regs, ctrs);
        end_jumps.push(program.len());
        program.push(MatInstr::Jump { target: usize::MAX });
        // Misses fall through to the next entry, which starts here.
        let next_entry = program.len();
        for site in miss_sites {
            patch_miss(&mut program[site], next_entry);
        }
    }
    if let Some(default) = &table.default_action {
        emit_action(&mut program, default, drop_slot, regs, ctrs);
    }
    let end = program.len();
    for site in end_jumps {
        program[site] = MatInstr::Jump { target: end };
    }
    program
}

fn emit_action(
    program: &mut Vec<MatInstr>,
    action: &SlotAction,
    drop_slot: usize,
    regs: &StateLayout,
    ctrs: &StateLayout,
) {
    for &op in &action.ops {
        match op {
            SlotOp::Set { dst, src } => {
                // The resolved no_op encoding (self-copy) is dead: skip.
                if src != Src::Slot(dst) {
                    program.push(MatInstr::Set { dst, src });
                }
            }
            SlotOp::Add { dst, src } => program.push(MatInstr::Add { dst, src }),
            SlotOp::Sub { dst, src } => program.push(MatInstr::Sub { dst, src }),
            SlotOp::RegRead { dst, reg, idx } => program.push(MatInstr::RegRead {
                dst,
                base: regs.base[reg],
                len: regs.len[reg],
                idx,
            }),
            SlotOp::RegWrite { reg, idx, src } => program.push(MatInstr::RegWrite {
                base: regs.base[reg],
                len: regs.len[reg],
                idx,
                src,
            }),
            SlotOp::Count { ctr, idx } => program.push(MatInstr::Count {
                base: ctrs.base[ctr],
                len: ctrs.len[ctr],
                idx,
            }),
            SlotOp::Drop => program.push(MatInstr::Set {
                dst: drop_slot,
                src: Src::Const(1),
            }),
        }
    }
}

fn patch_miss(instr: &mut MatInstr, target: usize) {
    match instr {
        MatInstr::CmpExact { miss, .. }
        | MatInstr::CmpTernary { miss, .. }
        | MatInstr::CmpLpm { miss, .. } => *miss = target,
        _ => unreachable!("only compare instructions carry miss targets"),
    }
}

/// Render the lowered match-action pipeline as Rust-like source text at
/// one optimization level — the P4 analog of [`crate::emit::emit_pipeline`]'s
/// Fig. 6 samples. The text mirrors what the in-process backend of the
/// same level executes: an interpretive driver at
/// [`OptLevel::Unoptimized`], resolved per-stage match arms at
/// [`OptLevel::Scc`], and labeled compare-and-jump instruction programs
/// at [`OptLevel::SccInline`] / [`OptLevel::Fused`].
pub fn emit_mat_pipeline(
    hlir: &Hlir,
    entries: &[TableEntry],
    lowering: &RmtLowering,
    level: OptLevel,
) -> Result<String> {
    use std::fmt::Write as _;
    let pipeline = MatPipeline::generate(hlir, entries, lowering, level)?;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "// match-action pipeline, version {} ({})",
        match level {
            OptLevel::Unoptimized => 1,
            OptLevel::Scc => 2,
            OptLevel::SccInline => 3,
            OptLevel::Fused => 4,
        },
        level.key()
    );
    let _ = writeln!(
        s,
        "// {} stage(s), {} container(s) (last = drop flag)",
        lowering.num_stages(),
        lowering.layout.phv_length()
    );
    for (i, (f, w)) in lowering.layout.fields().iter().enumerate() {
        let _ = writeln!(s, "// container[{i}] = {f} ({w} bits)");
    }
    match &pipeline.backend {
        Backend::Interp(b) => {
            let _ = writeln!(s, "fn process_packet(packet: &mut Packet) {{");
            for (stage, tabs) in lowering.stages.iter().enumerate() {
                let _ = writeln!(s, "    // stage {stage}");
                let _ = writeln!(s, "    let snapshot = packet.clone();");
                for &t in tabs {
                    let name = &b.hlir.tables[t].name;
                    let _ = writeln!(
                        s,
                        "    if guard(\"{name}\") {{ \
                         apply(lookup(\"{name}\", &snapshot), packet); }}"
                    );
                }
            }
            let _ = writeln!(s, "}}");
        }
        Backend::Resolved(rb) => {
            let _ = writeln!(s, "fn process_packet(cur: &mut [u32]) {{");
            for (stage, tabs) in rb.stages.iter().enumerate() {
                let _ = writeln!(s, "    // stage {stage}");
                let _ = writeln!(s, "    let snap = cur.to_vec();");
                for (ti, table) in tabs.iter().enumerate() {
                    let _ = writeln!(s, "    'table_{stage}_{ti}: {{");
                    for entry in &table.entries {
                        let conds: Vec<String> =
                            entry.patterns.iter().map(render_pattern).collect();
                        let cond = if conds.is_empty() {
                            "true".to_string()
                        } else {
                            conds.join(" && ")
                        };
                        let _ = writeln!(s, "        if {cond} {{");
                        for &op in &entry.action.ops {
                            let _ = writeln!(s, "            {}", render_slot_op(op));
                        }
                        let _ = writeln!(s, "            break 'table_{stage}_{ti};");
                        let _ = writeln!(s, "        }}");
                    }
                    if let Some(default) = &table.default_action {
                        for &op in &default.ops {
                            let _ = writeln!(s, "        {}", render_slot_op(op));
                        }
                    }
                    let _ = writeln!(s, "    }}");
                }
            }
            let _ = writeln!(s, "}}");
        }
        Backend::Bytecode(bb) => {
            for (stage, tabs) in bb.stages.iter().enumerate() {
                for (ti, prog) in tabs.iter().enumerate() {
                    let _ = writeln!(s, "// stage {stage}, table {ti}");
                    for (pc, instr) in prog.iter().enumerate() {
                        let _ = writeln!(s, "{pc:>4}: {}", render_instr(instr));
                    }
                }
            }
        }
        Backend::Fused(fb) => {
            let _ = writeln!(s, "// fused whole-pipeline program");
            for (pc, instr) in fb.program.iter().enumerate() {
                let _ = writeln!(s, "{pc:>4}: {}", render_instr(instr));
            }
        }
    }
    Ok(s)
}

fn render_src(src: Src) -> String {
    match src {
        Src::Slot(i) => format!("cur[{i}]"),
        Src::Const(v) => format!("{v}"),
    }
}

fn render_pattern(p: &SlotPattern) -> String {
    match *p {
        SlotPattern::Exact { slot, value } => format!("snap[{slot}] == {value}"),
        SlotPattern::Ternary { slot, value, mask } => {
            format!("snap[{slot}] & {mask:#x} == {value:#x}")
        }
        SlotPattern::Lpm { slot, value, shift } => {
            if shift >= 32 {
                "true".to_string()
            } else {
                format!("snap[{slot}] >> {shift} == {value:#x}")
            }
        }
    }
}

fn render_slot_op(op: SlotOp) -> String {
    match op {
        SlotOp::Set { dst, src } => format!("cur[{dst}] = {};", render_src(src)),
        SlotOp::Add { dst, src } => {
            format!("cur[{dst}] = cur[{dst}].wrapping_add({});", render_src(src))
        }
        SlotOp::Sub { dst, src } => {
            format!("cur[{dst}] = cur[{dst}].wrapping_sub({});", render_src(src))
        }
        SlotOp::RegRead { dst, reg, idx } => {
            format!("cur[{dst}] = reg_read({reg}, {});", render_src(idx))
        }
        SlotOp::RegWrite { reg, idx, src } => {
            format!(
                "reg_write({reg}, {}, {});",
                render_src(idx),
                render_src(src)
            )
        }
        SlotOp::Count { ctr, idx } => format!("count({ctr}, {});", render_src(idx)),
        SlotOp::Drop => "drop();".to_string(),
    }
}

fn render_instr(instr: &MatInstr) -> String {
    match *instr {
        MatInstr::Snapshot => "snapshot".to_string(),
        MatInstr::CmpExact { slot, value, miss } => {
            format!("cmp_exact   snap[{slot}] == {value} else -> {miss}")
        }
        MatInstr::CmpTernary {
            slot,
            value,
            mask,
            miss,
        } => format!("cmp_ternary snap[{slot}] & {mask:#x} == {value:#x} else -> {miss}"),
        MatInstr::CmpLpm {
            slot,
            value,
            shift,
            miss,
        } => format!("cmp_lpm     snap[{slot}] >> {shift} == {value:#x} else -> {miss}"),
        MatInstr::Jump { target } => format!("jump        -> {target}"),
        MatInstr::Set { dst, src } => format!("set         cur[{dst}] = {}", render_src(src)),
        MatInstr::Add { dst, src } => format!("add         cur[{dst}] += {}", render_src(src)),
        MatInstr::Sub { dst, src } => format!("sub         cur[{dst}] -= {}", render_src(src)),
        MatInstr::RegRead {
            dst,
            base,
            len,
            idx,
        } => format!(
            "reg_read    cur[{dst}] = regs[{base}..{}][{}]",
            base + len,
            render_src(idx)
        ),
        MatInstr::RegWrite {
            base,
            len,
            idx,
            src,
        } => format!(
            "reg_write   regs[{base}..{}][{}] = {}",
            base + len,
            render_src(idx),
            render_src(src)
        ),
        MatInstr::Count { base, len, idx } => format!(
            "count       ctrs[{base}..{}][{}] += 1",
            base + len,
            render_src(idx)
        ),
    }
}

/// Shift a relocatable table program's jump targets by `base` (fusion).
fn relocate(program: &mut [MatInstr], base: usize) {
    for instr in program {
        match instr {
            MatInstr::CmpExact { miss, .. }
            | MatInstr::CmpTernary { miss, .. }
            | MatInstr::CmpLpm { miss, .. } => *miss += base,
            MatInstr::Jump { target } => *target += base,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use druzhba_p4::lower::{lower, RmtConfig};
    use druzhba_p4::parse_p4;
    use druzhba_p4::tables::parse_entries;

    const PROGRAM: &str = r#"
        header_type pkt_t { fields { dst : 8; proto : 8; len : 16; } }
        header_type meta_t { fields { port : 8; seen : 32; } }
        header pkt_t pkt;
        metadata meta_t meta;
        parser start { extract(pkt); return ingress; }
        register last { width : 32; instance_count : 4; }
        counter total { instance_count : 2; }
        action set_port(port) { modify_field(meta.port, port); }
        action toss() { drop(); }
        action note() {
            register_read(meta.seen, last, 0);
            register_write(last, 0, pkt.dst);
            count(total, 1);
            add_to_field(pkt.len, 1);
        }
        table forward {
            reads { pkt.dst : exact; }
            actions { set_port; toss; }
            default_action : toss;
        }
        table audit { reads { meta.port : ternary; } actions { note; } }
        control ingress { apply(forward); apply(audit); }
    "#;

    const ENTRIES: &str = "forward : pkt.dst=1 => set_port(10)\n\
                           forward : pkt.dst=2 => set_port(20)\n\
                           audit : meta.port=10/0xff => note()\n";

    fn pipeline(level: OptLevel) -> MatPipeline {
        let hlir = parse_p4(PROGRAM).unwrap();
        let lowering = lower(&hlir, &RmtConfig::default()).unwrap();
        let entries = parse_entries(ENTRIES).unwrap();
        MatPipeline::generate(&hlir, &entries, &lowering, level).unwrap()
    }

    fn packet_phv(level: OptLevel, dst: Value) -> Phv {
        // Layout: pkt.dst, pkt.proto, pkt.len, meta.port, meta.seen, drop.
        let _ = level;
        Phv::new(vec![dst, 0, 0, 0, 0, 0])
    }

    #[test]
    fn match_dependent_table_sees_previous_stage_write() {
        for level in OptLevel::ALL {
            let mut p = pipeline(level);
            assert_eq!(p.num_stages(), 2, "{level:?}: forward -> audit chain");
            let out = p.process(&packet_phv(level, 1));
            // forward wrote meta.port=10 in stage 0; audit matched it in
            // stage 1 and ran note(): len += 1, register write, count.
            assert_eq!(out.get(3), 10, "{level:?} meta.port");
            assert_eq!(out.get(2), 1, "{level:?} pkt.len");
            assert_eq!(out.get(4), 0, "{level:?} meta.seen reads old reg");
            assert_eq!(p.registers()["last"][0], 1, "{level:?}");
            assert_eq!(p.counters()["total"][1], 1, "{level:?}");
        }
    }

    #[test]
    fn miss_fires_default_and_sets_drop_flag() {
        for level in OptLevel::ALL {
            let mut p = pipeline(level);
            let out = p.process(&packet_phv(level, 99));
            assert_eq!(out.get(5), 1, "{level:?} drop flag");
            assert_eq!(out.get(3), 0, "{level:?} port untouched");
        }
    }

    #[test]
    fn all_backends_agree_on_a_packet_stream() {
        let mut pipes: Vec<MatPipeline> = OptLevel::ALL.iter().map(|&l| pipeline(l)).collect();
        let inputs: Vec<Phv> = (0..64)
            .map(|i| Phv::new(vec![i % 5, i * 3 % 7, 0, 0, 0, 0]))
            .collect();
        let outs: Vec<Trace> = pipes
            .iter_mut()
            .map(|p| p.run(&Trace::from_phvs(inputs.clone())))
            .collect();
        for w in outs.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        for w in pipes.windows(2) {
            assert_eq!(w[0].registers(), w[1].registers());
            assert_eq!(w[0].counters(), w[1].counters());
        }
    }

    #[test]
    fn reset_restores_initial_state_on_every_backend() {
        for level in OptLevel::ALL {
            let mut p = pipeline(level);
            p.process(&packet_phv(level, 1));
            assert_ne!(p.registers()["last"][0], 0, "{level:?}");
            p.reset();
            assert_eq!(p.registers()["last"][0], 0, "{level:?}");
            assert_eq!(p.counters()["total"][1], 0, "{level:?}");
        }
    }

    #[test]
    fn coverage_distinguishes_hit_from_miss_on_every_backend() {
        for level in OptLevel::ALL {
            let mut p = pipeline(level);
            p.enable_coverage();
            p.process(&packet_phv(level, 1)); // forward hit -> audit hit
            let hit = p.coverage().unwrap().clone();
            assert!(hit.edges_covered() > 0, "{level:?}");
            p.clear_coverage();
            p.reset();
            p.process(&packet_phv(level, 99)); // miss -> default toss/drop
            let miss = p.coverage().unwrap().clone();
            assert_ne!(
                hit.signature(),
                miss.signature(),
                "{level:?}: hit and miss paths must cover differently"
            );
        }
    }

    #[test]
    fn coverage_does_not_change_behaviour() {
        for level in OptLevel::ALL {
            let mut plain = pipeline(level);
            let mut inst = pipeline(level);
            inst.enable_coverage();
            for dst in [0, 1, 2, 99] {
                assert_eq!(
                    plain.process(&packet_phv(level, dst)),
                    inst.process(&packet_phv(level, dst)),
                    "{level:?}"
                );
            }
            assert_eq!(plain.registers(), inst.registers(), "{level:?}");
            assert_eq!(plain.counters(), inst.counters(), "{level:?}");
        }
    }

    #[test]
    fn lpm_entries_sorted_longest_prefix_first() {
        let src = r#"
            header_type ip_t { fields { dst : 32; nhop : 32; } }
            header ip_t ip;
            parser start { extract(ip); return ingress; }
            action set_nhop(n) { modify_field(ip.nhop, n); }
            table route { reads { ip.dst : lpm; } actions { set_nhop; } }
            control ingress { apply(route); }
        "#;
        let hlir = parse_p4(src).unwrap();
        let lowering = lower(&hlir, &RmtConfig::default()).unwrap();
        let entries = parse_entries(
            "route : ip.dst=0x0A000000/8 => set_nhop(1)\n\
             route : ip.dst=0x0A010000/16 => set_nhop(2)\n",
        )
        .unwrap();
        for level in OptLevel::ALL {
            let mut p = MatPipeline::generate(&hlir, &entries, &lowering, level).unwrap();
            let out = p.process(&Phv::new(vec![0x0A01_0203, 0, 0]));
            assert_eq!(out.get(1), 2, "{level:?}: 16-bit prefix wins");
            let out = p.process(&Phv::new(vec![0x0A99_0203, 0, 0]));
            assert_eq!(out.get(1), 1, "{level:?}: 8-bit prefix");
            let out = p.process(&Phv::new(vec![0x0B00_0000, 0, 0]));
            assert_eq!(out.get(1), 0, "{level:?}: miss, no default");
        }
    }

    #[test]
    fn statically_false_guard_is_eliminated() {
        let src = r#"
            header_type h { fields { a : 8; } }
            header h pkt;
            header h ghost;
            parser start { extract(pkt); return ingress; }
            action bump() { add_to_field(pkt.a, 1); }
            table t { reads { pkt.a : ternary; } actions { bump; } }
            control ingress { if (valid(ghost)) { apply(t); } }
        "#;
        let hlir = parse_p4(src).unwrap();
        let lowering = lower(&hlir, &RmtConfig::default()).unwrap();
        let entries = parse_entries("t : pkt.a=0/0 => bump()\n").unwrap();
        for level in OptLevel::ALL {
            let mut p = MatPipeline::generate(&hlir, &entries, &lowering, level).unwrap();
            let out = p.process(&Phv::new(vec![5, 0, 0]));
            assert_eq!(out.get(0), 5, "{level:?}: guarded table skipped");
        }
        // The fused program contains only the stage snapshot.
        let p = MatPipeline::generate(&hlir, &entries, &lowering, OptLevel::Fused).unwrap();
        assert_eq!(p.fused_program().unwrap().len(), 1);
    }

    #[test]
    fn invalid_entries_rejected_at_generation() {
        let hlir = parse_p4(PROGRAM).unwrap();
        let lowering = lower(&hlir, &RmtConfig::default()).unwrap();
        let bad = parse_entries("ghost : pkt.dst=1 => set_port(1)\n").unwrap();
        for level in OptLevel::ALL {
            assert!(MatPipeline::generate(&hlir, &bad, &lowering, level).is_err());
        }
    }
}
