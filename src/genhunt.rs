//! `druzhba hunt --generate N`: Gauntlet-style generated-program
//! campaigns.
//!
//! Where [`hunt`](crate::hunt) mutates machine code under the fixed
//! twelve-program corpus, this campaign generates *fresh programs* —
//! [`druzhba_progen`]'s seed-driven, screen-vetted Domino generators —
//! and differentially tests every backend on each one:
//!
//! 1. program `i` is generated index-addressably from the campaign seed
//!    (any worker can produce program 733 without touching 0..732), so
//!    the campaign is deterministic and byte-identical across `--jobs`
//!    counts;
//! 2. the *clean sweep*: every generated program runs seeded
//!    differential fuzzing on every requested [`OptLevel`]. The programs
//!    are freshly compiled and statically vetted, so any divergence here
//!    is a genuine compiler bug (the expected count is zero, and CI
//!    treats nonzero as failure);
//! 3. optionally (`--faults N`), known faults are injected into each
//!    generated program's machine code and hunted the usual way —
//!    measuring detection power over an unbounded program space instead
//!    of seventeen fixed inputs;
//! 4. every injected-fault divergence is minimized at the *program*
//!    level: [`minimize_program`] delta-debugs the generated source
//!    (statements, branch bodies, state declarations), recompiling and
//!    re-applying the fault per candidate, until the smallest program
//!    that still diverges with the same [`VerdictClass`] remains.
//!
//! The campaign shares the crash-proof runtime of the corpus hunt:
//! panic-isolated work stealing, per-program checkpoint records that
//! `--resume` restores verbatim, wall-clock budgets that truncate at a
//! clean per-program boundary.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use druzhba_chipmunk::{compile, CompiledSpec, CompilerConfig};
use druzhba_dgen::OptLevel;
use druzhba_domino::DominoProgram;
use druzhba_dsim::fault::{Fault, FaultInjector, FaultKind};
use druzhba_dsim::runtime::{catch_silent, run_stealing_observed, RuntimeOptions};
use druzhba_dsim::snapshot;
use druzhba_dsim::testing::{fuzz_test, shard_seed, FuzzConfig, VerdictClass};
use druzhba_progen::{generate_domino_at, minimize_program, program_size, GeneratedDomino};

/// Salt mixed into the campaign seed for per-program task seeds
/// (`"GENH"`), keeping traffic seeds independent of the candidate-seed
/// stream the generator itself consumes.
const GENH_SALT: u64 = 0x4745_4E48;

/// Configuration of a generated-program campaign.
#[derive(Debug, Clone)]
pub struct GenHuntConfig {
    /// Programs to generate and sweep.
    pub count: u64,
    /// Campaign seed: program generation, fault injection, and traffic
    /// seeds all derive from it.
    pub seed: u64,
    /// Backends each program is swept on.
    pub levels: Vec<OptLevel>,
    /// PHVs per differential fuzz run.
    pub fuzz_phvs: usize,
    /// Independently seeded fuzz runs per (program, level) in the clean
    /// sweep.
    pub fuzz_runs: usize,
    /// Bit width of fuzzed container values.
    pub input_bits: u32,
    /// Faults injected per generated program (0 = clean sweep only).
    pub faults_per_program: usize,
    /// Oracle-consultation budget for program-level minimization of each
    /// diverging fault.
    pub minimize_checks: usize,
    /// Worker threads.
    pub workers: usize,
    /// Crash-resilience options (checkpoint/resume, wall-clock budget).
    /// Excluded from the snapshot fingerprint.
    pub runtime: RuntimeOptions,
}

impl Default for GenHuntConfig {
    fn default() -> Self {
        GenHuntConfig {
            count: 1000,
            seed: 0x000D_122B,
            levels: OptLevel::ALL.to_vec(),
            fuzz_phvs: 500,
            fuzz_runs: 1,
            input_bits: 10,
            faults_per_program: 0,
            minimize_checks: 200,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
            runtime: RuntimeOptions::default(),
        }
    }
}

/// The checkpoint-stable projection of one swept program: the
/// aggregate-relevant counters plus the fully-rendered `programs[]` JSON
/// row, restored verbatim on resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenRecord {
    /// Program index under the campaign seed.
    pub index: u64,
    /// Generated program name (`gen_{seed:016x}_{index}`).
    pub name: String,
    /// Grid label (`depth x width : atom`).
    pub grid: String,
    /// Candidates the vet chain rejected before this program.
    pub rejected: u32,
    /// Alarming rejects: candidates thrown out because translation
    /// validation mismatched or the symbolic pass *refuted* their fresh
    /// compile. Unlike `Trivial`/`Hazardous` rejects these are compiler
    /// bugs, and the campaign exit is nonzero when any occur.
    pub alarming: u32,
    /// Clean-sweep divergences (expected 0 — each is a compiler bug).
    pub clean_divergences: usize,
    /// Faults successfully injected.
    pub faults_seeded: usize,
    /// Injected faults detected by the sweep.
    pub faults_detected: usize,
    /// Detected faults whose program-level minimization succeeded.
    pub minimized: usize,
    /// The worker died evaluating this program (pool-level panic).
    pub panicked: bool,
    /// The rendered JSON row, carried verbatim through checkpoints.
    pub json: String,
}

/// One checkpoint line: tab-separated counters, the JSON row last (the
/// only field that may contain tabs, hence `splitn` on decode).
fn record_line(r: &GenRecord) -> String {
    format!(
        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        r.index,
        r.name,
        r.grid,
        r.rejected,
        r.alarming,
        r.clean_divergences,
        r.faults_seeded,
        r.faults_detected,
        r.minimized,
        u8::from(r.panicked),
        r.json
    )
}

/// Inverse of [`record_line`]; `None` rejects malformed/foreign lines.
fn parse_record_line(line: &str) -> Option<GenRecord> {
    let mut parts = line.splitn(11, '\t');
    let index = parts.next()?.parse().ok()?;
    let name = parts.next()?.to_string();
    let grid = parts.next()?.to_string();
    let rejected = parts.next()?.parse().ok()?;
    let alarming = parts.next()?.parse().ok()?;
    let clean_divergences = parts.next()?.parse().ok()?;
    let faults_seeded = parts.next()?.parse().ok()?;
    let faults_detected = parts.next()?.parse().ok()?;
    let minimized = parts.next()?.parse().ok()?;
    let panicked = match parts.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let json = parts.next()?.to_string();
    Some(GenRecord {
        index,
        name,
        grid,
        rejected,
        alarming,
        clean_divergences,
        faults_seeded,
        faults_detected,
        minimized,
        panicked,
        json,
    })
}

/// Aggregate result of a generated-program campaign.
#[derive(Debug, Clone)]
pub struct GenHuntReport {
    /// One record per *completed* program sweep, in index order — the
    /// canonical source for every aggregate and the JSON `programs[]`
    /// array. Resumed campaigns restore records without re-sweeping.
    pub records: Vec<GenRecord>,
    /// Program sweeps skipped because the wall-clock budget expired.
    pub truncated: usize,
    /// The configuration that produced the report.
    pub config: GenHuntConfig,
}

impl GenHuntReport {
    /// Programs swept to completion.
    pub fn programs(&self) -> usize {
        self.records.len()
    }

    /// Candidates the vet chain rejected across all programs.
    pub fn rejected_candidates(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.rejected)).sum()
    }

    /// Alarming rejects across all programs: fresh compiles the TV or
    /// symbolic pass caught disagreeing with their source. Each is a
    /// compiler bug; the expected count is zero.
    pub fn alarming_rejects(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.alarming)).sum()
    }

    /// Clean-sweep divergences across all programs (each one is a real
    /// compiler bug; the expected count is zero).
    pub fn clean_divergences(&self) -> usize {
        self.records.iter().map(|r| r.clean_divergences).sum()
    }

    /// Faults injected across all programs.
    pub fn faults_seeded(&self) -> usize {
        self.records.iter().map(|r| r.faults_seeded).sum()
    }

    /// Injected faults the sweep detected.
    pub fn faults_detected(&self) -> usize {
        self.records.iter().map(|r| r.faults_detected).sum()
    }

    /// Detected faults minimized to a program-level reproducer.
    pub fn minimized(&self) -> usize {
        self.records.iter().map(|r| r.minimized).sum()
    }

    /// Programs whose sweep died to a pool-level panic.
    pub fn panics(&self) -> usize {
        self.records.iter().filter(|r| r.panicked).count()
    }

    /// Detected fraction over injected faults (1.0 when none injected).
    pub fn detection_rate(&self) -> f64 {
        if self.faults_seeded() == 0 {
            return 1.0;
        }
        self.faults_detected() as f64 / self.faults_seeded() as f64
    }

    /// Render the campaign as a JSON document (schema: DESIGN.md §13).
    /// Hand-written — the vendored `serde` is a no-op stand-in.
    pub fn to_json(&self) -> String {
        let cfg = &self.config;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"config\": {{");
        let _ = writeln!(s, "    \"seed\": {},", cfg.seed);
        let _ = writeln!(s, "    \"count\": {},", cfg.count);
        let levels: Vec<String> = cfg
            .levels
            .iter()
            .map(|l| format!("\"{}\"", l.key()))
            .collect();
        let _ = writeln!(s, "    \"levels\": [{}],", levels.join(", "));
        let _ = writeln!(s, "    \"fuzz_phvs\": {},", cfg.fuzz_phvs);
        let _ = writeln!(s, "    \"fuzz_runs\": {},", cfg.fuzz_runs);
        let _ = writeln!(s, "    \"input_bits\": {},", cfg.input_bits);
        let _ = writeln!(s, "    \"faults_per_program\": {},", cfg.faults_per_program);
        let _ = writeln!(s, "    \"minimize_checks\": {}", cfg.minimize_checks);
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"summary\": {{");
        let _ = writeln!(s, "    \"programs\": {},", self.programs());
        let _ = writeln!(s, "    \"truncated\": {},", self.truncated);
        let _ = writeln!(
            s,
            "    \"rejected_candidates\": {},",
            self.rejected_candidates()
        );
        let _ = writeln!(s, "    \"alarming_rejects\": {},", self.alarming_rejects());
        let _ = writeln!(
            s,
            "    \"clean_divergences\": {},",
            self.clean_divergences()
        );
        let _ = writeln!(s, "    \"faults_seeded\": {},", self.faults_seeded());
        let _ = writeln!(s, "    \"faults_detected\": {},", self.faults_detected());
        let _ = writeln!(s, "    \"detection_rate\": {:.4},", self.detection_rate());
        let _ = writeln!(s, "    \"minimized\": {},", self.minimized());
        let _ = writeln!(s, "    \"panics\": {}", self.panics());
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"programs\": [");
        let rows: Vec<&str> = self.records.iter().map(|r| r.json.as_str()).collect();
        let _ = writeln!(s, "{}", rows.join(",\n"));
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }
}

fn esc(raw: &str) -> String {
    raw.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Run a generated-program campaign. Deterministic: the report is a pure
/// function of the configuration, independent of worker count.
pub fn genhunt(cfg: &GenHuntConfig) -> Result<GenHuntReport, String> {
    if cfg.levels.is_empty() {
        return Err("hunt --generate needs at least one optimization level".into());
    }
    if cfg.count == 0 {
        return Err("--generate needs a nonzero program count".into());
    }

    let total = cfg.count as usize;
    let fingerprint = snapshot::fingerprint_of(&[
        "genhunt".to_string(),
        format!(
            "{:?}",
            GenHuntConfig {
                runtime: RuntimeOptions::default(),
                ..cfg.clone()
            }
        ),
    ]);

    // Resume: restore completed sweeps by program index.
    let mut slots: Vec<Option<GenRecord>> = vec![None; total];
    if cfg.runtime.resume {
        if let Some(dir) = cfg.runtime.checkpoint_dir.as_deref() {
            let loaded = snapshot::load_latest(dir, "genhunt", fingerprint);
            for w in &loaded.warnings {
                eprintln!("warning: {w}");
            }
            for line in loaded.lines.unwrap_or_default() {
                match parse_record_line(&line) {
                    Some(record) if (record.index as usize) < total => {
                        let slot = record.index as usize;
                        slots[slot] = Some(record);
                    }
                    _ => eprintln!("warning: ignoring malformed genhunt checkpoint line"),
                }
            }
        }
    }
    let pending: Vec<u64> = (0..cfg.count)
        .filter(|&i| slots[i as usize].is_none())
        .collect();

    let deadline = cfg.runtime.deadline(Instant::now());
    let every = cfg.runtime.effective_every();
    let ckpt_dir = cfg.runtime.checkpoint_dir.clone();

    // A worker that dies at the pool level (generation or synthesis
    // panicking past the per-case guards) still yields a row.
    let death_record = |index: u64, payload: &str| -> GenRecord {
        GenRecord {
            index,
            name: format!("gen_{:016x}_{index}", cfg.seed),
            grid: "?".to_string(),
            rejected: 0,
            alarming: 0,
            clean_divergences: 0,
            faults_seeded: 0,
            faults_detected: 0,
            minimized: 0,
            panicked: true,
            json: format!(
                "    {{\"name\": \"gen_{:016x}_{index}\", \"index\": {index}, \
                 \"panic\": \"{}\"}}",
                cfg.seed,
                esc(payload)
            ),
        }
    };

    let mut since_save = 0usize;
    let results = {
        let slots = &mut slots;
        run_stealing_observed(
            pending.clone(),
            cfg.workers,
            deadline,
            |_, index| sweep_program(cfg, index),
            |i, result| {
                let index = pending[i];
                slots[index as usize] = Some(match result {
                    Ok(record) => record.clone(),
                    Err(p) => death_record(index, &p.payload),
                });
                since_save += 1;
                if since_save >= every {
                    since_save = 0;
                    if let Some(dir) = ckpt_dir.as_deref() {
                        save_records(dir, fingerprint, slots);
                        let completed = slots.iter().flatten().count();
                        snapshot::write_heartbeat(dir, "genhunt", completed, total, false);
                    }
                }
            },
        )
    };

    let truncated = results.iter().filter(|r| r.is_none()).count();
    if let Some(dir) = ckpt_dir.as_deref() {
        save_records(dir, fingerprint, &slots);
        let completed = slots.iter().flatten().count();
        snapshot::write_heartbeat(dir, "genhunt", completed, total, truncated > 0);
    }

    let records: Vec<GenRecord> = slots.into_iter().flatten().collect();
    Ok(GenHuntReport {
        records,
        truncated,
        config: cfg.clone(),
    })
}

/// Write every completed record to the campaign snapshot.
fn save_records(dir: &Path, fingerprint: u64, slots: &[Option<GenRecord>]) {
    let lines: Vec<String> = slots.iter().flatten().map(record_line).collect();
    if let Err(e) = snapshot::save(dir, "genhunt", fingerprint, &lines) {
        eprintln!("warning: failed to write genhunt checkpoint: {e}");
    }
}

/// One clean-sweep or fault-sweep divergence, for the JSON row.
struct Divergence {
    level: OptLevel,
    seed: u64,
    verdict: VerdictClass,
}

/// Generate program `index` and sweep it: clean differential runs on
/// every level, then optional fault injection with program-level
/// minimization of every diverging fault.
fn sweep_program(cfg: &GenHuntConfig, index: u64) -> GenRecord {
    let g = generate_domino_at(cfg.seed, index);
    let task_seed = shard_seed(cfg.seed ^ GENH_SALT, index);

    // Clean sweep: the program is freshly compiled and statically vetted,
    // so any divergence is a genuine compiler bug.
    let mut clean: Vec<Divergence> = Vec::new();
    for (li, &level) in cfg.levels.iter().enumerate() {
        for run in 0..cfg.fuzz_runs.max(1) {
            let seed = shard_seed(task_seed, (li * cfg.fuzz_runs.max(1) + run) as u64);
            let verdict = clean_run(cfg, &g, level, seed);
            if verdict != VerdictClass::Pass {
                clean.push(Divergence {
                    level,
                    seed,
                    verdict,
                });
                break;
            }
        }
    }

    // Fault sweep: inject known faults into the generated machine code
    // and hunt them, minimizing each divergence at the program level.
    let mut faults: Vec<FaultRow> = Vec::new();
    for f in 0..cfg.faults_per_program {
        let kind = FaultKind::BEHAVIORAL[f % FaultKind::BEHAVIORAL.len()];
        let mut injector = FaultInjector::new(shard_seed(task_seed, 0x4641 + f as u64));
        let Some((bad_mc, fault)) =
            injector.inject(&g.compiled.pipeline_spec, &g.compiled.machine_code, kind)
        else {
            continue;
        };
        faults.push(sweep_fault(cfg, &g, task_seed, f, fault, &bad_mc));
    }

    let faults_detected = faults.iter().filter(|f| f.divergence.is_some()).count();
    let minimized = faults.iter().filter(|f| f.minimized.is_some()).count();
    let json = program_json(&g, &clean, &faults);
    GenRecord {
        index,
        name: g.name,
        grid: g.grid.to_string(),
        rejected: g.rejects.total(),
        alarming: g.rejects.alarming(),
        clean_divergences: clean.len(),
        faults_seeded: faults.len(),
        faults_detected,
        minimized,
        panicked: false,
        json,
    }
}

/// One differential fuzz run of the unmutated program.
fn clean_run(cfg: &GenHuntConfig, g: &GeneratedDomino, level: OptLevel, seed: u64) -> VerdictClass {
    let mut reference = g.interpreter_spec();
    let fuzz_cfg = FuzzConfig {
        num_phvs: cfg.fuzz_phvs,
        seed,
        input_bits: cfg.input_bits,
        observable: Some(g.compiled.observable_containers()),
        state_cells: g.compiled.state_cells.clone(),
        minimize: false,
    };
    fuzz_test(
        &g.compiled.pipeline_spec,
        &g.compiled.machine_code,
        level,
        &mut reference,
        &fuzz_cfg,
    )
    .verdict
    .class()
}

/// One injected fault's sweep result.
struct FaultRow {
    fault: Fault,
    /// First diverging (level, seed, class), `None` when undetected.
    divergence: Option<Divergence>,
    /// Program-level minimization result: `(reduced, sizes, checks)`.
    minimized: Option<MinimizedProgram>,
}

struct MinimizedProgram {
    source: String,
    size_before: usize,
    size_after: usize,
    checks: usize,
}

/// Hunt one injected fault across the levels; on the first divergence,
/// shrink the *program* to a minimal reproducer that still diverges with
/// the same verdict class under the same fault and traffic seed.
fn sweep_fault(
    cfg: &GenHuntConfig,
    g: &GeneratedDomino,
    task_seed: u64,
    slot: usize,
    fault: Fault,
    bad_mc: &druzhba_core::MachineCode,
) -> FaultRow {
    let mut divergence = None;
    for (li, &level) in cfg.levels.iter().enumerate() {
        let seed = shard_seed(task_seed, 0x4644 + (slot * cfg.levels.len() + li) as u64);
        let mut reference = g.interpreter_spec();
        let fuzz_cfg = FuzzConfig {
            num_phvs: cfg.fuzz_phvs,
            seed,
            input_bits: cfg.input_bits,
            observable: Some(g.compiled.observable_containers()),
            state_cells: g.compiled.state_cells.clone(),
            minimize: false,
        };
        let verdict = fuzz_test(
            &g.compiled.pipeline_spec,
            bad_mc,
            level,
            &mut reference,
            &fuzz_cfg,
        )
        .verdict;
        if verdict.class() != VerdictClass::Pass {
            divergence = Some(Divergence {
                level,
                seed,
                verdict: verdict.class(),
            });
            break;
        }
    }

    let minimized = divergence.as_ref().and_then(|d| {
        let mut oracle =
            |p: &DominoProgram| catch_silent(|| reproduces(cfg, g, p, &fault, d)).unwrap_or(false);
        minimize_program(&g.program, &mut oracle, cfg.minimize_checks).map(|(reduced, checks)| {
            MinimizedProgram {
                source: druzhba_progen::render_program(&reduced),
                size_before: program_size(&g.program),
                size_after: program_size(&reduced),
                checks,
            }
        })
    });

    FaultRow {
        fault,
        divergence,
        minimized,
    }
}

/// The program-level minimization oracle: recompile the candidate on the
/// generated program's grid, re-apply the fault by pair name (a
/// reduction that compiles the fault site away does not reproduce), and
/// replay the differential check under the original diverging traffic
/// seed, demanding the same verdict class.
fn reproduces(
    cfg: &GenHuntConfig,
    g: &GeneratedDomino,
    candidate: &DominoProgram,
    fault: &Fault,
    d: &Divergence,
) -> bool {
    let compiler_cfg = CompilerConfig::new(g.grid.depth, g.grid.width, g.grid.atom);
    let Ok(comp) = compile(candidate, &compiler_cfg) else {
        return false;
    };
    let Some(bad_mc) = fault.apply(&comp.machine_code) else {
        return false;
    };
    let mut reference = CompiledSpec::new(candidate.clone(), &comp);
    let fuzz_cfg = FuzzConfig {
        num_phvs: cfg.fuzz_phvs,
        seed: d.seed,
        input_bits: cfg.input_bits,
        observable: Some(comp.observable_containers()),
        state_cells: comp.state_cells.clone(),
        minimize: false,
    };
    let verdict = fuzz_test(
        &comp.pipeline_spec,
        &bad_mc,
        d.level,
        &mut reference,
        &fuzz_cfg,
    )
    .verdict;
    verdict.class() == d.verdict
}

fn fault_json(fault: &Fault) -> String {
    match fault {
        Fault::RemovedPair { name } => {
            format!(
                "{{\"kind\": \"removed_pair\", \"name\": \"{}\"}}",
                esc(name)
            )
        }
        Fault::MutatedValue { name, old, new } => format!(
            "{{\"kind\": \"mutated_value\", \"name\": \"{}\", \"old\": {old}, \"new\": {new}}}",
            esc(name)
        ),
        Fault::OutOfRangeValue { name, new } => format!(
            "{{\"kind\": \"out_of_range_value\", \"name\": \"{}\", \"new\": {new}}}",
            esc(name)
        ),
        Fault::HostileTrap { name, old } => format!(
            "{{\"kind\": \"hostile_trap\", \"name\": \"{}\", \"old\": {old}}}",
            esc(name)
        ),
    }
}

/// Render one program's JSON row.
fn program_json(g: &GeneratedDomino, clean: &[Divergence], faults: &[FaultRow]) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "    {{\"name\": \"{}\", \"index\": {}, \"grid\": \"{}\", \"atom\": \"{}\", \
         \"recipe\": \"{}\", \"rejected\": {}, ",
        g.name,
        g.index,
        g.grid,
        g.grid.atom,
        esc(&g.recipe()),
        g.rejects.total()
    );
    let clean_rows: Vec<String> = clean
        .iter()
        .map(|d| {
            format!(
                "{{\"level\": \"{}\", \"seed\": {}, \"verdict\": \"{}\"}}",
                d.level.key(),
                d.seed,
                d.verdict.key()
            )
        })
        .collect();
    let _ = write!(s, "\"clean_divergences\": [{}], ", clean_rows.join(", "));
    let fault_rows: Vec<String> = faults
        .iter()
        .map(|f| {
            let mut row = format!("{{\"fault\": {}, ", fault_json(&f.fault));
            match &f.divergence {
                Some(d) => {
                    let _ = write!(
                        row,
                        "\"detected\": true, \"level\": \"{}\", \"seed\": {}, \
                         \"verdict\": \"{}\", ",
                        d.level.key(),
                        d.seed,
                        d.verdict.key()
                    );
                }
                None => {
                    let _ = write!(row, "\"detected\": false, ");
                }
            }
            match &f.minimized {
                Some(m) => {
                    let _ = write!(
                        row,
                        "\"minimized\": {{\"size_before\": {}, \"size_after\": {}, \
                         \"checks\": {}, \"source\": \"{}\"}}}}",
                        m.size_before,
                        m.size_after,
                        m.checks,
                        esc(&m.source)
                    );
                }
                None => {
                    let _ = write!(row, "\"minimized\": null}}");
                }
            }
            row
        })
        .collect();
    let _ = write!(s, "\"faults\": [{}]}}", fault_rows.join(", "));
    s
}
