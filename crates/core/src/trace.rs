//! Simulation traces.
//!
//! Paper §3.3: *"Following simulation, an output trace shows the modified
//! PHVs and the state vectors. … Assertions check the equivalence of the
//! output traces to determine if the behaviors of the Druzhba pipeline and
//! the specification match."*

use std::fmt;

use crate::phv::Phv;
use crate::value::Value;

/// Final switch-state snapshot: `state[stage][slot]` is the state-variable
/// vector of the stateful ALU at that grid position.
pub type StateSnapshot = Vec<Vec<Vec<Value>>>;

/// A sequence of PHVs, used both as pipeline input (from the traffic
/// generator) and as output (after simulation), optionally with the final
/// state snapshot attached.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// PHVs in entry (or exit) order.
    pub phvs: Vec<Phv>,
    /// Final state of every stateful ALU, if recorded.
    pub state: Option<StateSnapshot>,
}

impl Trace {
    /// A trace of PHVs with no state snapshot.
    pub fn from_phvs(phvs: Vec<Phv>) -> Self {
        Trace { phvs, state: None }
    }

    /// Number of PHVs.
    pub fn len(&self) -> usize {
        self.phvs.len()
    }

    /// True if the trace holds no PHVs.
    pub fn is_empty(&self) -> bool {
        self.phvs.is_empty()
    }

    /// The first `len` PHVs as a new trace (no state snapshot). Used by
    /// counterexample minimization: a prefix of a failing input trace is
    /// the cheapest reduction candidate.
    pub fn prefix(&self, len: usize) -> Trace {
        Trace::from_phvs(self.phvs.iter().take(len).cloned().collect())
    }

    /// Compare against another trace on the given container indices only.
    ///
    /// The compiler allocates a subset of PHV containers to program-visible
    /// packet fields; scratch containers are free to differ, so equivalence
    /// is asserted only on the observable ones. Passing `None` compares all
    /// containers.
    ///
    /// Returns the first mismatch found, or `None` if equivalent.
    pub fn first_mismatch(
        &self,
        other: &Trace,
        observable: Option<&[usize]>,
    ) -> Option<TraceMismatch> {
        if self.phvs.len() != other.phvs.len() {
            return Some(TraceMismatch::LengthMismatch {
                expected: self.phvs.len(),
                actual: other.phvs.len(),
            });
        }
        for (tick, (a, b)) in self.phvs.iter().zip(&other.phvs).enumerate() {
            let indices: Vec<usize> = match observable {
                Some(idx) => idx.to_vec(),
                None => (0..a.len().max(b.len())).collect(),
            };
            for &c in &indices {
                let va = a.try_get(c);
                let vb = b.try_get(c);
                if va != vb {
                    return Some(TraceMismatch::ContainerMismatch {
                        tick,
                        container: c,
                        expected: va,
                        actual: vb,
                    });
                }
            }
        }
        None
    }
}

/// A divergence between an expected and an actual trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceMismatch {
    /// The traces hold different numbers of PHVs.
    LengthMismatch { expected: usize, actual: usize },
    /// A container value differs at a given tick.
    ContainerMismatch {
        /// Index of the diverging PHV within the trace.
        tick: usize,
        /// Diverging container index.
        container: usize,
        /// Expected value (`None` if the container does not exist).
        expected: Option<Value>,
        /// Actual value (`None` if the container does not exist).
        actual: Option<Value>,
    },
    /// Final state differs at a given stateful ALU.
    StateMismatch {
        stage: usize,
        slot: usize,
        expected: Vec<Value>,
        actual: Vec<Value>,
    },
}

impl TraceMismatch {
    /// The tick at which the divergence occurs, when it is tick-specific
    /// (state mismatches are observed only after the whole trace).
    /// Counterexample minimization truncates the failing trace here.
    pub fn tick(&self) -> Option<usize> {
        match self {
            TraceMismatch::ContainerMismatch { tick, .. } => Some(*tick),
            _ => None,
        }
    }
}

impl fmt::Display for TraceMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceMismatch::LengthMismatch { expected, actual } => {
                write!(f, "trace lengths differ: expected {expected}, got {actual}")
            }
            TraceMismatch::ContainerMismatch {
                tick,
                container,
                expected,
                actual,
            } => write!(
                f,
                "PHV {tick} container {container}: expected {expected:?}, got {actual:?}"
            ),
            TraceMismatch::StateMismatch {
                stage,
                slot,
                expected,
                actual,
            } => write!(
                f,
                "stateful ALU ({stage},{slot}) final state: expected {expected:?}, got {actual:?}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(rows: &[&[Value]]) -> Trace {
        Trace::from_phvs(rows.iter().map(|r| Phv::new(r.to_vec())).collect())
    }

    #[test]
    fn identical_traces_match() {
        let a = trace(&[&[1, 2], &[3, 4]]);
        let b = trace(&[&[1, 2], &[3, 4]]);
        assert_eq!(a.first_mismatch(&b, None), None);
    }

    #[test]
    fn length_mismatch_detected() {
        let a = trace(&[&[1]]);
        let b = trace(&[&[1], &[2]]);
        assert_eq!(
            a.first_mismatch(&b, None),
            Some(TraceMismatch::LengthMismatch {
                expected: 1,
                actual: 2
            })
        );
    }

    #[test]
    fn container_mismatch_reports_location() {
        let a = trace(&[&[1, 2], &[3, 4]]);
        let b = trace(&[&[1, 2], &[3, 9]]);
        assert_eq!(
            a.first_mismatch(&b, None),
            Some(TraceMismatch::ContainerMismatch {
                tick: 1,
                container: 1,
                expected: Some(4),
                actual: Some(9)
            })
        );
    }

    #[test]
    fn observable_subset_ignores_scratch_containers() {
        let a = trace(&[&[1, 100]]);
        let b = trace(&[&[1, 200]]);
        // Container 1 is scratch; only container 0 is observable.
        assert_eq!(a.first_mismatch(&b, Some(&[0])), None);
        assert!(a.first_mismatch(&b, Some(&[1])).is_some());
    }

    #[test]
    fn differing_phv_lengths_detected_when_compared() {
        let a = trace(&[&[1, 2]]);
        let b = trace(&[&[1]]);
        assert_eq!(
            a.first_mismatch(&b, None),
            Some(TraceMismatch::ContainerMismatch {
                tick: 0,
                container: 1,
                expected: Some(2),
                actual: None
            })
        );
    }

    #[test]
    fn prefix_takes_leading_phvs() {
        let a = trace(&[&[1], &[2], &[3]]);
        assert_eq!(a.prefix(2), trace(&[&[1], &[2]]));
        assert_eq!(a.prefix(0).len(), 0);
        assert_eq!(a.prefix(9), a);
    }

    #[test]
    fn mismatch_tick_is_container_specific() {
        let m = TraceMismatch::ContainerMismatch {
            tick: 3,
            container: 0,
            expected: Some(1),
            actual: Some(2),
        };
        assert_eq!(m.tick(), Some(3));
        let s = TraceMismatch::StateMismatch {
            stage: 0,
            slot: 0,
            expected: vec![],
            actual: vec![],
        };
        assert_eq!(s.tick(), None);
    }

    #[test]
    fn mismatch_display_is_readable() {
        let m = TraceMismatch::ContainerMismatch {
            tick: 5,
            container: 2,
            expected: Some(7),
            actual: Some(8),
        };
        let s = m.to_string();
        assert!(s.contains("PHV 5"));
        assert!(s.contains("container 2"));
    }
}
