//! Ablation for the §5.1 scaling claim — *"programs … that showed the most
//! significant improvements due to our optimizations were the ones with the
//! highest number of pipeline depths and widths"* — extended with the
//! beyond-paper fused backend, plus the Table 1 corpus measured at all four
//! optimization levels.
//!
//! Besides the human-readable tables, the run writes a machine-readable
//! `BENCH_scaling.json` (PHVs/sec per backend per grid size and per Table 1
//! program) so the performance trajectory is diffable across commits; CI
//! runs a reduced-PHV smoke pass so regressions surface early. The JSON is
//! written by hand — the vendored `serde` is a no-op stand-in (see
//! DESIGN.md).
//!
//! Throughput is measured over the batched in-place execution path
//! (`Pipeline::process_batch`), which the property suite proves equivalent
//! to tick-accurate simulation; the `table1` binary keeps the paper's
//! tick-accurate measurement. The `fused_lanes` column measures the SoA
//! lane engine in its 64-lane sweep configuration (independent executions,
//! the shape lane-swept verification runs); `--lanes-floor F` turns the
//! lanes-over-fused geomean into a CI regression gate (exit nonzero below
//! the floor).
//!
//! Usage: `cargo run -p druzhba-bench --release --bin scaling [num_phvs]
//! [--out FILE] [--lanes-floor F]`

use std::fmt::Write as _;
use std::time::Duration;

use druzhba_alu_dsl::atoms::atom;
use druzhba_bench::{phvs_per_sec, time_batch, time_batch_lanes, BENCH_SEED};
use druzhba_core::{MachineCode, PipelineConfig};
use druzhba_dgen::{expected_machine_code, OptLevel, PipelineSpec};
use druzhba_programs::PROGRAMS;

/// Lane width of the `fused_lanes` column: the engine's widest sweep.
const LANES: usize = 64;

/// Render `{"unoptimized": .., "scc": .., "scc_inline": .., "fused": ..}`
/// plus any extra named rates (the lane column is not an [`OptLevel`]).
fn rates_json(
    num_phvs: usize,
    timings: &[(OptLevel, Duration)],
    extra: &[(&str, Duration)],
) -> String {
    let mut fields: Vec<String> = timings
        .iter()
        .map(|(opt, d)| format!("\"{}\": {:.1}", opt.key(), phvs_per_sec(num_phvs, *d)))
        .collect();
    fields.extend(
        extra
            .iter()
            .map(|(name, d)| format!("\"{name}\": {:.1}", phvs_per_sec(num_phvs, *d))),
    );
    format!("{{{}}}", fields.join(", "))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_flag = args.iter().position(|a| a == "--out");
    let out_path = out_flag
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_scaling.json", String::as_str);
    let floor_flag = args.iter().position(|a| a == "--lanes-floor");
    let lanes_floor: Option<f64> = floor_flag.and_then(|i| args.get(i + 1)).map(|s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad --lanes-floor `{s}` (expected a ratio like 4.0)");
            std::process::exit(1);
        })
    });
    // The positional PHV count is any non-flag token that is not a flag's
    // value. An unparseable count is an error, not a silent fallback: a
    // trajectory point recorded at the wrong scale is worse than no run.
    let num_phvs: usize = match args.iter().enumerate().find(|&(i, a)| {
        !a.starts_with("--")
            && Some(i) != out_flag.map(|f| f + 1)
            && Some(i) != floor_flag.map(|f| f + 1)
    }) {
        None => 20_000,
        Some((_, s)) => s.parse().unwrap_or_else(|_| {
            eprintln!("bad PHV count `{s}` (expected a plain integer)");
            std::process::exit(1);
        }),
    };

    let mut grids_json = Vec::new();
    let mut lanes_log_sum = 0.0f64;
    let mut lanes_cells = 0usize;
    println!("Backend PHVs/sec by grid size, {num_phvs} PHVs, pred_raw/stateless_full\n");
    println!(
        "{:>6} {:>6} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9} {:>9}",
        "depth",
        "width",
        "mc pairs",
        "unopt/s",
        "scc/s",
        "inline/s",
        "fused/s",
        "lanes/s",
        "scc-spdup",
        "fus-spdup",
        "lane-spdup"
    );
    for depth in [1usize, 2, 4, 6] {
        for width in [1usize, 2, 4, 6] {
            let spec = PipelineSpec::new(
                PipelineConfig::new(depth, width),
                atom("pred_raw").unwrap(),
                atom("stateless_full").unwrap(),
            )
            .unwrap();
            let expected = expected_machine_code(&spec);
            let pairs = expected.len();
            let mc = MachineCode::from_pairs(expected.into_iter().map(|(n, _)| (n, 0)));
            let timings: Vec<(OptLevel, Duration)> = OptLevel::ALL
                .iter()
                .map(|&opt| {
                    (
                        opt,
                        time_batch(&spec, &mc, opt, num_phvs, BENCH_SEED).unwrap(),
                    )
                })
                .collect();
            let lanes = time_batch_lanes(&spec, &mc, num_phvs, BENCH_SEED, LANES).unwrap();
            let rate = |i: usize| phvs_per_sec(num_phvs, timings[i].1);
            let lanes_rate = phvs_per_sec(num_phvs, lanes);
            let lane_speedup = lanes_rate / rate(3).max(1e-9);
            lanes_log_sum += lane_speedup.max(1e-9).ln();
            lanes_cells += 1;
            println!(
                "{:>6} {:>6} {:>10} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>8.2}x \
                 {:>8.2}x {:>8.2}x",
                depth,
                width,
                pairs,
                rate(0),
                rate(1),
                rate(2),
                rate(3),
                lanes_rate,
                rate(1) / rate(0).max(1e-9),
                rate(3) / rate(2).max(1e-9),
                lane_speedup,
            );
            grids_json.push(format!(
                "    {{\"depth\": {depth}, \"width\": {width}, \"mc_pairs\": {pairs}, \
                 \"phvs_per_sec\": {}}}",
                rates_json(num_phvs, &timings, &[("fused_lanes", lanes)])
            ));
        }
    }

    println!("\nTable 1 corpus, {num_phvs} PHVs per backend:\n");
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "Program", "grid", "unopt/s", "scc/s", "inline/s", "fused/s", "lanes/s", "fus-spdup"
    );
    let mut table1_json = Vec::new();
    let mut speedup_log_sum = 0.0f64;
    let mut measured = 0usize;
    for def in &PROGRAMS {
        let compiled = match def.compile_cached() {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{:<20} FAILED: {e}", def.table1_name);
                continue;
            }
        };
        let timings: Vec<(OptLevel, Duration)> = OptLevel::ALL
            .iter()
            .map(|&opt| {
                (
                    opt,
                    time_batch(
                        &compiled.pipeline_spec,
                        &compiled.machine_code,
                        opt,
                        num_phvs,
                        BENCH_SEED,
                    )
                    .unwrap(),
                )
            })
            .collect();
        let lanes = time_batch_lanes(
            &compiled.pipeline_spec,
            &compiled.machine_code,
            num_phvs,
            BENCH_SEED,
            LANES,
        )
        .unwrap();
        let speedup = timings[2].1.as_secs_f64() / timings[3].1.as_secs_f64().max(1e-9);
        speedup_log_sum += speedup.ln();
        measured += 1;
        println!(
            "{:<20} {:>12} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>8.2}x",
            def.table1_name,
            format!("{}x{}", def.depth, def.width),
            phvs_per_sec(num_phvs, timings[0].1),
            phvs_per_sec(num_phvs, timings[1].1),
            phvs_per_sec(num_phvs, timings[2].1),
            phvs_per_sec(num_phvs, timings[3].1),
            phvs_per_sec(num_phvs, lanes),
            speedup,
        );
        table1_json.push(format!(
            "    {{\"program\": \"{}\", \"depth\": {}, \"width\": {}, \
             \"phvs_per_sec\": {}, \"fused_over_scc_inline\": {:.3}}}",
            def.name,
            def.depth,
            def.width,
            rates_json(num_phvs, &timings, &[("fused_lanes", lanes)]),
            speedup,
        ));
    }
    let geomean = if measured > 0 {
        (speedup_log_sum / measured as f64).exp()
    } else {
        0.0
    };
    println!("\nGeomean fused-over-inline speedup across the corpus: {geomean:.2}x");
    let lanes_geomean = if lanes_cells > 0 {
        (lanes_log_sum / lanes_cells as f64).exp()
    } else {
        0.0
    };
    println!("Geomean {LANES}-lane sweep over scalar fused across the grid: {lanes_geomean:.2}x");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"num_phvs\": {num_phvs},");
    let _ = writeln!(json, "  \"seed\": {BENCH_SEED},");
    let _ = writeln!(json, "  \"lane_width\": {LANES},");
    let _ = writeln!(json, "  \"grids\": [");
    let _ = writeln!(json, "{}", grids_json.join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"table1\": [");
    let _ = writeln!(json, "{}", table1_json.join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"fused_over_scc_inline_geomean\": {geomean:.3},");
    let _ = writeln!(
        json,
        "  \"fused_lanes_over_fused_geomean\": {lanes_geomean:.3}"
    );
    let _ = writeln!(json, "}}");
    match std::fs::write(out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            // Exit nonzero: a green CI perf-smoke step must mean a fresh
            // measurement was recorded, not a stale committed file.
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    // The regression gate runs after the JSON write so a failing run still
    // records the measurement it failed on.
    if let Some(floor) = lanes_floor {
        if lanes_geomean < floor {
            eprintln!(
                "lane regression: {LANES}-lane sweep geomean {lanes_geomean:.2}x over scalar \
                 fused is below the committed {floor:.2}x floor"
            );
            std::process::exit(1);
        }
    }
}
