//! Time-travel debugging (the paper's §7 future work, implemented).
//!
//! *"This debugger would provide useful data to testers in reasoning about
//! the behavior of the pipeline through setting breakpoints to observe PHV
//! container and state values at different points of simulation.
//! Bi-directional traveling … can allow testers to rewind pipeline
//! simulation ticks to past pipeline states to trace origins of erroneous
//! behavior."*
//!
//! [`TimeTravelDebugger::record`] runs a full simulation while
//! checkpointing every tick: the injected PHV, the PHVs occupying each
//! stage, the complete switch state after the tick, and the exiting PHV.
//! The cursor then moves freely in both directions; breakpoints are
//! arbitrary predicates over [`TickRecord`]s and work forwards *and*
//! backwards.

use druzhba_core::trace::StateSnapshot;
use druzhba_core::value::Value;
use druzhba_core::{MachineCode, Phv, Result, Trace};
use druzhba_dgen::{OptLevel, Pipeline, PipelineSpec};

use crate::sim::Simulator;

/// Everything observable about one simulation tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickRecord {
    /// Tick index (0-based).
    pub tick: u64,
    /// PHV injected into stage 0 this tick, if any.
    pub injected: Option<Phv>,
    /// Occupancy at the *start* of the tick: `stage_inputs[k]` is the PHV
    /// stage `k` consumed (index 0 is the injected PHV).
    pub stage_inputs: Vec<Option<Phv>>,
    /// Switch state *after* the tick: `state[stage][slot]` per stateful
    /// ALU.
    pub state: StateSnapshot,
    /// PHV that exited the final stage this tick, if any.
    pub emitted: Option<Phv>,
}

/// A recorded simulation with a bidirectional cursor.
#[derive(Debug)]
pub struct TimeTravelDebugger {
    history: Vec<TickRecord>,
    cursor: usize,
}

impl TimeTravelDebugger {
    /// Run the whole input trace through a freshly generated pipeline,
    /// recording every tick (including the drain ticks that flush the
    /// pipe).
    pub fn record(
        spec: &PipelineSpec,
        mc: &MachineCode,
        opt: OptLevel,
        input: &Trace,
    ) -> Result<Self> {
        let pipeline = Pipeline::generate(spec, mc, opt)?;
        let mut sim = Simulator::new(pipeline);
        let depth = spec.config.depth;
        let mut history = Vec::with_capacity(input.len() + depth);
        let mut pending = input.phvs.iter().cloned();
        for tick in 0..(input.len() + depth) as u64 {
            let injected = pending.next();
            // Occupancy before the tick: the injected PHV plus what was
            // already in flight at stages 1..depth.
            let mut stage_inputs: Vec<Option<Phv>> = sim.in_flight().to_vec();
            stage_inputs[0] = injected.clone();
            let emitted = sim.tick(injected.clone());
            history.push(TickRecord {
                tick,
                injected,
                stage_inputs,
                state: sim.pipeline().state_snapshot(),
                emitted,
            });
        }
        Ok(TimeTravelDebugger { history, cursor: 0 })
    }

    /// Number of recorded ticks.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The record under the cursor.
    pub fn current(&self) -> &TickRecord {
        &self.history[self.cursor]
    }

    /// All records, in tick order.
    pub fn history(&self) -> &[TickRecord] {
        &self.history
    }

    /// Move one tick forward; `None` at the end (cursor unchanged).
    pub fn step_forward(&mut self) -> Option<&TickRecord> {
        if self.cursor + 1 < self.history.len() {
            self.cursor += 1;
            Some(&self.history[self.cursor])
        } else {
            None
        }
    }

    /// Move one tick backward; `None` at the beginning (cursor unchanged).
    pub fn step_back(&mut self) -> Option<&TickRecord> {
        if self.cursor > 0 {
            self.cursor -= 1;
            Some(&self.history[self.cursor])
        } else {
            None
        }
    }

    /// Jump to an absolute tick.
    pub fn goto(&mut self, tick: usize) -> Option<&TickRecord> {
        if tick < self.history.len() {
            self.cursor = tick;
            Some(&self.history[self.cursor])
        } else {
            None
        }
    }

    /// Advance until `breakpoint` fires (strictly after the cursor);
    /// returns the hit tick and leaves the cursor there.
    pub fn run_until(&mut self, breakpoint: impl Fn(&TickRecord) -> bool) -> Option<usize> {
        let hit = self.history[self.cursor + 1..]
            .iter()
            .position(breakpoint)
            .map(|off| self.cursor + 1 + off)?;
        self.cursor = hit;
        Some(hit)
    }

    /// Rewind until `breakpoint` fires (strictly before the cursor);
    /// returns the hit tick and leaves the cursor there.
    pub fn rewind_until(&mut self, breakpoint: impl Fn(&TickRecord) -> bool) -> Option<usize> {
        let hit = self.history[..self.cursor].iter().rposition(breakpoint)?;
        self.cursor = hit;
        Some(hit)
    }

    /// The value of a state cell after the cursor's tick.
    pub fn state_at_cursor(&self, stage: usize, slot: usize, var: usize) -> Option<Value> {
        self.current()
            .state
            .get(stage)
            .and_then(|s| s.get(slot))
            .and_then(|vars| vars.get(var))
            .copied()
    }

    /// Every tick at which the given state cell changed, with (old, new).
    /// The first write from the power-on value of 0 is included.
    pub fn state_changes(&self, stage: usize, slot: usize, var: usize) -> Vec<(u64, Value, Value)> {
        let mut out = Vec::new();
        let mut prev = 0;
        for record in &self.history {
            let Some(now) = record
                .state
                .get(stage)
                .and_then(|s| s.get(slot))
                .and_then(|vars| vars.get(var))
                .copied()
            else {
                continue;
            };
            if now != prev {
                out.push((record.tick, prev, now));
                prev = now;
            }
        }
        out
    }

    /// Trace an erroneous output back to its origin: find the latest tick
    /// at or before the emission of output PHV `n` (0-based among emitted
    /// PHVs) at which the chosen state cell changed — the paper's
    /// "trace origins of erroneous behavior" workflow.
    pub fn origin_of_output(
        &self,
        n: usize,
        stage: usize,
        slot: usize,
        var: usize,
    ) -> Option<(u64, Value, Value)> {
        let emit_tick = self
            .history
            .iter()
            .filter(|r| r.emitted.is_some())
            .nth(n)?
            .tick;
        self.state_changes(stage, slot, var)
            .into_iter()
            .take_while(|&(t, _, _)| t <= emit_tick)
            .last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use druzhba_alu_dsl::atoms::atom;
    use druzhba_core::PipelineConfig;
    use druzhba_dgen::expected_machine_code;

    /// Accumulator pipeline: 2 stages, width 1; stage 0 stateful `raw`
    /// accumulates container 0.
    fn setup() -> (PipelineSpec, MachineCode) {
        let spec = PipelineSpec::new(
            PipelineConfig::with_phv_length(2, 1, 2),
            atom("raw").unwrap(),
            atom("stateless_mux").unwrap(),
        )
        .unwrap();
        let mut mc = MachineCode::from_pairs(
            expected_machine_code(&spec)
                .into_iter()
                .map(|(n, _)| (n, 0)),
        );
        // Write the old accumulator into container 1 at stage 0.
        mc.set("output_mux_phv_0_1", 2);
        // Stage 1's stateful ALU must stay inert: select constant 0 via
        // mux3 (otherwise it would also accumulate container 0).
        mc.set("stateful_alu_1_0_mux3_0", 2);
        (spec, mc)
    }

    fn record(phvs: &[u32]) -> TimeTravelDebugger {
        let (spec, mc) = setup();
        let input = Trace::from_phvs(phvs.iter().map(|&v| Phv::new(vec![v, 0])).collect());
        TimeTravelDebugger::record(&spec, &mc, OptLevel::SccInline, &input).unwrap()
    }

    #[test]
    fn records_every_tick_including_drain() {
        let dbg = record(&[5, 7, 9]);
        // 3 injections + 2 drain ticks.
        assert_eq!(dbg.len(), 5);
        assert_eq!(dbg.history()[0].injected, Some(Phv::new(vec![5, 0])));
        assert_eq!(dbg.history()[3].injected, None);
        // First PHV exits at tick 1 (depth 2).
        assert!(dbg.history()[0].emitted.is_none());
        assert!(dbg.history()[1].emitted.is_some());
    }

    #[test]
    fn bidirectional_stepping() {
        let mut dbg = record(&[1, 2]);
        assert_eq!(dbg.current().tick, 0);
        assert_eq!(dbg.step_forward().unwrap().tick, 1);
        assert_eq!(dbg.step_forward().unwrap().tick, 2);
        assert_eq!(dbg.step_back().unwrap().tick, 1);
        assert_eq!(dbg.step_back().unwrap().tick, 0);
        assert!(dbg.step_back().is_none(), "clamped at the beginning");
        assert_eq!(dbg.current().tick, 0);
    }

    #[test]
    fn goto_and_bounds() {
        let mut dbg = record(&[1, 2, 3]);
        assert_eq!(dbg.goto(4).unwrap().tick, 4);
        assert!(dbg.goto(99).is_none());
        assert_eq!(dbg.current().tick, 4, "failed goto leaves cursor");
    }

    #[test]
    fn forward_breakpoint_on_state() {
        let mut dbg = record(&[10, 20, 30]);
        // Break when the accumulator first exceeds 25 (after 10+20).
        let hit = dbg
            .run_until(|r| r.state[0][0][0] > 25)
            .expect("breakpoint fires");
        assert_eq!(hit, 1, "10+20 lands after tick 1");
        assert_eq!(dbg.state_at_cursor(0, 0, 0), Some(30));
    }

    #[test]
    fn backward_breakpoint_rewinds() {
        let mut dbg = record(&[10, 20, 30]);
        dbg.goto(4);
        // Rewind to the last tick where the accumulator was still ≤ 10.
        let hit = dbg.rewind_until(|r| r.state[0][0][0] <= 10).unwrap();
        assert_eq!(hit, 0);
        assert_eq!(dbg.state_at_cursor(0, 0, 0), Some(10));
    }

    #[test]
    fn state_change_log() {
        let dbg = record(&[10, 0, 5]);
        // Changes: 0->10 at tick 0, 10 (no change at tick 1), ->15 at 2.
        let changes = dbg.state_changes(0, 0, 0);
        assert_eq!(changes, vec![(0, 0, 10), (2, 10, 15)]);
    }

    #[test]
    fn origin_of_output_locates_culprit_write() {
        let dbg = record(&[10, 20, 30]);
        // Output PHV #2 (the one carrying old-state 30) was emitted at
        // tick 3; the last state change at or before it is the packet's
        // own write, 30 -> 60 at tick 2.
        let (tick, old, new) = dbg.origin_of_output(2, 0, 0, 0).unwrap();
        assert_eq!(tick, 2);
        assert_eq!((old, new), (30, 60));
    }

    #[test]
    fn breakpoint_on_emitted_container() {
        let mut dbg = record(&[3, 4, 5]);
        // Break on the first emitted PHV whose container 1 (old state)
        // is nonzero.
        let hit = dbg
            .run_until(|r| r.emitted.as_ref().is_some_and(|p| p.get(1) > 0))
            .unwrap();
        assert_eq!(hit, 2, "second packet carries old state 3");
    }
}
