//! Differential lane-vs-scalar properties for the SoA lane engine
//! (`dgen::lanes`): for any in-domain machine code and any PHV batch,
//! [`Pipeline::process_batch_lanes`] must be *bit-identical* to the scalar
//! fused [`Pipeline::process_batch`] — outputs, threaded state, coverage
//! bytes, and (under injected faults) the divergence a differential oracle
//! reports. Partial final batches and the empty/single-PHV edge cases are
//! pinned explicitly.

use proptest::prelude::*;

use druzhba::alu_dsl::atoms::atom;
use druzhba::alu_dsl::HoleDomain;
use druzhba::core::{MachineCode, Phv, PipelineConfig, Trace};
use druzhba::dgen::{expected_machine_code, OptLevel, Pipeline, PipelineSpec};
use druzhba::dsim::fault::FaultInjector;

/// The widths the differential harness sweeps (the engine also supports
/// 16; {1, 8, 32, 64} covers the degenerate, narrow, and widest shapes).
const WIDTHS: [usize; 4] = [1, 8, 32, 64];

fn spec_for(stateful: &str, stateless: &str, depth: usize, width: usize) -> PipelineSpec {
    PipelineSpec::new(
        PipelineConfig::new(depth, width),
        atom(stateful).unwrap(),
        atom(stateless).unwrap(),
    )
    .unwrap()
}

/// Strategy: an arbitrary in-domain machine code for the spec.
fn machine_code_strategy(spec: &PipelineSpec) -> impl Strategy<Value = MachineCode> {
    let expected = expected_machine_code(spec);
    let fields: Vec<(String, u32)> = expected
        .into_iter()
        .map(|(name, domain)| {
            let bound = match domain {
                HoleDomain::Choice(n) => n,
                HoleDomain::Bits(b) => 1u32 << b.min(8),
            };
            (name, bound)
        })
        .collect();
    let values: Vec<BoxedStrategy<u32>> = fields
        .iter()
        .map(|(_, bound)| (0..*bound).boxed())
        .collect();
    let names: Vec<String> = fields.into_iter().map(|(n, _)| n).collect();
    values.prop_map(move |vs| MachineCode::from_pairs(names.iter().cloned().zip(vs)))
}

/// The vendored proptest only generates fixed-length vecs; batch-size
/// variation (partial final chunks, empty batches) comes from pairing the
/// full-size stream with a random truncation length.
fn phv_stream(len: usize, count: usize) -> impl Strategy<Value = Vec<Phv>> {
    proptest::collection::vec(
        proptest::collection::vec(0u32..1024, len).prop_map(Phv::new),
        count,
    )
}

/// Run a batch through the scalar fused path and return everything a
/// differential check can observe: outputs, final state, coverage bytes.
fn scalar_run(
    spec: &PipelineSpec,
    mc: &MachineCode,
    batch: &[Phv],
) -> (Vec<Phv>, Vec<Vec<Vec<u32>>>, Vec<u8>) {
    let mut p = Pipeline::generate(spec, mc, OptLevel::Fused).unwrap();
    p.enable_coverage();
    let mut out = batch.to_vec();
    p.process_batch(&mut out);
    let cov = p.coverage().unwrap().as_bytes().to_vec();
    (out, p.state_snapshot(), cov)
}

/// Same observation through the lane engine at `width`.
fn lane_run(
    spec: &PipelineSpec,
    mc: &MachineCode,
    batch: &[Phv],
    width: usize,
) -> (Vec<Phv>, Vec<Vec<Vec<u32>>>, Vec<u8>) {
    let mut p = Pipeline::generate(spec, mc, OptLevel::Fused).unwrap();
    p.enable_coverage();
    let mut out = batch.to_vec();
    p.process_batch_lanes(&mut out, width);
    let cov = p.coverage().unwrap().as_bytes().to_vec();
    (out, p.state_snapshot(), cov)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any machine code, any batch (including sizes that leave a partial
    /// final chunk at every width): outputs, the cross-PHV state chain,
    /// and coverage bytes are identical at every lane width.
    #[test]
    fn lane_batches_bit_identical_to_scalar_fused(
        mc in machine_code_strategy(&spec_for("if_else_raw", "stateless_full", 2, 2)),
        batch in phv_stream(2, 70),
        size in 0usize..71,
    ) {
        let spec = spec_for("if_else_raw", "stateless_full", 2, 2);
        let batch = &batch[..size];
        let scalar = scalar_run(&spec, &mc, batch);
        for width in WIDTHS {
            let lane = lane_run(&spec, &mc, batch, width);
            prop_assert_eq!(&lane.0, &scalar.0);
            prop_assert_eq!(&lane.1, &scalar.1);
            prop_assert_eq!(&lane.2, &scalar.2);
        }
    }

    /// Same property over a stateful two-variable atom on a deeper grid —
    /// the shape that exercises serial (state-chained) regions hardest.
    #[test]
    fn lane_batches_bit_identical_for_pair_atom(
        mc in machine_code_strategy(&spec_for("pair", "stateless_arith", 3, 1)),
        batch in phv_stream(1, 40),
        size in 1usize..41,
    ) {
        let spec = spec_for("pair", "stateless_arith", 3, 1);
        let batch = &batch[..size];
        let scalar = scalar_run(&spec, &mc, batch);
        for width in WIDTHS {
            let lane = lane_run(&spec, &mc, batch, width);
            prop_assert_eq!(&lane.0, &scalar.0);
            prop_assert_eq!(&lane.1, &scalar.1);
            prop_assert_eq!(&lane.2, &scalar.2);
        }
    }

    /// Divergence-detection parity under injected faults: a differential
    /// oracle that swaps the scalar fused backend for the lane engine
    /// reports exactly the same first mismatch against the specification,
    /// at every width. (The accumulator's correct behaviour is computed
    /// inline; the fault injector corrupts the machine code.)
    #[test]
    fn fault_divergences_detected_identically(
        fault_seed in 0u64..10_000,
        batch in phv_stream(2, 50),
        size in 1usize..51,
    ) {
        let spec = PipelineSpec::new(
            PipelineConfig::with_phv_length(1, 1, 2),
            atom("raw").unwrap(),
            atom("stateless_mux").unwrap(),
        )
        .unwrap();
        let mut mc = MachineCode::from_pairs(
            expected_machine_code(&spec).into_iter().map(|(n, _)| (n, 0)),
        );
        mc.set("output_mux_phv_0_1", 2);
        let Some((bad, _fault)) = FaultInjector::new(fault_seed).mutate_random_value(&spec, &mc)
        else {
            return Ok(());
        };
        // The specification: state += container 0, old state -> container 1.
        let batch = &batch[..size];
        let mut state = 0u32;
        let expected: Vec<Phv> = batch
            .iter()
            .map(|p| {
                let old = state;
                state = state.wrapping_add(p.get(0));
                Phv::new(vec![p.get(0), old])
            })
            .collect();
        let expected = Trace::from_phvs(expected);
        let scalar = scalar_run(&spec, &bad, batch);
        let scalar_verdict = expected.first_mismatch(&Trace::from_phvs(scalar.0.clone()), None);
        for width in WIDTHS {
            let lane = lane_run(&spec, &bad, batch, width);
            prop_assert_eq!(&lane.0, &scalar.0);
            prop_assert_eq!(&lane.1, &scalar.1);
            let lane_verdict = expected.first_mismatch(&Trace::from_phvs(lane.0), None);
            prop_assert_eq!(&lane_verdict, &scalar_verdict);
        }
    }
}

/// Empty batches and single-PHV batches run through the lane engine
/// without touching uninitialized lanes: state, outputs, and coverage
/// match scalar exactly, including when the engine's caches are warm from
/// a prior full-width batch.
#[test]
fn empty_and_single_phv_batches_are_exact() {
    let spec = spec_for("pred_raw", "stateless_full", 2, 1);
    let mc = MachineCode::from_pairs(
        expected_machine_code(&spec)
            .into_iter()
            .map(|(n, _)| (n, 0)),
    );
    let phv_len = spec.config.phv_length;
    let warm: Vec<Phv> = (0..64)
        .map(|i| Phv::new((0..phv_len).map(|c| (i * 7 + c as u32 * 3) % 100).collect()))
        .collect();
    let single = vec![Phv::new((0..phv_len).map(|c| 41 + c as u32).collect())];

    let mut scalar = Pipeline::generate(&spec, &mc, OptLevel::Fused).unwrap();
    scalar.enable_coverage();
    let mut lanes = Pipeline::generate(&spec, &mc, OptLevel::Fused).unwrap();
    lanes.enable_coverage();

    // Warm both engines with a full-width batch (poisons lane scratch),
    // then push a single-PHV batch and an empty batch through each.
    let (mut a, mut b) = (warm.clone(), warm);
    scalar.process_batch(&mut a);
    lanes.process_batch_lanes(&mut b, 64);
    assert_eq!(a, b, "warm batch");

    let (mut a, mut b) = (single.clone(), single);
    scalar.process_batch(&mut a);
    lanes.process_batch_lanes(&mut b, 64);
    assert_eq!(a, b, "single-PHV batch");
    assert_eq!(
        scalar.state_snapshot(),
        lanes.state_snapshot(),
        "state after single"
    );

    let mut empty: Vec<Phv> = Vec::new();
    lanes.process_batch_lanes(&mut empty, 64);
    assert!(empty.is_empty());
    assert_eq!(
        scalar.state_snapshot(),
        lanes.state_snapshot(),
        "state after empty"
    );
    assert_eq!(
        scalar.coverage().unwrap().as_bytes(),
        lanes.coverage().unwrap().as_bytes(),
        "coverage after warm + single + empty"
    );
}

/// Unsupported widths and non-fused levels fall back to the scalar batch
/// path instead of panicking or corrupting the run.
#[test]
fn unsupported_width_and_level_fall_back_to_scalar() {
    let spec = spec_for("raw", "stateless_mux", 1, 1);
    let mc = MachineCode::from_pairs(
        expected_machine_code(&spec)
            .into_iter()
            .map(|(n, _)| (n, 0)),
    );
    let phv_len = spec.config.phv_length;
    let batch: Vec<Phv> = (0..9u32)
        .map(|i| Phv::new((0..phv_len as u32).map(|c| i * 2 + c).collect()))
        .collect();
    for (opt, width) in [
        (OptLevel::Fused, 7),     // unsupported width
        (OptLevel::SccInline, 8), // no fused program to lower
    ] {
        let mut reference = Pipeline::generate(&spec, &mc, opt).unwrap();
        let mut fallback = Pipeline::generate(&spec, &mc, opt).unwrap();
        let (mut a, mut b) = (batch.clone(), batch.clone());
        reference.process_batch(&mut a);
        fallback.process_batch_lanes(&mut b, width);
        assert_eq!(a, b, "{opt:?} width {width}");
        assert_eq!(reference.state_snapshot(), fallback.state_snapshot());
    }
}
