//! Property test: randomly generated ALU specifications survive an
//! unparse/parse round trip exactly, and their hole lists stay consistent.

use druzhba_alu_dsl::ast::{AluSpec, BinOp, Expr, HoleDecl, HoleDomain, Stmt, UnOp};
use druzhba_alu_dsl::{parse_alu, unparse, AluKind};
use proptest::prelude::*;

/// Hole-name bookkeeping mirroring the parser's per-construct counters.
#[derive(Default, Clone, Debug)]
struct Counters {
    mux2: usize,
    mux3: usize,
    opt: usize,
    rel_op: usize,
    arith_op: usize,
    konst: usize,
    holes: Vec<HoleDecl>,
}

impl Counters {
    fn fresh(&mut self, prefix: &str, domain: HoleDomain) -> String {
        let c = match prefix {
            "mux2" => &mut self.mux2,
            "mux3" => &mut self.mux3,
            "opt" => &mut self.opt,
            "rel_op" => &mut self.rel_op,
            "arith_op" => &mut self.arith_op,
            _ => &mut self.konst,
        };
        let name = format!("{prefix}_{}", *c);
        *c += 1;
        self.holes.push(HoleDecl {
            local: name.clone(),
            domain,
        });
        name
    }
}

/// Shape of a random expression; hole names are assigned afterwards in
/// pre-order so they match what the parser would produce.
#[derive(Debug, Clone)]
enum Shape {
    Const(u32),
    Pkt(u8),
    State,
    CConst,
    Opt(Box<Shape>),
    Mux2(Box<Shape>, Box<Shape>),
    Mux3(Box<Shape>, Box<Shape>, Box<Shape>),
    RelOp(Box<Shape>, Box<Shape>),
    ArithOp(Box<Shape>, Box<Shape>),
    Bin(u8, Box<Shape>, Box<Shape>),
    Un(bool, Box<Shape>),
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    let leaf = prop_oneof![
        (0u32..100).prop_map(Shape::Const),
        (0u8..2).prop_map(Shape::Pkt),
        Just(Shape::State),
        Just(Shape::CConst),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|x| Shape::Opt(Box::new(x))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Shape::Mux2(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| Shape::Mux3(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Shape::RelOp(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Shape::ArithOp(Box::new(a), Box::new(b))),
            (0u8..13, inner.clone(), inner.clone()).prop_map(|(op, a, b)| Shape::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (any::<bool>(), inner).prop_map(|(neg, x)| Shape::Un(neg, Box::new(x))),
        ]
    })
}

fn binop(i: u8) -> BinOp {
    use BinOp::*;
    [Add, Sub, Mul, Div, Mod, Eq, Ne, Lt, Gt, Le, Ge, And, Or][i as usize % 13]
}

fn build(shape: &Shape, c: &mut Counters) -> Expr {
    match shape {
        Shape::Const(v) => Expr::Const(*v),
        Shape::Pkt(i) => Expr::Var(format!("pkt_{}", i % 2)),
        Shape::State => Expr::Var("state_0".into()),
        Shape::CConst => Expr::CConst {
            hole: c.fresh("const", HoleDomain::Bits(32)),
        },
        Shape::Opt(x) => {
            let hole = c.fresh("opt", HoleDomain::Choice(2));
            Expr::Opt {
                hole,
                arg: Box::new(build(x, c)),
            }
        }
        Shape::Mux2(a, b) => {
            let hole = c.fresh("mux2", HoleDomain::Choice(2));
            Expr::Mux2 {
                hole,
                a: Box::new(build(a, c)),
                b: Box::new(build(b, c)),
            }
        }
        Shape::Mux3(a, b, x) => {
            let hole = c.fresh("mux3", HoleDomain::Choice(3));
            Expr::Mux3 {
                hole,
                a: Box::new(build(a, c)),
                b: Box::new(build(b, c)),
                c: Box::new(build(x, c)),
            }
        }
        Shape::RelOp(a, b) => {
            let hole = c.fresh("rel_op", HoleDomain::Choice(4));
            Expr::RelOp {
                hole,
                a: Box::new(build(a, c)),
                b: Box::new(build(b, c)),
            }
        }
        Shape::ArithOp(a, b) => {
            let hole = c.fresh("arith_op", HoleDomain::Choice(2));
            Expr::ArithOp {
                hole,
                a: Box::new(build(a, c)),
                b: Box::new(build(b, c)),
            }
        }
        Shape::Bin(op, a, b) => Expr::Binary {
            op: binop(*op),
            l: Box::new(build(a, c)),
            r: Box::new(build(b, c)),
        },
        Shape::Un(neg, x) => Expr::Unary {
            op: if *neg { UnOp::Neg } else { UnOp::Not },
            x: Box::new(build(x, c)),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generated stateful spec unparses to source that parses back to
    /// the *identical* AST and hole list.
    #[test]
    fn random_specs_round_trip(guard in shape_strategy(), update in shape_strategy()) {
        let mut counters = Counters::default();
        let cond = build(&guard, &mut counters);
        let rhs = build(&update, &mut counters);
        let spec = AluSpec {
            name: "generated".into(),
            kind: AluKind::Stateful,
            state_vars: vec!["state_0".into()],
            hole_vars: vec![],
            packet_fields: vec!["pkt_0".into(), "pkt_1".into()],
            body: vec![Stmt::If {
                arms: vec![(
                    cond,
                    vec![Stmt::Assign {
                        target: "state_0".into(),
                        value: rhs,
                    }],
                )],
                else_body: vec![],
            }],
            holes: counters.holes.clone(),
        };
        let text = unparse(&spec);
        let back = parse_alu(&text)
            .unwrap_or_else(|e| panic!("generated spec failed to parse: {e}\n{text}"));
        prop_assert_eq!(back, spec);
    }
}
