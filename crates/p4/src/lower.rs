//! RMT lowering: place a resolved P4 program onto the feed-forward
//! match-action pipeline model.
//!
//! Two placement decisions turn an [`Hlir`] into something the simulated
//! RMT pipeline can execute:
//!
//! 1. **Field layout** ([`FieldLayout`]): every packet field (header and
//!    metadata, in declaration order) gets one PHV container, plus one
//!    trailing container carrying the drop flag — so a packet *is* a
//!    [`Phv`] and the whole dsim trace/differential
//!    machinery applies unchanged.
//! 2. **Stage assignment** ([`lower`]): tables are placed into pipeline
//!    stages from the dependency DAG ([`crate::deps`]). A *match* or
//!    *action* dependency forces the later table into a strictly later
//!    stage (its match reads the stage-entry snapshot, which cannot see a
//!    same-stage write); a *successor* dependency may share a stage
//!    (guards are static in this model, so predication is free). Stage
//!    capacity is bounded by [`RmtConfig::tables_per_stage`]; tables that
//!    do not fit spill to the next stage, and programs that exceed
//!    [`RmtConfig::max_stages`] are rejected — the P4 analog of "machine
//!    code incompatible with the pipeline".
//!
//! The stage-snapshot execution discipline (matches read stage-entry
//! values, actions apply in control order) is implemented by dgen's `mat`
//! backends; DESIGN.md §8 documents the full semantics.

use druzhba_core::{Error, Phv, Result, Value};

use crate::ast::FieldRef;
use crate::deps::{build_dag, DependencyKind};
use crate::exec::Packet;
use crate::hlir::Hlir;

/// Capacity of the simulated RMT match-action pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RmtConfig {
    /// Maximum pipeline depth (stages).
    pub max_stages: usize,
    /// Maximum tables placed in one stage.
    pub tables_per_stage: usize,
}

impl Default for RmtConfig {
    fn default() -> Self {
        // RMT-paper proportions: 32 physical stages; the per-stage table
        // budget is a scaled-down crossbar/TCAM capacity.
        RmtConfig {
            max_stages: 32,
            tables_per_stage: 8,
        }
    }
}

/// The field-to-container layout: container `i` holds field `i` in
/// declaration order, and one extra trailing container holds the drop
/// flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldLayout {
    fields: Vec<(FieldRef, u32)>,
}

impl FieldLayout {
    /// The layout of a resolved program.
    pub fn new(hlir: &Hlir) -> Self {
        FieldLayout {
            fields: hlir.fields.clone(),
        }
    }

    /// All laid-out fields with widths, in container order.
    pub fn fields(&self) -> &[(FieldRef, u32)] {
        &self.fields
    }

    /// PHV length: one container per field plus the drop flag.
    pub fn phv_length(&self) -> usize {
        self.fields.len() + 1
    }

    /// Container index of a field.
    pub fn container(&self, f: &FieldRef) -> Option<usize> {
        self.fields.iter().position(|(g, _)| g == f)
    }

    /// The drop-flag container index (the last container).
    pub fn drop_flag(&self) -> usize {
        self.fields.len()
    }

    /// Render a packet as a PHV under this layout.
    pub fn packet_to_phv(&self, packet: &Packet) -> Phv {
        let mut values: Vec<Value> = self.fields.iter().map(|(f, _)| packet.get(f)).collect();
        values.push(Value::from(packet.dropped));
        Phv::new(values)
    }

    /// Rebuild a packet from a PHV under this layout.
    ///
    /// # Panics
    /// Panics if the PHV is shorter than the layout.
    pub fn phv_to_packet(&self, id: u64, phv: &Phv) -> Packet {
        let mut packet = Packet::from_fields(
            id,
            self.fields
                .iter()
                .enumerate()
                .map(|(i, (f, _))| (f.clone(), phv.get(i)))
                .collect(),
        );
        packet.dropped = phv.get(self.drop_flag()) != 0;
        packet
    }
}

/// A lowered program: the container layout plus the table-to-stage
/// placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RmtLowering {
    /// Field-to-container layout.
    pub layout: FieldLayout,
    /// `stage_of[t]` — pipeline stage of applied table `t`.
    pub stage_of: Vec<usize>,
    /// `stages[s]` — applied-table indices placed in stage `s`, in control
    /// order.
    pub stages: Vec<Vec<usize>>,
}

impl RmtLowering {
    /// Pipeline depth (number of occupied stages).
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }
}

/// Lower a resolved program onto the RMT pipeline model (see the module
/// docs for the placement rules).
pub fn lower(hlir: &Hlir, cfg: &RmtConfig) -> Result<RmtLowering> {
    let dag = build_dag(hlir);
    let n = hlir.tables.len();
    if n > 0 && cfg.tables_per_stage == 0 {
        return Err(Error::Other {
            message: "tables_per_stage must be at least 1".into(),
        });
    }
    let mut stage_of = vec![0usize; n];
    let mut occupancy: Vec<usize> = Vec::new();
    for t in 0..n {
        // Earliest stage permitted by the dependency DAG.
        let mut min_stage = 0;
        for e in dag.predecessors(t) {
            let required = match e.kind {
                DependencyKind::Match | DependencyKind::Action => stage_of[e.from] + 1,
                DependencyKind::Successor => stage_of[e.from],
            };
            min_stage = min_stage.max(required);
        }
        // First stage at or after min_stage with table capacity left
        // (bounded: max_stages is re-checked below, and each occupied
        // stage holds at least one table).
        let mut stage = min_stage;
        while stage < cfg.max_stages
            && occupancy.get(stage).copied().unwrap_or(0) >= cfg.tables_per_stage
        {
            stage += 1;
        }
        if stage >= cfg.max_stages {
            return Err(Error::Other {
                message: format!(
                    "table `{}` needs stage {stage} but the pipeline has only {} stage(s)",
                    hlir.tables[t].name, cfg.max_stages
                ),
            });
        }
        if occupancy.len() <= stage {
            occupancy.resize(stage + 1, 0);
        }
        occupancy[stage] += 1;
        stage_of[t] = stage;
    }
    let num_stages = occupancy.len();
    let mut stages: Vec<Vec<usize>> = vec![Vec::new(); num_stages];
    for (t, &s) in stage_of.iter().enumerate() {
        stages[s].push(t);
    }
    Ok(RmtLowering {
        layout: FieldLayout::new(hlir),
        stage_of,
        stages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_p4;

    const PRELUDE: &str = "header_type h_t { fields { a : 32; b : 32; c : 32; } }\n\
                           header h_t pkt;\nmetadata h_t meta;\n\
                           parser start { extract(pkt); return ingress; }\n";

    #[test]
    fn layout_assigns_containers_in_declaration_order() {
        let src = format!(
            "{PRELUDE}\
             action n() {{ no_op(); }}\n\
             table t {{ reads {{ pkt.a : exact; }} actions {{ n; }} }}\n\
             control ingress {{ apply(t); }}"
        );
        let hlir = parse_p4(&src).unwrap();
        let layout = FieldLayout::new(&hlir);
        assert_eq!(layout.phv_length(), 7, "6 fields + drop flag");
        assert_eq!(
            layout.container(&FieldRef {
                header: "meta".into(),
                field: "b".into()
            }),
            Some(4)
        );
        assert_eq!(layout.drop_flag(), 6);
    }

    #[test]
    fn packet_phv_roundtrip() {
        let src = format!(
            "{PRELUDE}\
             action n() {{ no_op(); }}\n\
             table t {{ reads {{ pkt.a : exact; }} actions {{ n; }} }}\n\
             control ingress {{ apply(t); }}"
        );
        let hlir = parse_p4(&src).unwrap();
        let layout = FieldLayout::new(&hlir);
        let mut packet = Packet::new(7, [(("pkt", "a"), 11), (("meta", "c"), 22)]);
        packet.dropped = true;
        let phv = layout.packet_to_phv(&packet);
        assert_eq!(phv.get(0), 11);
        assert_eq!(phv.get(5), 22);
        assert_eq!(phv.get(6), 1);
        let back = layout.phv_to_packet(7, &phv);
        assert_eq!(back.get_named("pkt", "a"), 11);
        assert_eq!(back.get_named("meta", "c"), 22);
        assert!(back.dropped);
    }

    #[test]
    fn match_dependency_forces_later_stage() {
        let src = format!(
            "{PRELUDE}\
             action w() {{ modify_field(meta.a, 1); }}\n\
             action n() {{ no_op(); }}\n\
             table t1 {{ reads {{ pkt.a : exact; }} actions {{ w; }} }}\n\
             table t2 {{ reads {{ meta.a : exact; }} actions {{ n; }} }}\n\
             control ingress {{ apply(t1); apply(t2); }}"
        );
        let lowering = lower(&parse_p4(&src).unwrap(), &RmtConfig::default()).unwrap();
        assert_eq!(lowering.stage_of, vec![0, 1]);
        assert_eq!(lowering.num_stages(), 2);
    }

    #[test]
    fn independent_tables_share_a_stage() {
        let src = format!(
            "{PRELUDE}\
             action n() {{ no_op(); }}\n\
             action m() {{ modify_field(meta.b, 2); }}\n\
             table t1 {{ reads {{ pkt.a : exact; }} actions {{ n; }} }}\n\
             table t2 {{ reads {{ pkt.b : exact; }} actions {{ m; }} }}\n\
             control ingress {{ apply(t1); apply(t2); }}"
        );
        let lowering = lower(&parse_p4(&src).unwrap(), &RmtConfig::default()).unwrap();
        assert_eq!(lowering.stage_of, vec![0, 0]);
        assert_eq!(lowering.stages, vec![vec![0, 1]]);
    }

    #[test]
    fn successor_dependency_may_share_a_stage() {
        let src = format!(
            "{PRELUDE}\
             action n() {{ no_op(); }}\n\
             table t1 {{ reads {{ pkt.a : exact; }} actions {{ n; }} }}\n\
             table t2 {{ reads {{ pkt.b : exact; }} actions {{ n; }} }}\n\
             control ingress {{ apply(t1); if (valid(pkt)) {{ apply(t2); }} }}"
        );
        let lowering = lower(&parse_p4(&src).unwrap(), &RmtConfig::default()).unwrap();
        assert_eq!(lowering.stage_of, vec![0, 0]);
    }

    #[test]
    fn capacity_spills_to_the_next_stage() {
        let src = format!(
            "{PRELUDE}\
             action n() {{ no_op(); }}\n\
             table t1 {{ reads {{ pkt.a : exact; }} actions {{ n; }} }}\n\
             table t2 {{ reads {{ pkt.b : exact; }} actions {{ n; }} }}\n\
             table t3 {{ reads {{ pkt.c : exact; }} actions {{ n; }} }}\n\
             control ingress {{ apply(t1); apply(t2); apply(t3); }}"
        );
        let cfg = RmtConfig {
            max_stages: 4,
            tables_per_stage: 2,
        };
        let lowering = lower(&parse_p4(&src).unwrap(), &cfg).unwrap();
        assert_eq!(lowering.stage_of, vec![0, 0, 1]);
    }

    #[test]
    fn over_deep_program_rejected() {
        let src = format!(
            "{PRELUDE}\
             action w1() {{ modify_field(meta.a, 1); }}\n\
             action w2() {{ modify_field(meta.b, meta.a); }}\n\
             action n() {{ modify_field(meta.c, meta.b); }}\n\
             table t1 {{ reads {{ pkt.a : exact; }} actions {{ w1; }} }}\n\
             table t2 {{ reads {{ meta.a : exact; }} actions {{ w2; }} }}\n\
             table t3 {{ reads {{ meta.b : exact; }} actions {{ n; }} }}\n\
             control ingress {{ apply(t1); apply(t2); apply(t3); }}"
        );
        let cfg = RmtConfig {
            max_stages: 2,
            tables_per_stage: 8,
        };
        assert!(lower(&parse_p4(&src).unwrap(), &cfg).is_err());
    }

    #[test]
    fn zero_table_capacity_rejected_not_looped() {
        let src = format!(
            "{PRELUDE}\
             action n() {{ no_op(); }}\n\
             table t {{ reads {{ pkt.a : exact; }} actions {{ n; }} }}\n\
             control ingress {{ apply(t); }}"
        );
        let cfg = RmtConfig {
            max_stages: 32,
            tables_per_stage: 0,
        };
        assert!(lower(&parse_p4(&src).unwrap(), &cfg).is_err());
    }
}
