//! Fault-injection integration: the testing framework must *detect* bad
//! machine code — a tester that never fires is worse than none. This
//! reproduces the paper's §5.2 failure taxonomy systematically.

use druzhba::dgen::OptLevel;
use druzhba::dsim::fault::FaultInjector;
use druzhba::dsim::testing::{fuzz_test, Verdict};
use druzhba::programs::PROGRAMS;

/// Class 1a: removing any machine-code pair is always detected as an
/// incompatibility (the paper's "missing machine code pairs").
#[test]
fn removed_pairs_always_detected() {
    for def in PROGRAMS.iter().take(4) {
        let compiled = def.compile_cached().unwrap();
        let mut injector = FaultInjector::new(0xFA);
        for _ in 0..10 {
            let (bad, fault) = injector.remove_random_pair(&compiled.machine_code);
            let mut spec = def.interpreter_spec(&compiled);
            let report = fuzz_test(
                &compiled.pipeline_spec,
                &bad,
                OptLevel::SccInline,
                &mut spec,
                &def.fuzz_config(&compiled, 50),
            );
            assert!(
                matches!(report.verdict, Verdict::Incompatible(_)),
                "{}: {fault:?} not detected",
                def.name
            );
        }
    }
}

/// Class 1b: out-of-domain values are always detected at generation time.
#[test]
fn out_of_range_values_always_detected() {
    for def in PROGRAMS.iter().take(4) {
        let compiled = def.compile_cached().unwrap();
        let mut injector = FaultInjector::new(0xFB);
        for _ in 0..10 {
            let (bad, fault) = injector
                .out_of_range_value(&compiled.pipeline_spec, &compiled.machine_code)
                .unwrap();
            let mut spec = def.interpreter_spec(&compiled);
            let report = fuzz_test(
                &compiled.pipeline_spec,
                &bad,
                OptLevel::Scc,
                &mut spec,
                &def.fuzz_config(&compiled, 50),
            );
            assert!(
                matches!(report.verdict, Verdict::Incompatible(_)),
                "{}: {fault:?} not detected",
                def.name
            );
        }
    }
}

/// Class 2: in-domain value mutations. Most of the grid's machine code is
/// dead (unused ALUs, dead branches of opcode-dispatched ALUs), so the
/// campaign targets *programmed* pairs (nonzero values, which the compiler
/// only emits for live primitives); a healthy majority of those must be
/// caught as trace mismatches.
#[test]
fn value_mutation_campaign_detection_rate() {
    let mut detected = 0usize;
    let mut total = 0usize;
    for def in &PROGRAMS {
        let compiled = def.compile_cached().unwrap();
        let live: Vec<(String, u32)> = compiled
            .machine_code
            .iter()
            .filter(|(_, v)| *v != 0)
            .map(|(n, v)| (n.to_string(), v))
            .collect();
        for (name, v) in live.into_iter().take(6) {
            // v - 1 stays in-domain (domains are contiguous from 0).
            let mut bad = compiled.machine_code.clone();
            bad.set(name.clone(), v - 1);
            total += 1;
            let mut spec = def.interpreter_spec(&compiled);
            let report = fuzz_test(
                &compiled.pipeline_spec,
                &bad,
                OptLevel::SccInline,
                &mut spec,
                &def.fuzz_config(&compiled, 1_000),
            );
            match report.verdict {
                Verdict::Mismatch(_) => detected += 1,
                Verdict::Pass => {} // semantically neutral encoding change
                Verdict::Incompatible(e) => panic!("in-domain mutation rejected: {e}"),
                Verdict::BackendPanic { payload } => {
                    panic!("in-domain mutation panicked a backend: {payload}")
                }
            }
        }
    }
    assert!(total >= 40, "campaign too small: {total}");
    assert!(
        detected * 2 >= total,
        "detection rate too low: {detected}/{total}"
    );
}

/// Mutating a pair the program actually uses (an output mux routing an
/// *observable* container) is always caught.
#[test]
fn observable_output_mux_mutations_detected() {
    for def in &PROGRAMS {
        let compiled = def.compile_cached().unwrap();
        // Pick the output mux that routes an observable container (skip
        // programs whose only outputs are state cells).
        let observable = compiled.observable_containers();
        let Some((name, v)) = compiled
            .machine_code
            .iter()
            .find(|(n, v)| {
                *v != 0
                    && n.starts_with("output_mux_phv_")
                    && n.rsplit('_')
                        .next()
                        .and_then(|c| c.parse::<usize>().ok())
                        .is_some_and(|c| observable.contains(&c))
            })
            .map(|(n, v)| (n.to_string(), v))
        else {
            continue;
        };
        let mut bad = compiled.machine_code.clone();
        bad.set(name.clone(), v - 1);
        let mut spec = def.interpreter_spec(&compiled);
        let report = fuzz_test(
            &compiled.pipeline_spec,
            &bad,
            OptLevel::SccInline,
            &mut spec,
            &def.fuzz_config(&compiled, 2_000),
        );
        assert!(
            matches!(report.verdict, Verdict::Mismatch(_)),
            "{}: rerouting `{name}` {v} -> {} was not detected",
            def.name,
            v - 1
        );
    }
}
