//! End-to-end tests of the coverage-guided greybox campaigns on both
//! differential stacks: detection of injected faults, determinism under a
//! fixed `(seed, workers)` pair, and the CLI surface (`fuzz --greybox`,
//! `p4-fuzz --greybox`).

use std::process::{Command, Output};

use druzhba::dgen::OptLevel;
use druzhba::dsim::coverage::{greybox_fuzz_test, p4_greybox_fuzz_test, GreyboxConfig};
use druzhba::dsim::fault::{FaultInjector, FaultKind};
use druzhba::dsim::p4::{apply_fault, P4FaultInjector, P4FaultKind};
use druzhba::dsim::testing::Verdict;
use druzhba::programs::{by_name, p4_by_name};

fn druzhba(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_druzhba"))
        .args(args)
        .output()
        .expect("spawn druzhba binary")
}

fn small_cfg() -> GreyboxConfig {
    GreyboxConfig {
        executions: 200,
        packets: 12,
        workers: 2,
        merge_every: 32,
        ..GreyboxConfig::default()
    }
}

#[test]
fn greybox_detects_injected_machine_code_faults_on_a_corpus_program() {
    let def = by_name("sampling").expect("corpus program");
    let comp = def.compile_cached().expect("compiles");
    let mut injector = FaultInjector::new(7);
    for kind in FaultKind::ALL {
        let (mc, fault) = injector
            .inject(&comp.pipeline_spec, &comp.machine_code, kind)
            .expect("injectable");
        let report = greybox_fuzz_test(
            &comp.pipeline_spec,
            &mc,
            OptLevel::Fused,
            || def.interpreter_spec(&comp),
            Some(&comp.observable_containers()),
            &comp.state_cells,
            &small_cfg(),
        );
        match kind {
            // Structural faults are rejected at pipeline generation:
            // the first execution must already diverge.
            FaultKind::RemovedPair | FaultKind::OutOfRangeValue => {
                assert!(
                    matches!(report.verdict, Verdict::Incompatible(_)),
                    "{fault:?}: {:?}",
                    report.verdict
                );
                assert_eq!(report.first_divergence, Some(1), "{fault:?}");
            }
            // A value mutation may be behaviorally neutral (an encoding
            // variant); when it is not, the campaign must both find it
            // and carry a minimized counterexample.
            FaultKind::MutatedValue => {
                if let Some(at) = report.first_divergence {
                    assert!(at <= report.executions);
                    assert!(report.diverging_input.is_some(), "{fault:?}");
                    assert!(report.minimized.is_some(), "{fault:?}");
                }
            }
            // The hostile trap panics pipeline generation on the first
            // execution; panic isolation must convert that into a
            // BackendPanic divergence (never an abort), with nothing to
            // minimize.
            FaultKind::HostileTrap => {
                assert!(
                    matches!(report.verdict, Verdict::BackendPanic { .. }),
                    "{fault:?}: {:?}",
                    report.verdict
                );
                assert_eq!(report.first_divergence, Some(1), "{fault:?}");
                assert!(report.minimized.is_none(), "{fault:?}");
            }
        }
    }
}

#[test]
fn greybox_detects_injected_table_faults_on_the_p4_corpus() {
    let def = p4_by_name("l2_forward").expect("corpus program");
    let workload = def.workload().expect("lowers");
    let mut injector = P4FaultInjector::new(11);
    let mut detected = 0;
    for kind in P4FaultKind::ALL {
        let (entries, fault) = injector
            .inject(&workload.entries, kind)
            .expect("injectable");
        let report = p4_greybox_fuzz_test(
            &workload,
            &entries,
            OptLevel::SccInline,
            false,
            &small_cfg(),
        );
        if let Some(at) = report.first_divergence {
            detected += 1;
            assert!(at <= report.executions, "{fault:?}");
            let mce = report.minimized.expect("minimized");
            // The fault replays from the report: apply it to the corpus
            // baseline and re-run the minimized input through the plain
            // case runner.
            let rebuilt = apply_fault(&workload.entries, &fault).expect("fault fits baseline");
            assert_eq!(rebuilt, entries, "{fault:?}");
            let v = druzhba::dsim::p4::run_p4_case(
                &workload,
                &rebuilt,
                OptLevel::SccInline,
                &mce.input,
            );
            assert_eq!(v.class(), mce.verdict.class(), "{fault:?}");
        }
    }
    assert!(detected >= 2, "only {detected} of 3 fault classes detected");
}

#[test]
fn greybox_reports_are_a_pure_function_of_seed_and_workers() {
    let def = p4_by_name("acl_ternary").expect("corpus program");
    let workload = def.workload().expect("lowers");
    let cfg = GreyboxConfig {
        executions: 150,
        packets: 8,
        workers: 3,
        merge_every: 16,
        ..GreyboxConfig::default()
    };
    let a = p4_greybox_fuzz_test(&workload, &workload.entries, OptLevel::Fused, true, &cfg);
    let b = p4_greybox_fuzz_test(&workload, &workload.entries, OptLevel::Fused, true, &cfg);
    assert_eq!(a, b, "same seed + same workers must reproduce exactly");
}

/// Lane-engine adoption: a lanes-enabled campaign is *byte-identical* to
/// the scalar one for a fixed `(seed, jobs)` — same coverage totals, same
/// corpus evolution, same first divergence — at every lane width. The
/// lane engine changes how the oracle executes, never what it observes.
#[test]
fn greybox_reports_identical_across_lane_widths() {
    let def = by_name("sampling").expect("corpus program");
    let comp = def.compile_cached().expect("compiles");
    let run = |lanes: usize| {
        greybox_fuzz_test(
            &comp.pipeline_spec,
            &comp.machine_code,
            OptLevel::Fused,
            || def.interpreter_spec(&comp),
            Some(&comp.observable_containers()),
            &comp.state_cells,
            &GreyboxConfig {
                lanes,
                ..small_cfg()
            },
        )
    };
    let scalar = run(0);
    for lanes in [1usize, 8, 32] {
        assert_eq!(run(lanes), scalar, "lane width {lanes}");
    }
}

#[test]
fn campaign_seed_actually_drives_input_generation() {
    // The engine must consume the campaign seed: different seeds must
    // bootstrap from different traffic and mutate along different
    // streams. Checked at the model level, where the difference is
    // deterministic (whole-report inequality between two clean campaigns
    // is not guaranteed — small programs can saturate identically).
    use druzhba::core::ValueGen;
    use druzhba::dsim::coverage::{AluTraceModel, InputModel};
    let model = AluTraceModel {
        phv_length: 3,
        input_bits: 10,
        max_packets: 16,
    };
    let a = model.seed_input(&mut ValueGen::new(1, 32), 8);
    let b = model.seed_input(&mut ValueGen::new(2, 32), 8);
    assert_ne!(
        a, b,
        "different seeds must yield different bootstrap inputs"
    );
    let mut ma = a.clone();
    let mut mb = a;
    model.mutate(&mut ValueGen::new(1, 32), &mut ma);
    model.mutate(&mut ValueGen::new(2, 32), &mut mb);
    assert_ne!(ma, mb, "different seeds must yield different mutations");
}

// ----------------------------------------------------------------------
// CLI surface.
// ----------------------------------------------------------------------

const SAMPLING: &str = "state int count = 0;\n\
                        if (count == 9) { count = 0; pkt.sample = 1; }\n\
                        else { count = count + 1; pkt.sample = 0; }\n";

fn write_sampling() -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("druzhba-greybox-{}.domino", std::process::id()));
    std::fs::write(&path, SAMPLING).expect("write temp domino file");
    path
}

#[test]
fn cli_fuzz_greybox_passes_on_correct_machine_code() {
    let file = write_sampling();
    let out = druzhba(&[
        "fuzz",
        file.to_str().unwrap(),
        "--depth",
        "2",
        "--width",
        "1",
        "--atom",
        "if_else_raw",
        "--greybox",
        "150",
        "--jobs",
        "2",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("greybox[fuzz:fused]"), "stdout: {stdout}");
    assert!(stdout.contains("edges covered"), "stdout: {stdout}");
    assert!(stdout.contains("no divergence"), "stdout: {stdout}");
}

/// The CLI face of lane adoption: `fuzz --greybox --lanes 32` succeeds
/// and prints exactly the campaign summary the scalar run prints.
#[test]
fn cli_fuzz_greybox_lanes_output_matches_scalar() {
    let file = write_sampling();
    let base = [
        "fuzz",
        file.to_str().unwrap(),
        "--depth",
        "2",
        "--width",
        "1",
        "--atom",
        "if_else_raw",
        "--greybox",
        "150",
        "--jobs",
        "2",
        "--seed",
        "0x5",
    ];
    let scalar = druzhba(&base);
    let mut lane_args = base.to_vec();
    lane_args.extend_from_slice(&["--lanes", "32"]);
    let lanes = druzhba(&lane_args);
    assert!(
        scalar.status.success() && lanes.status.success(),
        "stderr: {} / {}",
        String::from_utf8_lossy(&scalar.stderr),
        String::from_utf8_lossy(&lanes.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&scalar.stdout),
        String::from_utf8_lossy(&lanes.stdout),
        "lane-enabled campaign output must be byte-identical to scalar"
    );
}

#[test]
fn cli_fuzz_greybox_reports_divergence_with_replay_recipe() {
    let file = write_sampling();
    let out = druzhba(&[
        "fuzz",
        file.to_str().unwrap(),
        "--depth",
        "2",
        "--width",
        "1",
        "--atom",
        "if_else_raw",
        "--greybox",
        "300",
        "--jobs",
        "2",
        "--edit",
        "output_mux_phv_0_1=1",
    ]);
    assert!(!out.status.success(), "edited machine code must diverge");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--greybox 300"), "stderr: {err}");
    assert!(err.contains("--jobs 2"), "stderr: {err}");
    assert!(err.contains("--seed"), "stderr: {err}");
}

#[test]
fn cli_p4_fuzz_greybox_runs_a_corpus_program() {
    let out = druzhba(&[
        "p4-fuzz",
        "l2_forward",
        "--greybox",
        "120",
        "--jobs",
        "2",
        "--level",
        "3",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("greybox[l2_forward:fused]"), "{stdout}");
}

#[test]
fn cli_greybox_rejects_conflicting_mutants_mode() {
    let out = druzhba(&["p4-fuzz", "--greybox", "100", "--mutants", "1"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("separate campaign modes"), "stderr: {err}");
}

#[test]
fn hunt_json_carries_executions_to_detection() {
    let out = druzhba(&[
        "hunt",
        "--programs",
        "sampling",
        "--mutants",
        "1",
        "--phvs",
        "400",
        "--runs",
        "1",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"executions_to_detection\":"),
        "hunt JSON must surface executions-to-detection:\n{stdout}"
    );
}

#[test]
fn p4_mutants_json_carries_executions_to_detection() {
    let out = druzhba(&[
        "p4-fuzz",
        "l2_forward",
        "--mutants",
        "1",
        "--phvs",
        "400",
        "--runs",
        "1",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"executions_to_detection\":"),
        "p4-fuzz --mutants JSON must surface executions-to-detection:\n{stdout}"
    );
}

/// Cross-check the analyzer's unreachability lints against concrete
/// branch coverage: an edge the abstract interpreter proves dead (under
/// an input abstraction matching the campaign's traffic bit-width) must
/// never be hit by a real campaign (modulo coverage-map slot collisions
/// with a live edge). Live-predicted edges the campaign never reaches
/// are logged as the analyzer's known-imprecision list — they are *not*
/// failures, only edges the abstraction could not rule out.
///
/// At 4 input bits `rcp` is the deterministic positive case: its
/// `rtt >= 31` / `rtt <= 30` guards become decidable, so both arms'
/// infeasible outcomes are proven dead and the matching 4-bit campaign
/// can never reach them.
#[test]
fn statically_dead_edges_are_never_hit_by_concrete_coverage() {
    use druzhba::analysis::{analyze_pipeline, AbsVal};
    use druzhba::analyze::predicted_dead_edges;
    use druzhba::core::coverage::edge_id;
    use druzhba::dgen::Pipeline;
    use druzhba::dsim::TrafficGenerator;
    use druzhba::programs::PROGRAMS;

    let mut checked_dead = 0usize;
    let mut unproven: Vec<String> = Vec::new();
    for bits in [10u32, 4] {
        for def in &PROGRAMS {
            let compiled = def.compile_cached().expect("corpus compiles");
            let spec = &compiled.pipeline_spec;
            let len = spec.config.phv_length;
            let input = vec![AbsVal::bits(bits); len];
            for level in [OptLevel::SccInline, OptLevel::Fused] {
                let dead = predicted_dead_edges(def, level, bits)
                    .expect("analysis succeeds")
                    .expect("statically-keyed level");
                let abs = analyze_pipeline(spec, &compiled.machine_code, level, &input)
                    .expect("analysis succeeds");

                let mut pipeline =
                    Pipeline::generate(spec, &compiled.machine_code, level).expect("generates");
                pipeline.enable_coverage();
                for seed in 0..4u64 {
                    let trace = TrafficGenerator::new(seed, len, bits).trace(256);
                    for phv in &trace.phvs {
                        pipeline.process(phv);
                    }
                }
                let cov = pipeline.coverage().expect("coverage enabled");

                // A dead edge's slot may legitimately light up if a *live*
                // edge hashes into the same of the 4096 slots.
                let live_slots: std::collections::BTreeSet<usize> = abs
                    .live_edges
                    .iter()
                    .map(|&(site, event, outcome)| edge_id(site, event, outcome) as usize % 4096)
                    .collect();
                for &(site, event, outcome) in &dead {
                    let slot = edge_id(site, event, outcome) as usize % 4096;
                    checked_dead += 1;
                    assert!(
                        cov.count(slot) == 0 || live_slots.contains(&slot),
                        "{} at {level:?} ({bits}-bit input): edge (site={site:#x}, pc={event}, \
                         taken={outcome}) was proven unreachable but a concrete campaign hit it",
                        def.name
                    );
                }
                for &(site, event, outcome) in &abs.live_edges {
                    let slot = edge_id(site, event, outcome) as usize % 4096;
                    if cov.count(slot) == 0 {
                        unproven.push(format!(
                            "{}:{}@{bits}bit (site={site:#x}, pc={event}, taken={outcome})",
                            def.name,
                            level.key()
                        ));
                    }
                }
            }
        }
    }
    assert!(
        checked_dead >= 4,
        "the corpus must exercise the dead-edge predictor (rcp at 4 bits \
         proves 2 edges dead per statically-keyed level), got {checked_dead}"
    );
    // Known-imprecision list: never hit concretely, but not provably dead.
    eprintln!(
        "analyzer imprecision: {} live-predicted edge(s) never hit by the campaign",
        unproven.len()
    );
    for e in &unproven {
        eprintln!("  unproven: {e}");
    }
}
