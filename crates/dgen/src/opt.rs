//! Sparse conditional constant propagation (the paper's §3.4 first
//! optimization).
//!
//! Because machine code is supplied to dgen rather than to dsim, every hole
//! value is known at generation time. This pass (1) replaces every hole
//! reference with its constant value, (2) folds constant expressions —
//! resolving `Mux`/`Opt` selections and `rel_op`/`arith_op` opcodes into
//! their selected arm or concrete operator, and (3) abstractly interprets
//! control flow, deleting branches whose conditions are constant (*"This
//! results in dead code elimination from unused control paths and solely
//! emitting single simplified expressions in place of the previous function
//! bodies."*).

use std::collections::HashMap;

use druzhba_alu_dsl::{AluSpec, BinOp, Expr, Stmt};
use druzhba_core::value::{self, Value};

use crate::eval::{apply_binop, apply_unop};

/// Specialize `spec` against concrete hole values (keyed by local hole
/// name), producing an equivalent spec whose body contains no holes and no
/// dead control paths. Holes absent from the map are treated as zero (the
/// pipeline generator always supplies a complete map).
pub fn specialize(spec: &AluSpec, holes: &HashMap<String, Value>) -> AluSpec {
    specialize_inner(spec, holes, false)
}

/// Partially specialize `spec`: holes present in the map are substituted
/// and folded exactly as in [`specialize`], while absent holes are *kept
/// symbolic*. The returned spec's hole list contains only the unresolved
/// holes. Used by the synthesis engine to enumerate control holes first and
/// then work on the (much smaller) residual program.
pub fn specialize_partial(spec: &AluSpec, holes: &HashMap<String, Value>) -> AluSpec {
    specialize_inner(spec, holes, true)
}

fn specialize_inner(spec: &AluSpec, holes: &HashMap<String, Value>, partial: bool) -> AluSpec {
    let ctx = Ctx {
        spec,
        holes,
        partial,
    };
    let body = specialize_stmts(&ctx, &spec.body);
    // Surviving holes: those not substituted, restricted to ones still
    // referenced by the residual body.
    let (residual_holes, residual_hole_vars) = if partial {
        let mut referenced = std::collections::HashSet::new();
        druzhba_alu_dsl::ast::visit_stmts(&body, &mut |e| match e {
            Expr::CConst { hole }
            | Expr::Opt { hole, .. }
            | Expr::Mux2 { hole, .. }
            | Expr::Mux3 { hole, .. }
            | Expr::RelOp { hole, .. }
            | Expr::ArithOp { hole, .. } => {
                referenced.insert(hole.clone());
            }
            Expr::Var(name) if spec.hole_vars.iter().any(|h| &h.name == name) => {
                referenced.insert(name.clone());
            }
            _ => {}
        });
        (
            spec.holes
                .iter()
                .filter(|h| !holes.contains_key(&h.local) && referenced.contains(&h.local))
                .cloned()
                .collect(),
            spec.hole_vars
                .iter()
                .filter(|h| !holes.contains_key(&h.name) && referenced.contains(&h.name))
                .cloned()
                .collect(),
        )
    } else {
        (Vec::new(), Vec::new())
    };
    AluSpec {
        name: spec.name.clone(),
        kind: spec.kind,
        state_vars: spec.state_vars.clone(),
        hole_vars: residual_hole_vars,
        packet_fields: spec.packet_fields.clone(),
        body,
        holes: residual_holes,
    }
}

struct Ctx<'a> {
    spec: &'a AluSpec,
    holes: &'a HashMap<String, Value>,
    /// Partial mode: holes missing from the map stay symbolic instead of
    /// defaulting to zero.
    partial: bool,
}

impl Ctx<'_> {
    fn hole(&self, name: &str) -> Option<Value> {
        match self.holes.get(name) {
            Some(v) => Some(*v),
            None if self.partial => None,
            None => Some(0),
        }
    }

    fn is_hole_var(&self, name: &str) -> bool {
        self.spec.hole_vars.iter().any(|h| h.name == name)
    }
}

fn specialize_stmts(ctx: &Ctx<'_>, stmts: &[Stmt]) -> Vec<Stmt> {
    let mut out = Vec::new();
    for stmt in stmts {
        match stmt {
            Stmt::Assign { target, value } => {
                let value = specialize_expr(ctx, value);
                // `s = s` after specialization is a no-op; drop it.
                if let Expr::Var(v) = &value {
                    if v == target {
                        continue;
                    }
                }
                out.push(Stmt::Assign {
                    target: target.clone(),
                    value,
                });
            }
            Stmt::If { arms, else_body } => {
                let mut live_arms: Vec<(Expr, Vec<Stmt>)> = Vec::new();
                let mut resolved = false;
                for (cond, body) in arms {
                    let cond = specialize_expr(ctx, cond);
                    match cond {
                        Expr::Const(c) if value::truthy(c) => {
                            // This arm always runs (when reached): it
                            // becomes the else of any remaining live arms,
                            // or replaces the whole statement.
                            let body = specialize_stmts(ctx, body);
                            if live_arms.is_empty() {
                                out.extend(body);
                            } else {
                                out.push(Stmt::If {
                                    arms: std::mem::take(&mut live_arms),
                                    else_body: body,
                                });
                            }
                            resolved = true;
                            break;
                        }
                        Expr::Const(_) => {
                            // Statically false: drop the arm.
                        }
                        cond => live_arms.push((cond, specialize_stmts(ctx, body))),
                    }
                }
                if !resolved {
                    let else_body = specialize_stmts(ctx, else_body);
                    if live_arms.is_empty() {
                        out.extend(else_body);
                    } else if live_arms.iter().all(|(_, b)| b.is_empty()) && else_body.is_empty() {
                        // Entirely empty conditional: dead code.
                    } else {
                        out.push(Stmt::If {
                            arms: live_arms,
                            else_body,
                        });
                    }
                }
            }
            Stmt::Return(e) => {
                out.push(Stmt::Return(specialize_expr(ctx, e)));
                // Anything after an unconditional return is dead.
                break;
            }
        }
    }
    out
}

fn specialize_expr(ctx: &Ctx<'_>, expr: &Expr) -> Expr {
    match expr {
        Expr::Const(v) => Expr::Const(*v),
        Expr::Var(name) => {
            if ctx.is_hole_var(name) {
                match ctx.hole(name) {
                    Some(v) => Expr::Const(v),
                    None => Expr::Var(name.clone()),
                }
            } else {
                Expr::Var(name.clone())
            }
        }
        Expr::CConst { hole } => match ctx.hole(hole) {
            Some(v) => Expr::Const(v),
            None => Expr::CConst { hole: hole.clone() },
        },
        Expr::Opt { hole, arg } => match ctx.hole(hole) {
            Some(0) => specialize_expr(ctx, arg),
            Some(_) => Expr::Const(0),
            None => Expr::Opt {
                hole: hole.clone(),
                arg: Box::new(specialize_expr(ctx, arg)),
            },
        },
        Expr::Mux2 { hole, a, b } => match ctx.hole(hole) {
            Some(v) => specialize_expr(ctx, if v == 0 { a } else { b }),
            None => Expr::Mux2 {
                hole: hole.clone(),
                a: Box::new(specialize_expr(ctx, a)),
                b: Box::new(specialize_expr(ctx, b)),
            },
        },
        Expr::Mux3 { hole, a, b, c } => match ctx.hole(hole) {
            Some(v) => {
                let sel = match v {
                    0 => a,
                    1 => b,
                    _ => c,
                };
                specialize_expr(ctx, sel)
            }
            None => Expr::Mux3 {
                hole: hole.clone(),
                a: Box::new(specialize_expr(ctx, a)),
                b: Box::new(specialize_expr(ctx, b)),
                c: Box::new(specialize_expr(ctx, c)),
            },
        },
        Expr::RelOp { hole, a, b } => match ctx.hole(hole) {
            Some(v) => {
                let op = match v & 3 {
                    0 => BinOp::Ge,
                    1 => BinOp::Le,
                    2 => BinOp::Eq,
                    _ => BinOp::Ne,
                };
                fold_binary(op, specialize_expr(ctx, a), specialize_expr(ctx, b))
            }
            None => Expr::RelOp {
                hole: hole.clone(),
                a: Box::new(specialize_expr(ctx, a)),
                b: Box::new(specialize_expr(ctx, b)),
            },
        },
        Expr::ArithOp { hole, a, b } => match ctx.hole(hole) {
            Some(v) => {
                let op = if v & 1 == 0 { BinOp::Add } else { BinOp::Sub };
                fold_binary(op, specialize_expr(ctx, a), specialize_expr(ctx, b))
            }
            None => Expr::ArithOp {
                hole: hole.clone(),
                a: Box::new(specialize_expr(ctx, a)),
                b: Box::new(specialize_expr(ctx, b)),
            },
        },
        Expr::Binary { op, l, r } => {
            fold_binary(*op, specialize_expr(ctx, l), specialize_expr(ctx, r))
        }
        Expr::Unary { op, x } => {
            let x = specialize_expr(ctx, x);
            if let Expr::Const(v) = x {
                Expr::Const(apply_unop(*op, v))
            } else {
                Expr::Unary {
                    op: *op,
                    x: Box::new(x),
                }
            }
        }
    }
}

/// Constant-fold a binary operation, applying the algebraic identities that
/// the specialized mux selections commonly expose (`x + 0`, `x - 0`,
/// `x * 1`, `x * 0`, …).
fn fold_binary(op: BinOp, l: Expr, r: Expr) -> Expr {
    if let (Expr::Const(a), Expr::Const(b)) = (&l, &r) {
        return Expr::Const(apply_binop(op, *a, *b));
    }
    match (op, &l, &r) {
        // Additive identities.
        (BinOp::Add, Expr::Const(0), _) => return r,
        (BinOp::Add, _, Expr::Const(0)) => return l,
        (BinOp::Sub, _, Expr::Const(0)) => return l,
        // Multiplicative identities and annihilators.
        (BinOp::Mul, Expr::Const(1), _) => return r,
        (BinOp::Mul, _, Expr::Const(1)) => return l,
        (BinOp::Mul, Expr::Const(0), _) | (BinOp::Mul, _, Expr::Const(0)) => return Expr::Const(0),
        (BinOp::Div, _, Expr::Const(1)) => return l,
        // Division/modulo by the constant zero are total: always 0.
        (BinOp::Div, _, Expr::Const(0)) | (BinOp::Mod, _, Expr::Const(0)) => return Expr::Const(0),
        // Logical annihilators (operands are pure, so dropping them is
        // sound).
        (BinOp::And, Expr::Const(0), _) | (BinOp::And, _, Expr::Const(0)) => return Expr::Const(0),
        (BinOp::Or, Expr::Const(c), _) if value::truthy(*c) => return Expr::Const(1),
        (BinOp::Or, _, Expr::Const(c)) if value::truthy(*c) => return Expr::Const(1),
        _ => {}
    }
    Expr::Binary {
        op,
        l: Box::new(l),
        r: Box::new(r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_unoptimized;
    use druzhba_alu_dsl::parse_alu;

    fn holes(pairs: &[(&str, Value)]) -> HashMap<String, Value> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    /// The paper's Fig. 6 example: mux-selected operands feeding an
    /// arith_op, specialized with {arith=0 (add), mux0=0, mux1=1}.
    #[test]
    fn figure_6_specialization() {
        let spec = parse_alu(
            "type: stateful\nstate variables: {state_0}\npacket fields: {phv_0, phv_1}\n\
             state_0 = arith_op(Mux2(phv_0, phv_1), Mux2(phv_0, phv_1));",
        )
        .unwrap();
        let h = holes(&[("arith_op_0", 0), ("mux2_0", 0), ("mux2_1", 1)]);
        let specialized = specialize(&spec, &h);
        assert_eq!(specialized.body.len(), 1);
        match &specialized.body[0] {
            Stmt::Assign { target, value } => {
                assert_eq!(target, "state_0");
                // Exactly `phv_0 + phv_1`, as in Fig. 6 version 3.
                assert_eq!(value.to_string(), "(phv_0 + phv_1)");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn dead_branch_elimination() {
        let spec = parse_alu(
            "type: stateless\nhole variables: {opcode}\npacket fields: {a}\n\
             if (opcode == 0) { return a; } else { return a + C(); }",
        )
        .unwrap();
        let s0 = specialize(&spec, &holes(&[("opcode", 0), ("const_0", 5)]));
        assert_eq!(s0.body, vec![Stmt::Return(Expr::Var("a".into()))]);
        let s1 = specialize(&spec, &holes(&[("opcode", 1), ("const_0", 5)]));
        assert_eq!(s1.body.len(), 1);
        match &s1.body[0] {
            Stmt::Return(e) => assert_eq!(e.to_string(), "(a + 5)"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn opt_zero_keeps_argument_one_yields_zero() {
        let spec = parse_alu(
            "type: stateful\nstate variables: {s}\npacket fields: {p}\n\
             s = Opt(s) + p;",
        )
        .unwrap();
        let keep = specialize(&spec, &holes(&[("opt_0", 0)]));
        match &keep.body[0] {
            Stmt::Assign { value, .. } => assert_eq!(value.to_string(), "(s + p)"),
            other => panic!("unexpected: {other:?}"),
        }
        let drop = specialize(&spec, &holes(&[("opt_0", 1)]));
        match &drop.body[0] {
            // 0 + p folds to p.
            Stmt::Assign { value, .. } => assert_eq!(value.to_string(), "p"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn self_assignment_dropped() {
        let spec = parse_alu(
            "type: stateful\nstate variables: {s}\npacket fields: {p}\n\
             s = Mux2(s, p);",
        )
        .unwrap();
        let specialized = specialize(&spec, &holes(&[("mux2_0", 0)]));
        assert!(specialized.body.is_empty(), "s = s should be eliminated");
    }

    #[test]
    fn constant_condition_collapses_if_chain() {
        let spec = parse_alu(
            "type: stateless\nhole variables: {op}\npacket fields: {a}\n\
             if (op == 0) { return 1; } else if (op == 1) { return 2; } else { return 3; }",
        )
        .unwrap();
        for (v, expected) in [(0, 1), (1, 2), (2, 3), (3, 3)] {
            let s = specialize(&spec, &holes(&[("op", v)]));
            assert_eq!(
                s.body,
                vec![Stmt::Return(Expr::Const(expected))],
                "op = {v}"
            );
        }
    }

    #[test]
    fn runtime_condition_preserved() {
        let spec = parse_alu(
            "type: stateful\nstate variables: {s}\npacket fields: {p}\n\
             if (rel_op(s, C())) { s = s + p; }",
        )
        .unwrap();
        let s = specialize(&spec, &holes(&[("rel_op_0", 0), ("const_0", 10)]));
        match &s.body[0] {
            Stmt::If { arms, .. } => {
                assert_eq!(arms[0].0.to_string(), "(s >= 10)");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn specialized_is_equivalent_to_unoptimized() {
        // Equivalence between backends on the Fig. 4 atom with a concrete
        // machine code, over a grid of inputs.
        let spec = druzhba_alu_dsl::atoms::atom("if_else_raw").unwrap();
        let h = holes(&[
            ("rel_op_0", 2),
            ("opt_0", 0),
            ("mux3_0", 2),
            ("const_0", 10),
            ("opt_1", 1),
            ("mux3_1", 2),
            ("const_1", 0),
            ("opt_2", 0),
            ("mux3_2", 2),
            ("const_2", 1),
        ]);
        let specialized = specialize(&spec, &h);
        let empty = HashMap::new();
        for s0 in [0u32, 5, 9, 10, 11] {
            for p in [0u32, 1, 7] {
                let mut st_a = vec![s0];
                let mut st_b = vec![s0];
                let a = eval_unoptimized(&spec, &h, &[p, p], &mut st_a);
                let b = eval_unoptimized(&specialized, &empty, &[p, p], &mut st_b);
                assert_eq!(a, b, "output s0={s0} p={p}");
                assert_eq!(st_a, st_b, "state s0={s0} p={p}");
            }
        }
    }

    #[test]
    fn fold_binary_identities() {
        let x = || Expr::Var("x".into());
        assert_eq!(
            fold_binary(BinOp::Add, x(), Expr::Const(0)).to_string(),
            "x"
        );
        assert_eq!(fold_binary(BinOp::Mul, Expr::Const(0), x()), Expr::Const(0));
        assert_eq!(
            fold_binary(BinOp::Mul, x(), Expr::Const(1)).to_string(),
            "x"
        );
        assert_eq!(fold_binary(BinOp::Div, x(), Expr::Const(0)), Expr::Const(0));
        assert_eq!(fold_binary(BinOp::And, Expr::Const(0), x()), Expr::Const(0));
        assert_eq!(fold_binary(BinOp::Or, Expr::Const(7), x()), Expr::Const(1));
        // Non-foldable shapes survive.
        assert_eq!(fold_binary(BinOp::Sub, x(), x()).to_string(), "(x - x)");
    }

    #[test]
    fn code_after_return_is_dead() {
        let spec = parse_alu(
            "type: stateless\npacket fields: {a}\n\
             return a;\nreturn a + 1;",
        )
        .unwrap();
        let s = specialize(&spec, &HashMap::new());
        assert_eq!(s.body.len(), 1);
    }
}

#[cfg(test)]
mod partial_tests {
    use super::*;
    use druzhba_alu_dsl::parse_alu;

    fn holes(pairs: &[(&str, Value)]) -> HashMap<String, Value> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn partial_keeps_unresolved_holes() {
        let spec = parse_alu(
            "type: stateful\nstate variables: {s}\npacket fields: {p}\n\
             s = Opt(s) + Mux2(p, C());",
        )
        .unwrap();
        let partial = specialize_partial(&spec, &holes(&[("opt_0", 0)]));
        // opt resolved; mux2 and const survive.
        let locals: Vec<&str> = partial.holes.iter().map(|h| h.local.as_str()).collect();
        assert_eq!(locals, vec!["mux2_0", "const_0"]);
        match &partial.body[0] {
            Stmt::Assign { value, .. } => {
                assert_eq!(value.to_string(), "(s + Mux2(p, C()))");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn partial_prunes_dead_branch_holes() {
        let spec = parse_alu(
            "type: stateless\nhole variables: {opcode}\npacket fields: {a}\n\
             if (opcode == 0) { return a + C(); } else { return a - C(); }",
        )
        .unwrap();
        let partial = specialize_partial(&spec, &holes(&[("opcode", 1)]));
        // Only the else branch's constant survives.
        let locals: Vec<&str> = partial.holes.iter().map(|h| h.local.as_str()).collect();
        assert_eq!(locals, vec!["const_1"]);
        assert!(partial.hole_vars.is_empty());
    }

    #[test]
    fn partial_with_all_holes_equals_full() {
        let spec = druzhba_alu_dsl::atoms::atom("pred_raw").unwrap();
        let all: HashMap<String, Value> = spec.holes.iter().map(|h| (h.local.clone(), 0)).collect();
        assert_eq!(
            specialize(&spec, &all).body,
            specialize_partial(&spec, &all).body
        );
        assert!(specialize_partial(&spec, &all).holes.is_empty());
    }

    #[test]
    fn partial_with_no_holes_is_identityish() {
        let spec = druzhba_alu_dsl::atoms::atom("raw").unwrap();
        let partial = specialize_partial(&spec, &HashMap::new());
        assert_eq!(partial.holes.len(), spec.holes.len());
    }
}
