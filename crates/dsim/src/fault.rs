//! Machine-code fault injection.
//!
//! The paper's case study (§5.2) surfaces two classes of bad machine code:
//! programs *missing pairs* (incompatible with the pipeline) and programs
//! whose values produce *wrong behaviour* (caught as trace mismatches).
//! This module manufactures both kinds of faults from a known-good program,
//! so the test suite can verify that the fuzzing workflow actually detects
//! them — a tester that never fires is worse than no tester.

use druzhba_core::{MachineCode, ValueGen};
use druzhba_dgen::{expected_machine_code, PipelineSpec};

/// A description of an injected fault, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// A pair was deleted from the program.
    RemovedPair { name: String },
    /// A pair's value was replaced (still within the primitive's domain).
    MutatedValue { name: String, old: u32, new: u32 },
    /// A pair's value was set outside the primitive's domain.
    OutOfRangeValue { name: String, new: u32 },
}

/// Deterministic generator of faulty machine-code variants.
#[derive(Debug)]
pub struct FaultInjector {
    gen: ValueGen,
}

impl FaultInjector {
    /// A fault injector with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            gen: ValueGen::new(seed, 32),
        }
    }

    /// Remove one randomly chosen pair (the paper's "missing machine code
    /// pairs" failure).
    pub fn remove_random_pair(&mut self, mc: &MachineCode) -> (MachineCode, Fault) {
        let names: Vec<String> = mc.names().map(str::to_string).collect();
        let idx = self.gen.value_below(names.len() as u32) as usize;
        let name = names[idx].clone();
        let mut out = mc.clone();
        out.remove(&name);
        (out, Fault::RemovedPair { name })
    }

    /// Mutate one randomly chosen pair to a *different* in-domain value.
    ///
    /// Returns `None` if no primitive has more than one legal value (then
    /// every in-domain mutation would be a no-op).
    pub fn mutate_random_value(
        &mut self,
        spec: &PipelineSpec,
        mc: &MachineCode,
    ) -> Option<(MachineCode, Fault)> {
        let expected = expected_machine_code(spec);
        let mutable: Vec<_> = expected
            .iter()
            .filter(|(_, domain)| domain.bound() > 1)
            .collect();
        if mutable.is_empty() {
            return None;
        }
        let (name, domain) = mutable[self.gen.value_below(mutable.len() as u32) as usize];
        let old = mc.try_get(name)?;
        let bound = domain.bound().min(1 << 16) as u32;
        let mut new = self.gen.value_below(bound);
        if new == old {
            new = (new + 1) % bound;
        }
        let mut out = mc.clone();
        out.set(name.clone(), new);
        Some((
            out,
            Fault::MutatedValue {
                name: name.clone(),
                old,
                new,
            },
        ))
    }

    /// Set one randomly chosen *choice* primitive (mux or opcode) out of
    /// its domain.
    pub fn out_of_range_value(
        &mut self,
        spec: &PipelineSpec,
        mc: &MachineCode,
    ) -> Option<(MachineCode, Fault)> {
        let expected = expected_machine_code(spec);
        let choices: Vec<_> = expected
            .iter()
            .filter(|(_, d)| matches!(d, druzhba_alu_dsl::HoleDomain::Choice(_)))
            .collect();
        if choices.is_empty() {
            return None;
        }
        let (name, domain) = choices[self.gen.value_below(choices.len() as u32) as usize];
        let new = domain.bound() as u32;
        let mut out = mc.clone();
        out.set(name.clone(), new);
        Some((
            out,
            Fault::OutOfRangeValue {
                name: name.clone(),
                new,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use druzhba_alu_dsl::atoms::atom;
    use druzhba_core::PipelineConfig;
    use druzhba_dgen::{OptLevel, Pipeline};

    fn setup() -> (PipelineSpec, MachineCode) {
        let spec = PipelineSpec::new(
            PipelineConfig::new(2, 2),
            atom("pred_raw").unwrap(),
            atom("stateless_arith").unwrap(),
        )
        .unwrap();
        let mc = MachineCode::from_pairs(
            expected_machine_code(&spec)
                .into_iter()
                .map(|(n, _)| (n, 0)),
        );
        (spec, mc)
    }

    #[test]
    fn removed_pair_always_rejected_by_dgen() {
        let (spec, mc) = setup();
        let mut inj = FaultInjector::new(1);
        for _ in 0..20 {
            let (bad, fault) = inj.remove_random_pair(&mc);
            assert_eq!(bad.len(), mc.len() - 1);
            let err = Pipeline::generate(&spec, &bad, OptLevel::SccInline).unwrap_err();
            assert!(err.is_incompatibility(), "{fault:?} -> {err}");
        }
    }

    #[test]
    fn out_of_range_always_rejected_by_dgen() {
        let (spec, mc) = setup();
        let mut inj = FaultInjector::new(2);
        for _ in 0..20 {
            let (bad, _) = inj.out_of_range_value(&spec, &mc).unwrap();
            let err = Pipeline::generate(&spec, &bad, OptLevel::Scc).unwrap_err();
            assert!(err.is_incompatibility());
        }
    }

    #[test]
    fn mutation_produces_valid_but_different_program() {
        let (spec, mc) = setup();
        let mut inj = FaultInjector::new(3);
        for _ in 0..20 {
            let (bad, fault) = inj.mutate_random_value(&spec, &mc).unwrap();
            // Still buildable: mutation stays in-domain.
            Pipeline::generate(&spec, &bad, OptLevel::SccInline).unwrap();
            match fault {
                Fault::MutatedValue { old, new, .. } => assert_ne!(old, new),
                other => panic!("unexpected fault: {other:?}"),
            }
            assert_ne!(bad, mc);
        }
    }

    #[test]
    fn injection_is_deterministic() {
        let (spec, mc) = setup();
        let a = FaultInjector::new(7)
            .mutate_random_value(&spec, &mc)
            .unwrap();
        let b = FaultInjector::new(7)
            .mutate_random_value(&spec, &mc)
            .unwrap();
        assert_eq!(a.1, b.1);
    }
}
