//! End-to-end compilation: Domino source → Druzhba machine code.
//!
//! The pipeline of passes: parse/validate (caller) → symbolic execution →
//! grouping search → lowering → grid scheduling → per-ALU hole synthesis →
//! machine-code assembly. Grouping options are tried most-merged first; the
//! first option that lowers, schedules, *and* synthesizes wins.

use std::collections::BTreeMap;

use druzhba_alu_dsl::atoms;
use druzhba_core::names::{self, AluKind};
use druzhba_core::{Error, MachineCode, Result, Value};
use druzhba_dgen::{expected_machine_code, PipelineSpec};
use druzhba_domino::DominoProgram;

use crate::ir::TExpr;
use crate::lower::{groupings, lower, DagOp, NodeInput};
use crate::schedule::{schedule, Placement};
use crate::synth::{synthesize_stateful, synthesize_stateless, SynthConfig};

/// Compiler configuration: the target grid and ALU pair, plus synthesis
/// parameters.
#[derive(Debug, Clone)]
pub struct CompilerConfig {
    /// Pipeline depth (stages).
    pub depth: usize,
    /// ALUs per stage (stateless and stateful each).
    pub width: usize,
    /// Stateful atom name (Table 1's "ALU name" column).
    pub stateful_atom: String,
    /// Stateless ALU name.
    pub stateless_atom: String,
    /// Synthesis parameters.
    pub synth: SynthConfig,
}

impl CompilerConfig {
    /// A config for the given grid using the named stateful atom and the
    /// general-purpose stateless ALU.
    pub fn new(depth: usize, width: usize, stateful_atom: &str) -> Self {
        CompilerConfig {
            depth,
            width,
            stateful_atom: stateful_atom.to_string(),
            stateless_atom: "stateless_full".to_string(),
            synth: SynthConfig::default(),
        }
    }
}

/// Statistics from a successful compilation.
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// State-variable grouping chosen (program state indices per atom).
    pub grouping: Vec<Vec<usize>>,
    /// Stateless ALUs used.
    pub stateless_used: usize,
    /// Stateful ALUs used.
    pub stateful_used: usize,
    /// Highest stage index used, plus one.
    pub stages_used: usize,
    /// PHV containers used.
    pub phv_length: usize,
}

/// A compiled program: machine code plus everything needed to simulate and
/// test it.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The pipeline this machine code targets.
    pub pipeline_spec: PipelineSpec,
    /// The machine code (complete: every expected pair present).
    pub machine_code: MachineCode,
    /// Input packet fields in container order (field `i` ↔ container `i`).
    pub input_fields: Vec<String>,
    /// Written packet fields and the container holding each at pipeline
    /// exit.
    pub output_fields: BTreeMap<String, usize>,
    /// Grid cell `(stage, slot, var)` implementing each program state
    /// variable, in declaration order.
    pub state_cells: Vec<(usize, usize, usize)>,
    /// Compilation statistics.
    pub report: CompileReport,
}

impl CompiledProgram {
    /// Containers to assert in the fuzz harness (the observable outputs).
    pub fn observable_containers(&self) -> Vec<usize> {
        self.output_fields.values().copied().collect()
    }
}

/// Compile a validated Domino program onto the `depth × width` grid of
/// the given [`CompilerConfig`], producing machine code plus the
/// container layout and observable outputs the fuzz harness asserts on.
///
/// Synthesis is deterministic: the same program and configuration always
/// produce the same machine code, which is why fuzz/hunt seeds replay.
///
/// ```
/// use druzhba_chipmunk::{compile, CompilerConfig};
/// use druzhba_domino::parse_program;
///
/// let program = parse_program(
///     "state int count = 0;\n\
///      if (count == 9) { count = 0; pkt.sample = 1; }\n\
///      else { count = count + 1; pkt.sample = 0; }\n",
/// )
/// .unwrap();
/// let compiled = compile(&program, &CompilerConfig::new(2, 1, "if_else_raw")).unwrap();
/// assert_eq!(compiled.machine_code.try_get("stateful_alu_0_0_const_0"), Some(9));
/// assert!(compiled.output_fields.contains_key("sample"));
/// ```
pub fn compile(program: &DominoProgram, cfg: &CompilerConfig) -> Result<CompiledProgram> {
    // Pipeline state powers up zeroed; nonzero initials would need a
    // preamble the hardware model does not have.
    if let Some(decl) = program.state_vars.iter().find(|d| d.init != 0) {
        return Err(Error::DoesNotFit {
            message: format!(
                "state variable `{}` has nonzero initial value {} (switch state \
                 storage is zero-initialized)",
                decl.name, decl.init
            ),
        });
    }

    let stateful_alu = atoms::atom(&cfg.stateful_atom)?;
    let stateless_alu = atoms::atom(&cfg.stateless_atom)?;
    let capacity = stateful_alu.state_vars.len();

    let synth_cfg = cfg.synth.clone().with_candidates(&program.literals());

    let mut last_err = Error::DoesNotFit {
        message: "no grouping options".into(),
    };
    for grouping in groupings(program, capacity)? {
        match try_grouping(
            program,
            cfg,
            &grouping,
            &stateful_alu,
            &stateless_alu,
            &synth_cfg,
        ) {
            Ok(compiled) => return Ok(compiled),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

fn try_grouping(
    program: &DominoProgram,
    cfg: &CompilerConfig,
    grouping: &[Vec<usize>],
    stateful_alu: &druzhba_alu_dsl::AluSpec,
    stateless_alu: &druzhba_alu_dsl::AluSpec,
    synth_cfg: &SynthConfig,
) -> Result<CompiledProgram> {
    let lowered = lower(program, grouping)?;
    let placement = schedule(&lowered, cfg.depth, cfg.width)?;

    let pipeline_spec = PipelineSpec::new(
        placement.config,
        stateful_alu.clone(),
        stateless_alu.clone(),
    )?;

    let mut mc = MachineCode::new();

    // Stateless nodes.
    for (i, node) in lowered.nodes.iter().enumerate() {
        let (stage, slot) = placement.node_place[i];
        let (target, op_inputs) = node_target(node);
        let holes = synthesize_stateless(stateless_alu, op_inputs.len(), &target, synth_cfg)?;
        install_alu(
            &mut mc,
            AluKind::Stateless,
            stage,
            slot,
            &holes,
            &op_inputs,
            &placement,
        );
    }

    // Atoms.
    for (g, atom_task) in lowered.atoms.iter().enumerate() {
        let (stage, slot) = placement.atom_place[g];
        let op_inputs = &lowered.atom_operand_inputs[g];
        let holes = synthesize_stateful(stateful_alu, op_inputs.len(), &atom_task.tree, synth_cfg)?;
        install_alu(
            &mut mc,
            AluKind::Stateful,
            stage,
            slot,
            &holes,
            op_inputs,
            &placement,
        );
    }

    // Output muxes: route each producing ALU's output into its container at
    // its stage.
    for (i, &(stage, slot)) in placement.node_place.iter().enumerate() {
        mc.set(
            names::output_mux(stage, placement.node_container[i]),
            (1 + slot) as Value,
        );
    }
    for (g, &(stage, slot)) in placement.atom_place.iter().enumerate() {
        mc.set(
            names::output_mux(stage, placement.atom_container[g]),
            (1 + cfg.width + slot) as Value,
        );
    }

    // Everything not yet programmed defaults to zero (pass-through output
    // muxes, unused ALUs) — the machine code must still program the whole
    // grid or dgen rejects it.
    for (name, _) in expected_machine_code(&pipeline_spec) {
        if !mc.contains(&name) {
            mc.set(name, 0);
        }
    }

    // State-cell mapping per program state variable.
    let mut state_cells = vec![(0, 0, 0); program.state_vars.len()];
    for (g, group) in grouping.iter().enumerate() {
        let (stage, slot) = placement.atom_place[g];
        for (k, &var) in group.iter().enumerate() {
            state_cells[var] = (stage, slot, k);
        }
    }

    let stages_used = placement
        .node_place
        .iter()
        .chain(&placement.atom_place)
        .map(|&(s, _)| s + 1)
        .max()
        .unwrap_or(0);

    Ok(CompiledProgram {
        machine_code: mc,
        input_fields: lowered.input_fields.clone(),
        output_fields: placement.sink_container.clone(),
        state_cells,
        report: CompileReport {
            grouping: grouping.to_vec(),
            stateless_used: lowered.nodes.len(),
            stateful_used: lowered.atoms.len(),
            stages_used,
            phv_length: placement.config.phv_length,
        },
        pipeline_spec,
    })
}

/// The synthesis target of a DAG node, plus the (≤2) container-backed
/// operand inputs in mux order.
fn node_target(node: &crate::lower::DagNode) -> (TExpr, Vec<NodeInput>) {
    match node.op {
        DagOp::Const(v) => (TExpr::Const(v), Vec::new()),
        DagOp::Bin(op) => {
            let mut op_inputs = Vec::new();
            let mut side = |input: NodeInput| -> TExpr {
                match input {
                    NodeInput::Const(v) => TExpr::Const(v),
                    other => {
                        // Reuse an operand slot if the same source feeds
                        // both sides (e.g. a * a).
                        if let Some(k) = op_inputs.iter().position(|&i| i == other) {
                            TExpr::Op(k)
                        } else {
                            op_inputs.push(other);
                            TExpr::Op(op_inputs.len() - 1)
                        }
                    }
                }
            };
            let l = side(node.a);
            let r = side(node.b);
            (TExpr::Bin(op, Box::new(l), Box::new(r)), op_inputs)
        }
    }
}

/// Write one ALU's holes and operand muxes into the machine code.
fn install_alu(
    mc: &mut MachineCode,
    kind: AluKind,
    stage: usize,
    slot: usize,
    holes: &std::collections::HashMap<String, Value>,
    op_inputs: &[NodeInput],
    placement: &Placement,
) {
    for (local, &v) in holes {
        mc.set(names::alu_hole(kind, stage, slot, local), v);
    }
    for (k, &input) in op_inputs.iter().enumerate() {
        let container = placement
            .container_of(input)
            .expect("operand inputs are container-backed");
        mc.set(names::operand_mux(kind, stage, slot, k), container as Value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use druzhba_dgen::{OptLevel, Pipeline};
    use druzhba_domino::parse_program;

    /// Compile and run a few packets through the pipeline, returning
    /// (outputs at observable containers, final state by program var).
    fn run_compiled(
        src: &str,
        cfg: &CompilerConfig,
        packets: &[Vec<(&str, Value)>],
    ) -> (Vec<BTreeMap<String, Value>>, Vec<Value>) {
        let program = parse_program(src).unwrap();
        let compiled = compile(&program, cfg).unwrap();
        let mut pipe = Pipeline::generate(
            &compiled.pipeline_spec,
            &compiled.machine_code,
            OptLevel::SccInline,
        )
        .unwrap();
        let mut outs = Vec::new();
        for pkt in packets {
            let mut phv = druzhba_core::Phv::zeroed(compiled.pipeline_spec.config.phv_length);
            for (field, value) in pkt {
                let idx = compiled
                    .input_fields
                    .iter()
                    .position(|f| f == field)
                    .unwrap_or_else(|| panic!("unknown input field {field}"));
                phv.set(idx, *value);
            }
            let out = pipe.process(&phv);
            outs.push(
                compiled
                    .output_fields
                    .iter()
                    .map(|(f, &c)| (f.clone(), out.get(c)))
                    .collect(),
            );
        }
        let snapshot = pipe.state_snapshot();
        let state = compiled
            .state_cells
            .iter()
            .map(|&(stage, slot, var)| snapshot[stage][slot][var])
            .collect();
        (outs, state)
    }

    #[test]
    fn compiles_stateless_arithmetic() {
        let (outs, _) = run_compiled(
            "pkt.sum = pkt.a + pkt.b;\npkt.flag = pkt.a >= 10;",
            &CompilerConfig::new(1, 2, "raw"),
            &[vec![("a", 12), ("b", 30)], vec![("a", 3), ("b", 4)]],
        );
        assert_eq!(outs[0]["sum"], 42);
        assert_eq!(outs[0]["flag"], 1);
        assert_eq!(outs[1]["sum"], 7);
        assert_eq!(outs[1]["flag"], 0);
    }

    #[test]
    fn compiles_accumulator() {
        let (_, state) = run_compiled(
            "state int sum = 0;\nsum = sum + pkt.x;",
            &CompilerConfig::new(1, 1, "raw"),
            &[vec![("x", 5)], vec![("x", 7)], vec![("x", 1)]],
        );
        assert_eq!(state, vec![13]);
    }

    #[test]
    fn compiles_sampling_on_if_else_raw() {
        let src = "state int count = 0;\n\
                   if (count == 2) { count = 0; pkt.sample = 1; }\n\
                   else { count = count + 1; pkt.sample = 0; }";
        let packets: Vec<Vec<(&str, Value)>> = (0..6).map(|_| vec![]).collect();
        let (outs, state) = run_compiled(src, &CompilerConfig::new(2, 1, "if_else_raw"), &packets);
        let samples: Vec<Value> = outs.iter().map(|o| o["sample"]).collect();
        assert_eq!(samples, vec![0, 0, 1, 0, 0, 1]);
        assert_eq!(state, vec![0]);
    }

    #[test]
    fn compiles_pair_group() {
        let src = "state int count = 0;\n\
                   state int heavy = 0;\n\
                   if (count >= 3) { heavy = heavy + 1; count = count + 1; }\n\
                   else { count = count + 1; }";
        let packets: Vec<Vec<(&str, Value)>> = (0..5).map(|_| vec![]).collect();
        let (_, state) = run_compiled(src, &CompilerConfig::new(1, 1, "pair"), &packets);
        // counts 0,1,2,3,4 -> heavy increments at counts 3 and 4.
        assert_eq!(state, vec![5, 2]);
    }

    #[test]
    fn rejects_program_too_deep() {
        let program = parse_program("pkt.o = ((pkt.a + pkt.b) + pkt.c) + pkt.d;").unwrap();
        let err = compile(&program, &CompilerConfig::new(2, 4, "raw")).unwrap_err();
        assert!(matches!(err, Error::DoesNotFit { .. }));
    }

    #[test]
    fn rejects_nonzero_initial_state() {
        let program = parse_program("state int s = 5;\ns = s + pkt.a;").unwrap();
        let err = compile(&program, &CompilerConfig::new(1, 1, "raw")).unwrap_err();
        assert!(err.to_string().contains("zero-initialized"));
    }

    #[test]
    fn machine_code_is_complete_for_the_grid() {
        let program = parse_program("state int s = 0;\ns = s + pkt.a;").unwrap();
        let compiled = compile(&program, &CompilerConfig::new(2, 2, "raw")).unwrap();
        // dgen accepts it at every level — i.e. no missing pairs.
        for level in OptLevel::ALL {
            Pipeline::generate(&compiled.pipeline_spec, &compiled.machine_code, level).unwrap();
        }
    }

    #[test]
    fn grouping_fallback_to_minimal() {
        // Two cross-referencing-free variables with field-only guards fit
        // separate pred_raw atoms.
        let src = "state int sum_a = 0;\n\
                   state int sum_b = 0;\n\
                   if (pkt.sel == 0) { sum_a = sum_a + 1; }\n\
                   if (pkt.sel == 1) { sum_b = sum_b + 1; }";
        let program = parse_program(src).unwrap();
        let compiled = compile(&program, &CompilerConfig::new(2, 2, "pred_raw")).unwrap();
        assert_eq!(compiled.report.stateful_used, 2);
        assert_eq!(compiled.report.grouping, vec![vec![0], vec![1]]);
    }
}
