//! The ALU library shipped with Druzhba.
//!
//! Paper §3.1: *"We have written 5 stateless ALUs and 6 stateful ALUs that
//! make use of our ALU DSL grammar that represent the behavior of atoms in
//! Banzai, a switch pipeline simulator for Domino. Atoms are Banzai's
//! natively supported atomic units of packet processing."*
//!
//! The six stateful atoms are `raw`, `sub`, `if_else_raw` (the paper's
//! Fig. 4), `pred_raw`, `nested_ifs`, and `pair`; the five stateless ALUs
//! are `stateless_mux`, `stateless_arith`, `stateless_rel`,
//! `stateless_select`, and `stateless_full`.

use druzhba_core::{Error, Result};

use crate::ast::AluSpec;
use crate::parse_alu;

/// Names of the six stateful atoms, matching Table 1's "ALU name" column.
pub const STATEFUL_ATOMS: [&str; 6] = [
    "raw",
    "sub",
    "if_else_raw",
    "pred_raw",
    "nested_ifs",
    "pair",
];

/// Names of the five stateless ALUs.
pub const STATELESS_ATOMS: [&str; 5] = [
    "stateless_mux",
    "stateless_arith",
    "stateless_rel",
    "stateless_select",
    "stateless_full",
];

/// The DSL source of a named atom, or `None` if unknown.
pub fn atom_source(name: &str) -> Option<&'static str> {
    Some(match name {
        "raw" => include_str!("../assets/raw.alu"),
        "sub" => include_str!("../assets/sub.alu"),
        "if_else_raw" => include_str!("../assets/if_else_raw.alu"),
        "pred_raw" => include_str!("../assets/pred_raw.alu"),
        "nested_ifs" => include_str!("../assets/nested_ifs.alu"),
        "pair" => include_str!("../assets/pair.alu"),
        "stateless_mux" => include_str!("../assets/stateless_mux.alu"),
        "stateless_arith" => include_str!("../assets/stateless_arith.alu"),
        "stateless_rel" => include_str!("../assets/stateless_rel.alu"),
        "stateless_select" => include_str!("../assets/stateless_select.alu"),
        "stateless_full" => include_str!("../assets/stateless_full.alu"),
        _ => return None,
    })
}

/// Parse a named atom into an [`AluSpec`].
pub fn atom(name: &str) -> Result<AluSpec> {
    let source = atom_source(name).ok_or_else(|| Error::Other {
        message: format!(
            "unknown atom `{name}` (available: {:?} and {:?})",
            STATEFUL_ATOMS, STATELESS_ATOMS
        ),
    })?;
    parse_alu(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use druzhba_core::names::AluKind;

    #[test]
    fn all_stateful_atoms_parse() {
        for name in STATEFUL_ATOMS {
            let spec = atom(name).unwrap_or_else(|e| panic!("atom {name}: {e}"));
            assert_eq!(spec.kind, AluKind::Stateful, "{name}");
            assert_eq!(spec.name, name);
            assert!(!spec.state_vars.is_empty(), "{name}");
        }
    }

    #[test]
    fn all_stateless_atoms_parse() {
        for name in STATELESS_ATOMS {
            let spec = atom(name).unwrap_or_else(|e| panic!("atom {name}: {e}"));
            assert_eq!(spec.kind, AluKind::Stateless, "{name}");
            assert!(spec.state_vars.is_empty(), "{name}");
        }
    }

    #[test]
    fn unknown_atom_is_error() {
        assert!(atom("frobnicate").is_err());
    }

    #[test]
    fn pair_has_two_state_variables() {
        let spec = atom("pair").unwrap();
        assert_eq!(spec.state_vars, vec!["state_0", "state_1"]);
    }

    #[test]
    fn if_else_raw_matches_figure_4_hole_count() {
        // Fig. 4: one rel_op, three Opt, three Mux3, three C().
        let spec = atom("if_else_raw").unwrap();
        assert_eq!(spec.holes.len(), 10);
        assert!(spec.hole("rel_op_0").is_some());
        assert!(spec.hole("opt_2").is_some());
        assert!(spec.hole("mux3_2").is_some());
        assert!(spec.hole("const_2").is_some());
    }

    #[test]
    fn stateless_full_has_opcode_hole() {
        let spec = atom("stateless_full").unwrap();
        let opcode = spec.hole("opcode").unwrap();
        assert_eq!(opcode.domain, crate::HoleDomain::Bits(3));
    }

    #[test]
    fn atoms_have_two_operands() {
        for name in STATEFUL_ATOMS.iter().chain(STATELESS_ATOMS.iter()) {
            assert_eq!(atom(name).unwrap().operand_count(), 2, "{name}");
        }
    }
}
