//! # druzhba-drmt
//!
//! The dRMT (disaggregated RMT) side of Druzhba (paper §4): match+action
//! *processors* replace pipeline stages, match+action tables live in
//! centralized memory clusters reached through a crossbar, and a
//! *scheduler* decides at which tick relative to packet arrival each
//! table's match and action execute.
//!
//! Components:
//!
//! - [`schedule`] — the dRMT scheduler: assigns a time slot to every match
//!   and action operation subject to dependency latencies (ΔM, ΔA) and
//!   per-cycle match/action capacity constraints taken *mod P* (one packet
//!   arrives per tick and processors run the same schedule staggered by
//!   one tick, so slots congruent mod P share hardware). The paper
//!   formulates this as an ILP; this crate provides a greedy list
//!   scheduler plus an exact branch-and-bound solver, both validated by a
//!   shared feasibility checker (substitution documented in DESIGN.md).
//! - [`table_entries`] — the textual table-entry configuration format of
//!   §4.2 (table, matched field values, match kind from the table
//!   declaration, action and its arguments).
//! - [`machine`] — the dRMT simulator: round-robin packet dispatch to
//!   processors, per-slot match/action execution against the centralized
//!   tables, registers and counters, crossbar accounting.
//! - [`traffic`] — the packet generator: *"generates packets with randomly
//!   initialized packet field values based on the fields specified in the
//!   P4 file"*.

pub mod machine;
pub mod schedule;
pub mod table_entries;
pub mod traffic;

pub use machine::{DrmtMachine, DrmtStats, Packet};
pub use schedule::{check_schedule, solve, solve_optimal, Schedule, ScheduleConfig};
pub use table_entries::{parse_entries, TableEntry};
pub use traffic::PacketGen;
