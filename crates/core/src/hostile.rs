//! The deterministic "hostile mutant" trap.
//!
//! Robustness testing of the campaign runtime needs a mutant that is
//! *valid* machine code (it passes domain validation, so static screening
//! cannot reject it) yet reliably crashes the backend that tries to build
//! it — the way a real compiler-crash bug behaves. The trap is a sentinel
//! value planted into a wide immediate hole: [`trip_if_hostile`] scans a
//! program for the sentinel and panics with a deterministic message.
//!
//! The generator backends call the scan once per pipeline build (see
//! `dgen::Pipeline::generate`), *after* validation — so purely static
//! passes (machine-code validation, the abstract-interpretation screen)
//! never trip it, while every execution-bearing backend does. Campaign
//! runtimes are expected to catch the unwind and record it as a
//! `backend_panic` verdict; a campaign that aborts instead has failed its
//! panic-isolation contract.

use crate::MachineCode;

/// The sentinel: an improbable 32-bit immediate. Only representable in
/// full-width (`Bits(32)`) holes, so it always stays *in domain* — the
/// trap is invisible to validation by construction. Ordinary fault
/// injection never produces it (value mutations are capped at 16 bits).
pub const HOSTILE_TRAP_VALUE: u32 = 0xDEAD_10CC;

/// Panic (deterministically) if any pair of `mc` holds the sentinel.
///
/// The message is a pure function of the first tripping pair's name, so a
/// captured panic payload is replayable evidence, not noise.
pub fn trip_if_hostile(mc: &MachineCode) {
    let mut names: Vec<&str> = mc
        .names()
        .filter(|n| mc.try_get(n) == Some(HOSTILE_TRAP_VALUE))
        .collect();
    names.sort_unstable();
    if let Some(name) = names.first() {
        panic!(
            "hostile machine-code trap: pair `{name}` holds sentinel {HOSTILE_TRAP_VALUE:#010x}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_program_does_not_trip() {
        let mc = MachineCode::from_pairs([("a".to_string(), 0), ("b".to_string(), 7)]);
        trip_if_hostile(&mc);
    }

    #[test]
    fn sentinel_trips_with_a_deterministic_payload() {
        let mc = MachineCode::from_pairs([
            ("alpha".to_string(), HOSTILE_TRAP_VALUE),
            ("beta".to_string(), HOSTILE_TRAP_VALUE),
        ]);
        let payload = std::panic::catch_unwind(|| trip_if_hostile(&mc)).unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("`alpha`"), "lowest name wins: {msg}");
        assert!(msg.contains("0xdead10cc"), "{msg}");
    }
}
