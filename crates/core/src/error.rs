//! The common error type.
//!
//! Errors are structured so that the compiler-testing harness can *classify*
//! failures the way the paper's case study does (§5.2): machine code that is
//! incompatible with the pipeline (missing pairs) is distinguishable from
//! behavioural mismatches discovered by fuzzing.

use std::fmt;

/// Result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced across the Druzhba crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A machine-code pair required by the pipeline description is absent.
    /// One of the two §5.2 failure classes ("missing machine code pairs from
    /// the input file to program the behavior of the pipeline's output
    /// multiplexers").
    MissingMachineCode {
        /// The absent pair's name.
        name: String,
    },
    /// A machine-code value is outside the domain of the primitive it
    /// programs (e.g. a 5 for a 3-to-1 mux).
    MachineCodeOutOfRange {
        /// Pair name.
        name: String,
        /// Provided value.
        value: u32,
        /// Exclusive upper bound of the primitive's domain.
        limit: u32,
    },
    /// The textual machine-code format failed to parse.
    MachineCodeParse { line: usize, message: String },
    /// An ALU DSL source failed to lex/parse/analyse.
    AluParse { line: usize, message: String },
    /// A Domino-subset source failed to lex/parse/analyse.
    DominoParse { line: usize, message: String },
    /// A P4-subset source failed to lex/parse/analyse.
    P4Parse { line: usize, message: String },
    /// A pipeline configuration is not realizable.
    InvalidConfig { message: String },
    /// The compiler could not map a program onto the target pipeline
    /// (the "all-or-nothing" property of §1: a program either fits within a
    /// pipeline's resources or it doesn't run at all).
    DoesNotFit { message: String },
    /// Hole synthesis failed to find machine code implementing the required
    /// semantics.
    SynthesisFailed { message: String },
    /// Simulation traces diverged (spec vs pipeline), with location.
    TraceMismatch { message: String },
    /// dRMT scheduling failed (infeasible constraints).
    ScheduleInfeasible { message: String },
    /// Anything else.
    Other { message: String },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::MissingMachineCode { name } => {
                write!(f, "missing machine code pair `{name}`")
            }
            Error::MachineCodeOutOfRange { name, value, limit } => write!(
                f,
                "machine code pair `{name}` = {value} out of range (must be < {limit})"
            ),
            Error::MachineCodeParse { line, message } => {
                write!(f, "machine code parse error at line {line}: {message}")
            }
            Error::AluParse { line, message } => {
                write!(f, "ALU DSL parse error at line {line}: {message}")
            }
            Error::DominoParse { line, message } => {
                write!(f, "Domino parse error at line {line}: {message}")
            }
            Error::P4Parse { line, message } => {
                write!(f, "P4 parse error at line {line}: {message}")
            }
            Error::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            Error::DoesNotFit { message } => {
                write!(f, "program does not fit the pipeline: {message}")
            }
            Error::SynthesisFailed { message } => write!(f, "synthesis failed: {message}"),
            Error::TraceMismatch { message } => write!(f, "trace mismatch: {message}"),
            Error::ScheduleInfeasible { message } => {
                write!(f, "schedule infeasible: {message}")
            }
            Error::Other { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Convenience constructor for [`Error::Other`].
    pub fn other(message: impl Into<String>) -> Self {
        Error::Other {
            message: message.into(),
        }
    }

    /// True if this error means the machine code was *incompatible with the
    /// pipeline* (rather than behaviourally wrong) — the paper's first
    /// failure class.
    pub fn is_incompatibility(&self) -> bool {
        matches!(
            self,
            Error::MissingMachineCode { .. } | Error::MachineCodeOutOfRange { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::MissingMachineCode {
            name: "output_mux_phv_0_0".into(),
        };
        assert!(e.to_string().contains("output_mux_phv_0_0"));
        let e = Error::MachineCodeOutOfRange {
            name: "m".into(),
            value: 9,
            limit: 3,
        };
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn incompatibility_classification() {
        assert!(Error::MissingMachineCode { name: "x".into() }.is_incompatibility());
        assert!(Error::MachineCodeOutOfRange {
            name: "x".into(),
            value: 4,
            limit: 2
        }
        .is_incompatibility());
        assert!(!Error::other("nope").is_incompatibility());
        assert!(!Error::TraceMismatch {
            message: "tick 3".into()
        }
        .is_incompatibility());
    }
}
