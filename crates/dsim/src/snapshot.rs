//! Versioned, checksummed, atomically-written campaign snapshots.
//!
//! Checkpoint/resume extends the repo's determinism guarantee — "a report
//! is a pure function of (seed, jobs)" — across process death: kill -9 a
//! campaign at any point, `--resume` it, and the final report is
//! byte-identical to an uninterrupted run. That only works if the
//! snapshot layer itself cannot lie, so every snapshot is:
//!
//! - **atomic** — written to a sibling `.tmp` file and `rename(2)`d into
//!   place, so a crash mid-write never leaves a half-snapshot under the
//!   real name;
//! - **rotated** — the previous good snapshot survives as `*.prev`; if
//!   the current file is damaged, [`load_latest`] degrades to it;
//! - **versioned and fingerprinted** — the header names the format
//!   version, the snapshot kind, and a fingerprint of the campaign
//!   configuration, so resuming with a different seed/config is detected
//!   instead of silently producing a franken-report;
//! - **checksummed** — an FNV-1a checksum over the full body detects
//!   truncation and bit-flips.
//!
//! The payload is line-oriented text: each logical record is one line,
//! escaped so embedded newlines/backslashes round-trip
//! ([`escape_line`]/[`unescape_line`]). Format on disk:
//!
//! ```text
//! druzhba-snapshot v1 <kind>
//! fingerprint <hex64>
//! <escaped payload line>...
//! checksum <hex64>
//! ```

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Current snapshot format version; bumped on incompatible layout change.
pub const SNAPSHOT_VERSION: u32 = 1;

/// FNV-1a over `bytes` — the same constants the coverage-map signature
/// uses; stable across platforms and processes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Fingerprint a campaign configuration from its rendered parts (joined
/// with an unprintable separator so `["ab","c"]` and `["a","bc"]` differ).
pub fn fingerprint_of(parts: &[String]) -> u64 {
    let mut buf = Vec::new();
    for p in parts {
        buf.extend_from_slice(p.as_bytes());
        buf.push(0x1F);
    }
    fnv1a(&buf)
}

/// Escape one payload record for single-line storage (`\` and newline).
pub fn escape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape_line`]; `None` on a malformed escape (corrupt file).
pub fn unescape_line(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            _ => return None,
        }
    }
    Some(out)
}

/// Why a snapshot file was rejected. Each variant maps to a distinct
/// corruption mode the robustness tests inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file could not be read at all.
    Io(String),
    /// The file ends before the `checksum` trailer — a torn write or
    /// truncation.
    Truncated,
    /// The header names a different format version.
    VersionMismatch {
        /// The version token found in the header.
        found: String,
    },
    /// The header names a different snapshot kind (e.g. a greybox
    /// snapshot offered to a hunt resume).
    KindMismatch {
        /// The kind found in the header.
        found: String,
        /// The kind the caller asked for.
        expected: String,
    },
    /// The campaign-config fingerprint differs — resuming under a
    /// different seed/config would not reproduce the original report.
    FingerprintMismatch {
        /// The fingerprint recorded in the file.
        found: u64,
        /// The fingerprint of the resuming configuration.
        expected: u64,
    },
    /// The body does not hash to the recorded checksum (bit rot, partial
    /// overwrite).
    ChecksumMismatch,
    /// Structurally invalid content (bad header, bad escape, bad hex).
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "unreadable: {e}"),
            SnapshotError::Truncated => write!(f, "truncated (checksum trailer missing)"),
            SnapshotError::VersionMismatch { found } => {
                write!(
                    f,
                    "version mismatch: found {found}, expected v{SNAPSHOT_VERSION}"
                )
            }
            SnapshotError::KindMismatch { found, expected } => {
                write!(f, "kind mismatch: found `{found}`, expected `{expected}`")
            }
            SnapshotError::FingerprintMismatch { found, expected } => write!(
                f,
                "config fingerprint mismatch: found {found:016x}, expected {expected:016x}"
            ),
            SnapshotError::ChecksumMismatch => write!(f, "checksum mismatch (corrupt body)"),
            SnapshotError::Malformed(why) => write!(f, "malformed: {why}"),
        }
    }
}

/// Write `contents` to `path` atomically: write a sibling `.tmp`, then
/// rename into place. Used for snapshots, heartbeats, and every JSON
/// report the CLI emits, so a crash never leaves a half-written file
/// under the final name.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

/// Render a complete snapshot file for `kind` with the given payload.
pub fn render(kind: &str, fingerprint: u64, lines: &[String]) -> String {
    let mut body =
        format!("druzhba-snapshot v{SNAPSHOT_VERSION} {kind}\nfingerprint {fingerprint:016x}\n");
    for line in lines {
        body.push_str(&escape_line(line));
        body.push('\n');
    }
    let sum = fnv1a(body.as_bytes());
    body.push_str(&format!("checksum {sum:016x}\n"));
    body
}

/// Parse and fully validate one snapshot file's text against the expected
/// `kind` and `fingerprint`, returning the unescaped payload lines.
pub fn parse(text: &str, kind: &str, fingerprint: u64) -> Result<Vec<String>, SnapshotError> {
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() < 3 {
        return Err(SnapshotError::Truncated);
    }
    let header = lines[0]
        .strip_prefix("druzhba-snapshot ")
        .ok_or_else(|| SnapshotError::Malformed("bad header".into()))?;
    let (version, found_kind) = header
        .split_once(' ')
        .ok_or_else(|| SnapshotError::Malformed("bad header".into()))?;
    if version != format!("v{SNAPSHOT_VERSION}") {
        return Err(SnapshotError::VersionMismatch {
            found: version.to_string(),
        });
    }
    if found_kind != kind {
        return Err(SnapshotError::KindMismatch {
            found: found_kind.to_string(),
            expected: kind.to_string(),
        });
    }
    let fp_hex = lines[1]
        .strip_prefix("fingerprint ")
        .ok_or_else(|| SnapshotError::Malformed("bad fingerprint line".into()))?;
    let found_fp = u64::from_str_radix(fp_hex, 16)
        .map_err(|_| SnapshotError::Malformed("bad fingerprint hex".into()))?;
    if found_fp != fingerprint {
        return Err(SnapshotError::FingerprintMismatch {
            found: found_fp,
            expected: fingerprint,
        });
    }
    let last = lines[lines.len() - 1];
    let sum_hex = last
        .strip_prefix("checksum ")
        .ok_or(SnapshotError::Truncated)?;
    let recorded = u64::from_str_radix(sum_hex, 16).map_err(|_| SnapshotError::Truncated)?;
    // The checksum covers everything before its own line, trailing
    // newline included — recomputed from the split lines so an embedded
    // "checksum " prefix in a payload record cannot confuse parsing.
    let mut body = lines[..lines.len() - 1].join("\n");
    body.push('\n');
    if fnv1a(body.as_bytes()) != recorded {
        return Err(SnapshotError::ChecksumMismatch);
    }
    lines[2..lines.len() - 1]
        .iter()
        .map(|l| {
            unescape_line(l).ok_or_else(|| SnapshotError::Malformed("bad escape in payload".into()))
        })
        .collect()
}

/// Path of the current snapshot for `kind` in `dir`.
pub fn current_path(dir: &Path, kind: &str) -> PathBuf {
    dir.join(format!("{kind}.snapshot"))
}

/// Path of the rotated previous snapshot for `kind` in `dir`.
pub fn prev_path(dir: &Path, kind: &str) -> PathBuf {
    dir.join(format!("{kind}.snapshot.prev"))
}

/// Atomically save a snapshot, rotating the existing current snapshot to
/// `*.prev` first so one good generation always survives a crash at any
/// instant of the save.
pub fn save(dir: &Path, kind: &str, fingerprint: u64, lines: &[String]) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let current = current_path(dir, kind);
    let tmp = dir.join(format!("{kind}.snapshot.tmp"));
    fs::write(&tmp, render(kind, fingerprint, lines))?;
    if current.exists() {
        fs::rename(&current, prev_path(dir, kind))?;
    }
    fs::rename(&tmp, &current)
}

/// The result of [`load_latest`]: the payload of the newest valid
/// snapshot (or `None` for a fresh start) plus human-readable warnings
/// for every damaged candidate that was skipped on the way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loaded {
    /// Payload lines of the newest snapshot that validated, if any.
    pub lines: Option<Vec<String>>,
    /// One warning per existing-but-rejected snapshot file.
    pub warnings: Vec<String>,
}

/// Load the newest valid snapshot of `kind` from `dir`, degrading
/// gracefully: try the current file, then the rotated previous one;
/// record a warning for each candidate that exists but fails validation.
/// Missing files are not an error — a fresh start is the final fallback.
pub fn load_latest(dir: &Path, kind: &str, fingerprint: u64) -> Loaded {
    let mut warnings = Vec::new();
    for path in [current_path(dir, kind), prev_path(dir, kind)] {
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => {
                warnings.push(format!(
                    "{}: {}",
                    path.display(),
                    SnapshotError::Io(e.to_string())
                ));
                continue;
            }
        };
        match parse(&text, kind, fingerprint) {
            Ok(lines) => {
                return Loaded {
                    lines: Some(lines),
                    warnings,
                }
            }
            Err(e) => warnings.push(format!("{}: {}", path.display(), e)),
        }
    }
    Loaded {
        lines: None,
        warnings,
    }
}

/// Best-effort atomic write of the live-status heartbeat (`status.json`)
/// into the checkpoint directory: external monitors can watch campaign
/// progress without touching the snapshot files.
pub fn write_heartbeat(dir: &Path, kind: &str, completed: usize, total: usize, truncated: bool) {
    let json = format!(
        "{{\n  \"kind\": \"{kind}\",\n  \"completed\": {completed},\n  \"total\": {total},\n  \"truncated\": {truncated}\n}}\n"
    );
    let _ = fs::create_dir_all(dir);
    let _ = write_atomic(&dir.join("status.json"), &json);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("druzhba-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn payload() -> Vec<String> {
        vec![
            "record 0".to_string(),
            "multi\nline\trecord".to_string(),
            "back\\slash".to_string(),
        ]
    }

    #[test]
    fn escape_round_trips_hostile_strings() {
        for s in [
            "",
            "plain",
            "a\nb",
            "\\",
            "\\n",
            "tab\there",
            "checksum 123",
        ] {
            assert_eq!(unescape_line(&escape_line(s)).as_deref(), Some(s));
        }
        assert_eq!(
            unescape_line("lone\\"),
            None,
            "dangling escape is malformed"
        );
        assert_eq!(unescape_line("bad\\x"), None);
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = tmpdir("roundtrip");
        save(&dir, "hunt", 42, &payload()).unwrap();
        let loaded = load_latest(&dir, "hunt", 42);
        assert_eq!(loaded.lines, Some(payload()));
        assert!(loaded.warnings.is_empty());
    }

    #[test]
    fn truncation_is_detected_and_falls_back_to_prev() {
        let dir = tmpdir("trunc");
        save(&dir, "hunt", 7, &["gen one".to_string()]).unwrap();
        save(&dir, "hunt", 7, &["gen two".to_string()]).unwrap();
        let current = current_path(&dir, "hunt");
        let text = fs::read_to_string(&current).unwrap();
        fs::write(&current, &text[..text.len() / 2]).unwrap();
        let loaded = load_latest(&dir, "hunt", 7);
        assert_eq!(loaded.lines, Some(vec!["gen one".to_string()]), "prev wins");
        assert_eq!(loaded.warnings.len(), 1);
        assert!(
            loaded.warnings[0].contains("truncated"),
            "{:?}",
            loaded.warnings
        );
    }

    #[test]
    fn bit_flip_fails_the_checksum() {
        let dir = tmpdir("flip");
        save(&dir, "hunt", 7, &payload()).unwrap();
        let current = current_path(&dir, "hunt");
        let mut bytes = fs::read(&current).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&current, &bytes).unwrap();
        let loaded = load_latest(&dir, "hunt", 7);
        assert_eq!(loaded.lines, None);
        assert!(
            loaded
                .warnings
                .iter()
                .any(|w| w.contains("checksum mismatch")
                    || w.contains("malformed")
                    || w.contains("truncated")),
            "{:?}",
            loaded.warnings
        );
    }

    #[test]
    fn version_bump_is_rejected() {
        let dir = tmpdir("version");
        save(&dir, "hunt", 7, &payload()).unwrap();
        let current = current_path(&dir, "hunt");
        let text = fs::read_to_string(&current).unwrap().replacen(
            "druzhba-snapshot v1 ",
            "druzhba-snapshot v999 ",
            1,
        );
        fs::write(&current, text).unwrap();
        let loaded = load_latest(&dir, "hunt", 7);
        assert_eq!(loaded.lines, None);
        assert!(
            loaded.warnings[0].contains("version mismatch"),
            "{:?}",
            loaded.warnings
        );
    }

    #[test]
    fn kind_and_fingerprint_mismatches_are_rejected() {
        let dir = tmpdir("kindfp");
        save(&dir, "hunt", 7, &payload()).unwrap();
        let as_greybox = load_latest(&dir, "greybox", 7);
        assert_eq!(as_greybox.lines, None);
        let other_config = load_latest(&dir, "hunt", 8);
        assert_eq!(other_config.lines, None);
        assert!(other_config.warnings[0].contains("fingerprint mismatch"));
    }

    #[test]
    fn missing_directory_is_a_clean_fresh_start() {
        let loaded = load_latest(Path::new("/nonexistent/druzhba-snap"), "hunt", 7);
        assert_eq!(loaded.lines, None);
        assert!(loaded.warnings.is_empty());
    }
}
