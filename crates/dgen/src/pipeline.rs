//! Pipeline generation: turning (dimensions, ALU specs, machine code) into
//! an executable pipeline description.
//!
//! Structure (paper Fig. 2): every stage holds `width` stateless ALUs and
//! `width` stateful ALUs. Each ALU operand is fed by an *input multiplexer*
//! selecting one PHV container; after the ALUs execute, one *output
//! multiplexer per PHV container* selects what the container carries into
//! the next stage — the incoming value (pass-through), a stateless ALU
//! output, or a stateful ALU output.
//!
//! Machine-code validation happens here, up front: a program that is
//! missing pairs or programs a primitive out of its domain is rejected
//! before simulation — the "machine code was incompatible with the
//! pipeline" failure class of the paper's case study (§5.2).

use std::collections::HashMap;
use std::rc::Rc;

use druzhba_alu_dsl::{AluSpec, HoleDomain};
use druzhba_core::coverage::{edge_id, CoverageMap};
use druzhba_core::names::{self, AluKind};
use druzhba_core::trace::StateSnapshot;
use druzhba_core::{Error, MachineCode, Phv, PipelineConfig, Result, Value};

use crate::bytecode::BytecodeProgram;
use crate::fused::FusedPipeline;
use crate::lanes::{self, LanePipeline};
use crate::opt::specialize;
use crate::OptLevel;

/// The inputs to dgen: pipeline dimensions plus the stateful and stateless
/// ALU structure shared by every grid position.
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    /// Depth, width, and PHV length.
    pub config: PipelineConfig,
    /// The stateful ALU instantiated at every (stage, slot).
    pub stateful_alu: AluSpec,
    /// The stateless ALU instantiated at every (stage, slot).
    pub stateless_alu: AluSpec,
}

impl PipelineSpec {
    /// Create a spec, validating the configuration and ALU kinds.
    pub fn new(
        config: PipelineConfig,
        stateful_alu: AluSpec,
        stateless_alu: AluSpec,
    ) -> Result<Self> {
        config.validate()?;
        if stateful_alu.kind != AluKind::Stateful {
            return Err(Error::InvalidConfig {
                message: format!("ALU `{}` is not stateful", stateful_alu.name),
            });
        }
        if stateless_alu.kind != AluKind::Stateless {
            return Err(Error::InvalidConfig {
                message: format!("ALU `{}` is not stateless", stateless_alu.name),
            });
        }
        Ok(PipelineSpec {
            config,
            stateful_alu,
            stateless_alu,
        })
    }
}

/// Every machine-code name the pipeline expects, with its legal domain.
///
/// The order is deterministic: stage by stage; within a stage, stateless
/// ALUs (operand muxes then internal holes), stateful ALUs likewise, then
/// output muxes.
pub fn expected_machine_code(spec: &PipelineSpec) -> Vec<(String, HoleDomain)> {
    let cfg = &spec.config;
    let mut out = Vec::new();
    for stage in 0..cfg.depth {
        for (kind, alu) in [
            (AluKind::Stateless, &spec.stateless_alu),
            (AluKind::Stateful, &spec.stateful_alu),
        ] {
            for slot in 0..cfg.width {
                for operand in 0..alu.operand_count() {
                    out.push((
                        names::operand_mux(kind, stage, slot, operand),
                        HoleDomain::Choice(cfg.phv_length as u32),
                    ));
                }
                for hole in &alu.holes {
                    out.push((names::alu_hole(kind, stage, slot, &hole.local), hole.domain));
                }
            }
        }
        for container in 0..cfg.phv_length {
            out.push((
                names::output_mux(stage, container),
                HoleDomain::Choice(cfg.output_mux_inputs() as u32),
            ));
        }
    }
    out
}

/// Validate `mc` against the pipeline's expected names and domains,
/// returning every violation (empty means compatible).
pub fn validate_machine_code(spec: &PipelineSpec, mc: &MachineCode) -> Vec<Error> {
    let mut errors = Vec::new();
    for (name, domain) in expected_machine_code(spec) {
        match mc.try_get(&name) {
            None => errors.push(Error::MissingMachineCode { name }),
            Some(v) if !domain.contains(v) => errors.push(Error::MachineCodeOutOfRange {
                name,
                value: v,
                limit: domain.bound().min(u64::from(u32::MAX)) as u32,
            }),
            Some(_) => {}
        }
    }
    errors
}

/// How an ALU unit executes its body.
#[derive(Debug, Clone)]
enum Backend {
    /// Version 1: interpret the shared AST, fetching every hole value from
    /// a hash map at each access.
    Unoptimized { holes: HashMap<String, Value> },
    /// Version 2: interpret a hole-free specialized AST.
    Specialized { spec: AluSpec },
    /// Version 3: run flattened bytecode.
    Compiled { program: BytecodeProgram },
}

/// One ALU instance at a grid position, with its input-mux configuration
/// and (for stateful ALUs) its local state storage.
#[derive(Debug, Clone)]
pub struct AluUnit {
    kind: AluKind,
    stage: usize,
    slot: usize,
    base_spec: Rc<AluSpec>,
    backend: Backend,
    /// Resolved input-mux selections (optimized backends). For the
    /// unoptimized backend the selections live in `mux_holes` and are
    /// fetched per tick.
    operand_sel: Vec<usize>,
    /// Unoptimized only: operand mux machine code, looked up at runtime.
    mux_holes: HashMap<String, Value>,
    /// State storage (stateful ALUs; empty otherwise).
    state: Vec<Value>,
    /// Reused per-execution operand buffer (no per-PHV allocation).
    operand_buf: Vec<Value>,
    /// Reused bytecode operand stack (compiled backend only), sized to the
    /// program's `max_stack` at generation time.
    stack_buf: Vec<Value>,
    /// Precomputed coverage site id for this grid position.
    site: u32,
}

impl AluUnit {
    /// Stateful or stateless.
    pub fn kind(&self) -> AluKind {
        self.kind
    }

    /// Grid position.
    pub fn position(&self) -> (usize, usize) {
        (self.stage, self.slot)
    }

    /// The ALU's current state-variable values.
    pub fn state(&self) -> &[Value] {
        &self.state
    }

    /// The underlying (unspecialized) ALU spec.
    pub fn spec(&self) -> &AluSpec {
        &self.base_spec
    }

    /// The coverage site id of this grid position (the `site` argument of
    /// every edge the unit records).
    pub fn site(&self) -> u32 {
        self.site
    }

    /// The unoptimized backend's hole environment, if this unit fetches
    /// hole values at runtime (version 1).
    pub fn hole_env(&self) -> Option<&HashMap<String, Value>> {
        match &self.backend {
            Backend::Unoptimized { holes } => Some(holes),
            _ => None,
        }
    }

    /// The specialized (hole-free) spec, if this unit interprets one
    /// (version 2).
    pub fn specialized_spec(&self) -> Option<&AluSpec> {
        match &self.backend {
            Backend::Specialized { spec } => Some(spec),
            _ => None,
        }
    }

    /// The compiled bytecode program, if this unit runs one (version 3).
    pub fn bytecode(&self) -> Option<&BytecodeProgram> {
        match &self.backend {
            Backend::Compiled { program } => Some(program),
            _ => None,
        }
    }

    /// The container index feeding operand `k`.
    pub fn operand_selection(&self, k: usize) -> usize {
        match &self.backend {
            Backend::Unoptimized { .. } => self
                .mux_holes
                .get(&format!("operand_mux_{k}"))
                .copied()
                .unwrap_or(0) as usize,
            _ => self.operand_sel.get(k).copied().unwrap_or(0),
        }
    }

    /// Execute the ALU once against the stage-input PHV; returns the ALU's
    /// PHV-visible output and commits any state update. The operand buffer
    /// and (for the compiled backend) the bytecode operand stack are
    /// generation-time allocations reused across PHVs.
    pub fn execute(&mut self, phv: &Phv) -> Value {
        self.execute_cov(phv, None)
    }

    /// Like [`AluUnit::execute`], optionally recording coverage edges:
    /// the operand-mux selections feeding this execution plus the body's
    /// branch/opcode-arm decisions (see [`crate::eval::eval_with_coverage`]
    /// and [`BytecodeProgram::run_with_coverage`]).
    pub fn execute_cov(&mut self, phv: &Phv, mut cov: Option<&mut CoverageMap>) -> Value {
        self.operand_buf.clear();
        match &self.backend {
            Backend::Unoptimized { .. } => {
                // Version 1: the input-mux helper reads its machine code
                // from the hash map on every invocation.
                for k in 0..self.base_spec.operand_count() {
                    let sel = self
                        .mux_holes
                        .get(&format!("operand_mux_{k}"))
                        .copied()
                        .unwrap_or(0) as usize;
                    self.operand_buf.push(phv.get(sel));
                }
            }
            _ => {
                for &sel in &self.operand_sel {
                    self.operand_buf.push(phv.get(sel));
                }
            }
        }
        if let Some(cov) = cov.as_deref_mut() {
            // Input-mux selection edges: resolved at generation time, so
            // they vary with the machine code, not the input — they give
            // mutated programs distinct coverage signatures.
            for (k, &sel) in self.operand_sel.iter().enumerate() {
                cov.hit(edge_id(self.site, 0x4000 + k as u32, sel as Value));
            }
        }
        match &self.backend {
            Backend::Unoptimized { holes } => {
                crate::eval::eval_with_coverage(
                    &self.base_spec,
                    holes,
                    &self.operand_buf,
                    &mut self.state,
                    cov,
                    self.site,
                )
                .output
            }
            Backend::Specialized { spec } => {
                // The specialized spec contains no holes; an empty map (no
                // allocation) satisfies the evaluator's signature.
                crate::eval::eval_with_coverage(
                    spec,
                    &HashMap::new(),
                    &self.operand_buf,
                    &mut self.state,
                    cov,
                    self.site,
                )
                .output
            }
            Backend::Compiled { program } => program.run_with_coverage(
                &self.operand_buf,
                &mut self.state,
                &mut self.stack_buf,
                cov,
                self.site,
            ),
        }
    }

    /// Reset state variables to zero.
    pub fn reset(&mut self) {
        self.state.fill(0);
    }
}

/// One pipeline stage: its ALUs and output-mux configuration.
#[derive(Debug, Clone)]
pub struct Stage {
    stateless: Vec<AluUnit>,
    stateful: Vec<AluUnit>,
    /// Resolved output-mux selections per container (optimized backends).
    output_sel: Vec<usize>,
    /// Unoptimized only: output-mux machine code fetched per tick, keyed by
    /// full machine-code name.
    output_holes: HashMap<String, Value>,
    unoptimized: bool,
    stage_index: usize,
    /// Reused per-execution ALU output buffers (no per-PHV allocation).
    stateless_out: Vec<Value>,
    stateful_out: Vec<Value>,
}

impl Stage {
    /// The stage's stateless ALUs.
    pub fn stateless_alus(&self) -> &[AluUnit] {
        &self.stateless
    }

    /// The stage's stateful ALUs.
    pub fn stateful_alus(&self) -> &[AluUnit] {
        &self.stateful
    }

    /// The output-mux selection for a container.
    pub fn output_selection(&self, container: usize) -> usize {
        if self.unoptimized {
            self.output_holes
                .get(&names::output_mux(self.stage_index, container))
                .copied()
                .unwrap_or(0) as usize
        } else {
            self.output_sel.get(container).copied().unwrap_or(0)
        }
    }

    /// Execute the stage: run every ALU against the input PHV, then apply
    /// the output muxes to produce the next PHV.
    pub fn execute(&mut self, input: &Phv) -> Phv {
        let mut out = input.clone();
        self.execute_in_place(&mut out);
        out
    }

    /// Execute the stage in place: every ALU reads the incoming PHV, then
    /// the output muxes overwrite exactly the containers they drive
    /// (pass-through containers are untouched). No heap allocation.
    pub fn execute_in_place(&mut self, phv: &mut Phv) {
        self.execute_in_place_cov(phv, None);
    }

    /// Like [`Stage::execute_in_place`], optionally recording coverage:
    /// every ALU's input-mux and body edges plus this stage's output-mux
    /// selections. Still allocation-free.
    pub fn execute_in_place_cov(&mut self, phv: &mut Phv, mut cov: Option<&mut CoverageMap>) {
        let width = self.stateless.len();
        self.stateless_out.clear();
        for alu in &mut self.stateless {
            self.stateless_out
                .push(alu.execute_cov(phv, cov.as_deref_mut()));
        }
        self.stateful_out.clear();
        for alu in &mut self.stateful {
            self.stateful_out
                .push(alu.execute_cov(phv, cov.as_deref_mut()));
        }
        for container in 0..phv.len() {
            let sel = self.output_selection(container);
            if let Some(cov) = cov.as_deref_mut() {
                cov.hit(edge_id(
                    0x0A00_0000 | self.stage_index as u32,
                    container as u32,
                    sel as Value,
                ));
            }
            if sel == 0 {
                continue;
            }
            let v = if sel <= width {
                self.stateless_out[sel - 1]
            } else {
                self.stateful_out[sel - 1 - width]
            };
            phv.set(container, v);
        }
    }
}

/// An executable pipeline description: the artifact dgen generates.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
    opt_level: OptLevel,
    /// Per-stage structure (empty at [`OptLevel::Fused`], where the whole
    /// pipeline is one register program).
    stages: Vec<Stage>,
    /// The fused whole-pipeline register program ([`OptLevel::Fused`] only).
    fused: Option<FusedPipeline>,
    /// Lazily lane-lowered form of `fused`, cached on the first
    /// [`Pipeline::process_batch_lanes`] call (one lowering serves every
    /// lane width).
    lanes: Option<Box<LanePipeline>>,
    /// Optional execution-coverage map ([`Pipeline::enable_coverage`]);
    /// allocated once, reused allocation-free across PHVs.
    cov: Option<Box<CoverageMap>>,
}

impl Pipeline {
    /// Generate a pipeline from its spec and machine code at the given
    /// optimization level.
    ///
    /// Fails with [`Error::MissingMachineCode`] /
    /// [`Error::MachineCodeOutOfRange`] if the program is incompatible with
    /// the pipeline.
    pub fn generate(spec: &PipelineSpec, mc: &MachineCode, opt_level: OptLevel) -> Result<Self> {
        if let Some(err) = validate_machine_code(spec, mc).into_iter().next() {
            return Err(err);
        }
        // The hostile-trap scan sits after validation so the panic models a
        // backend crash on *valid* input — the case panic isolation exists
        // for. Static passes never build a pipeline, so they never trip it.
        druzhba_core::hostile::trip_if_hostile(mc);
        let cfg = spec.config;
        if opt_level == OptLevel::Fused {
            return Ok(Pipeline {
                config: cfg,
                opt_level,
                stages: Vec::new(),
                fused: Some(FusedPipeline::fuse(spec, mc)),
                lanes: None,
                cov: None,
            });
        }
        let stateless_rc = Rc::new(spec.stateless_alu.clone());
        let stateful_rc = Rc::new(spec.stateful_alu.clone());

        let mut stages = Vec::with_capacity(cfg.depth);
        for stage_idx in 0..cfg.depth {
            let build_units = |kind: AluKind, base: &Rc<AluSpec>| -> Vec<AluUnit> {
                (0..cfg.width)
                    .map(|slot| build_unit(kind, stage_idx, slot, base, mc, opt_level))
                    .collect()
            };
            let stateless = build_units(AluKind::Stateless, &stateless_rc);
            let stateful = build_units(AluKind::Stateful, &stateful_rc);

            let mut output_sel = Vec::with_capacity(cfg.phv_length);
            let mut output_holes = HashMap::new();
            for container in 0..cfg.phv_length {
                let name = names::output_mux(stage_idx, container);
                let v = mc.try_get(&name).expect("validated above");
                output_sel.push(v as usize);
                output_holes.insert(name, v);
            }
            stages.push(Stage {
                stateless,
                stateful,
                output_sel,
                output_holes,
                unoptimized: opt_level == OptLevel::Unoptimized,
                stage_index: stage_idx,
                stateless_out: Vec::with_capacity(cfg.width),
                stateful_out: Vec::with_capacity(cfg.width),
            });
        }
        Ok(Pipeline {
            config: cfg,
            opt_level,
            stages,
            fused: None,
            lanes: None,
            cov: None,
        })
    }

    /// Attach (or reset) an execution-coverage map: subsequent PHVs record
    /// branch, mux-selection, and opcode-arm edges into it. One allocation
    /// here; the instrumented tick loop itself stays allocation-free on
    /// every backend.
    pub fn enable_coverage(&mut self) {
        match &mut self.cov {
            Some(cov) => cov.clear(),
            None => self.cov = Some(Box::new(CoverageMap::new())),
        }
    }

    /// The coverage accumulated since [`Pipeline::enable_coverage`], if
    /// enabled.
    pub fn coverage(&self) -> Option<&CoverageMap> {
        self.cov.as_deref()
    }

    /// Zero the attached coverage map (no-op when disabled), keeping its
    /// allocation for the next execution.
    pub fn clear_coverage(&mut self) {
        if let Some(cov) = &mut self.cov {
            cov.clear();
        }
    }

    /// The pipeline's dimensions.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The optimization level the pipeline was generated at.
    pub fn opt_level(&self) -> OptLevel {
        self.opt_level
    }

    /// The pipeline's stages (for structural inspection). Empty at
    /// [`OptLevel::Fused`], where per-stage structure is compiled away into
    /// one register program (see [`Pipeline::fused_program`]).
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The fused whole-pipeline register program, at [`OptLevel::Fused`].
    pub fn fused_program(&self) -> Option<&FusedPipeline> {
        self.fused.as_ref()
    }

    /// Execute one stage against a PHV (used by the tick-accurate
    /// simulator, which holds one in-flight PHV per stage).
    pub fn execute_stage(&mut self, stage: usize, input: &Phv) -> Phv {
        let mut out = input.clone();
        self.execute_stage_in_place(stage, &mut out);
        out
    }

    /// Execute one stage in place, reusing generation-time buffers: zero
    /// heap allocations per call on every backend.
    pub fn execute_stage_in_place(&mut self, stage: usize, phv: &mut Phv) {
        let cov = self.cov.as_deref_mut();
        match &mut self.fused {
            Some(f) => f.execute_stage_in_place_cov(stage, phv, cov),
            None => self.stages[stage].execute_in_place_cov(phv, cov),
        }
    }

    /// Run a single PHV through every stage immediately.
    ///
    /// Because state is local to each stateful ALU and PHVs traverse stages
    /// in FIFO order, per-PHV full traversal produces results identical to
    /// tick-accurate pipelined execution — an invariant the dsim test suite
    /// checks by property test.
    pub fn process(&mut self, phv: &Phv) -> Phv {
        let mut cur = phv.clone();
        self.process_in_place(&mut cur);
        cur
    }

    /// Run a single PHV through every stage in place — the zero-allocation
    /// fast path ([`OptLevel::Fused`] additionally performs no per-stage
    /// dispatch at all).
    pub fn process_in_place(&mut self, phv: &mut Phv) {
        let mut cov = self.cov.as_deref_mut();
        match &mut self.fused {
            Some(f) => f.process_in_place_cov(phv, cov),
            None => {
                for stage in &mut self.stages {
                    stage.execute_in_place_cov(phv, cov.as_deref_mut());
                }
            }
        }
    }

    /// Push a batch of PHVs through the whole pipeline in order, each in
    /// place — the batched entry point the fuzzing campaigns and
    /// benchmarks drive.
    pub fn process_batch(&mut self, phvs: &mut [Phv]) {
        for phv in phvs {
            self.process_in_place(phv);
        }
    }

    /// Process a batch through the SIMD/SoA lane engine ([`crate::lanes`])
    /// at the given lane width, bit-identically to
    /// [`Pipeline::process_batch`]: same outputs, same final state, same
    /// coverage totals, for every width in [`crate::lanes::LANE_WIDTHS`]
    /// (including partial final chunks, the empty batch, and single-PHV
    /// batches — masked-out lanes never contribute to state or coverage).
    ///
    /// Falls back to the scalar path when the width is unsupported or the
    /// pipeline is not [`OptLevel::Fused`], so callers can pass a
    /// user-supplied width straight through.
    pub fn process_batch_lanes(&mut self, phvs: &mut [Phv], width: usize) {
        if !lanes::supported_width(width) || self.fused.is_none() {
            self.process_batch(phvs);
            return;
        }
        if self.lanes.is_none() {
            match self.fused.as_ref().and_then(LanePipeline::lower) {
                Some(lp) => self.lanes = Some(Box::new(lp)),
                None => {
                    // Not lane-lowerable (the fuser never emits such
                    // programs, but the fallback keeps the API total).
                    self.process_batch(phvs);
                    return;
                }
            }
        }
        let lp = self.lanes.as_mut().expect("cached above");
        let fused = self.fused.as_mut().expect("checked above");
        lp.process_batch_cov(width, fused.state_mut(), phvs, self.cov.as_deref_mut());
    }

    /// Snapshot of every stateful ALU's state: `snapshot[stage][slot]`.
    pub fn state_snapshot(&self) -> StateSnapshot {
        match &self.fused {
            Some(f) => f.state_snapshot(),
            None => self
                .stages
                .iter()
                .map(|s| s.stateful.iter().map(|a| a.state.clone()).collect())
                .collect(),
        }
    }

    /// Reset all stateful ALU state to zero.
    pub fn reset(&mut self) {
        match &mut self.fused {
            Some(f) => f.reset(),
            None => {
                for stage in &mut self.stages {
                    for alu in &mut stage.stateful {
                        alu.reset();
                    }
                }
            }
        }
    }
}

fn build_unit(
    kind: AluKind,
    stage: usize,
    slot: usize,
    base: &Rc<AluSpec>,
    mc: &MachineCode,
    opt_level: OptLevel,
) -> AluUnit {
    // Collect the unit's hole values, keyed by local name.
    let mut local_holes = HashMap::new();
    for hole in &base.holes {
        let full = names::alu_hole(kind, stage, slot, &hole.local);
        local_holes.insert(hole.local.clone(), mc.try_get(&full).expect("validated"));
    }
    let mut mux_holes = HashMap::new();
    let mut operand_sel = Vec::new();
    for k in 0..base.operand_count() {
        let full = names::operand_mux(kind, stage, slot, k);
        let v = mc.try_get(&full).expect("validated");
        mux_holes.insert(format!("operand_mux_{k}"), v);
        operand_sel.push(v as usize);
    }

    let backend = match opt_level {
        OptLevel::Unoptimized => Backend::Unoptimized { holes: local_holes },
        OptLevel::Scc => Backend::Specialized {
            spec: specialize(base, &local_holes),
        },
        OptLevel::SccInline => Backend::Compiled {
            program: BytecodeProgram::compile(&specialize(base, &local_holes)),
        },
        OptLevel::Fused => unreachable!("OptLevel::Fused builds a FusedPipeline, not AluUnits"),
    };
    let state_len = if kind == AluKind::Stateful {
        base.state_vars.len()
    } else {
        0
    };
    let stack_cap = match &backend {
        Backend::Compiled { program } => program.max_stack(),
        _ => 0,
    };
    AluUnit {
        kind,
        stage,
        slot,
        base_spec: Rc::clone(base),
        backend,
        operand_sel,
        mux_holes,
        state: vec![0; state_len],
        operand_buf: Vec::with_capacity(base.operand_count()),
        stack_buf: Vec::with_capacity(stack_cap),
        // Distinct coverage site per (kind, stage, slot): stateless and
        // stateful ALUs at the same grid position must not collide.
        site: ((kind as u32 + 1) << 20) | ((stage as u32) << 10) | slot as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use druzhba_alu_dsl::atoms::atom;

    /// A machine code programming every primitive to 0 (always in-domain).
    pub(crate) fn zero_machine_code(spec: &PipelineSpec) -> MachineCode {
        MachineCode::from_pairs(
            expected_machine_code(spec)
                .into_iter()
                .map(|(name, _)| (name, 0)),
        )
    }

    fn small_spec() -> PipelineSpec {
        PipelineSpec::new(
            PipelineConfig::new(2, 2),
            atom("raw").unwrap(),
            atom("stateless_mux").unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn expected_names_cover_all_primitives() {
        let spec = small_spec();
        let names: Vec<String> = expected_machine_code(&spec)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        // 2 stages x (2 stateless x (2 operand muxes + 2 holes)
        //            + 2 stateful x (2 operand muxes + 4 holes)
        //            + 2 output muxes)
        assert_eq!(names.len(), 2 * (2 * (2 + 2) + 2 * (2 + 4) + 2));
        assert!(names.contains(&"stateless_alu_0_0_operand_mux_0".to_string()));
        assert!(names.contains(&"stateful_alu_1_1_mux3_0".to_string()));
        assert!(names.contains(&"output_mux_phv_1_1".to_string()));
        // No duplicates.
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn missing_pair_rejected() {
        let spec = small_spec();
        let mut mc = zero_machine_code(&spec);
        mc.remove("output_mux_phv_0_1");
        let err = Pipeline::generate(&spec, &mc, OptLevel::SccInline).unwrap_err();
        assert_eq!(
            err,
            Error::MissingMachineCode {
                name: "output_mux_phv_0_1".into()
            }
        );
        assert!(err.is_incompatibility());
    }

    #[test]
    fn out_of_range_value_rejected() {
        let spec = small_spec();
        let mut mc = zero_machine_code(&spec);
        // Output mux domain here is 2*2+1 = 5.
        mc.set("output_mux_phv_0_0", 5);
        let err = Pipeline::generate(&spec, &mc, OptLevel::Scc).unwrap_err();
        assert!(matches!(err, Error::MachineCodeOutOfRange { .. }));
    }

    #[test]
    fn pass_through_by_default() {
        let spec = small_spec();
        let mc = zero_machine_code(&spec);
        // All output muxes are 0 => PHV passes through unchanged.
        for level in OptLevel::ALL {
            let mut p = Pipeline::generate(&spec, &mc, level).unwrap();
            let out = p.process(&Phv::new(vec![17, 23]));
            assert_eq!(out.containers(), &[17, 23], "{level:?}");
        }
    }

    #[test]
    fn stateful_accumulation_visible_across_phvs() {
        // Program stage 0 stateful ALU 0 as state += pkt (operand 0 from
        // container 0), and write its output (old state) to container 1.
        let spec = small_spec();
        let mut mc = zero_machine_code(&spec);
        // raw: state_0 = arith_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()))
        // arith=0 (add), opt_0=0 (keep state), mux3_0=0 (pkt_0), const_0=0.
        // Defaults of zero already give that; select container 0 for
        // operand 0 (also the default).
        // Route container 1 from stateful ALU 0: selector = width+1 = 3.
        mc.set("output_mux_phv_0_1", 3);
        for level in OptLevel::ALL {
            let mut p = Pipeline::generate(&spec, &mc, level).unwrap();
            let out1 = p.process(&Phv::new(vec![5, 0]));
            // Old state was 0.
            assert_eq!(out1.get(1), 0, "{level:?}");
            let out2 = p.process(&Phv::new(vec![7, 0]));
            // Old state was 5 after the first PHV.
            assert_eq!(out2.get(1), 5, "{level:?}");
            assert_eq!(p.state_snapshot()[0][0], vec![12], "{level:?}");
        }
    }

    #[test]
    fn all_backends_agree_on_random_machine_code() {
        use druzhba_core::ValueGen;
        let spec = PipelineSpec::new(
            PipelineConfig::new(2, 2),
            atom("if_else_raw").unwrap(),
            atom("stateless_arith").unwrap(),
        )
        .unwrap();
        let mut gen = ValueGen::new(99, 32);
        for trial in 0..20 {
            // Random in-domain machine code.
            let mc = MachineCode::from_pairs(expected_machine_code(&spec).into_iter().map(
                |(name, domain)| {
                    let bound = domain.bound().min(1 << 8) as u32;
                    (name, gen.value_below(bound))
                },
            ));
            let mut pipes: Vec<Pipeline> = OptLevel::ALL
                .iter()
                .map(|&l| Pipeline::generate(&spec, &mc, l).unwrap())
                .collect();
            for i in 0..10 {
                let phv = Phv::new(gen.values(2));
                let outs: Vec<Phv> = pipes.iter_mut().map(|p| p.process(&phv)).collect();
                for pair in outs.windows(2) {
                    assert_eq!(pair[0], pair[1], "trial {trial} phv {i}");
                }
            }
            let snaps: Vec<_> = pipes.iter().map(|p| p.state_snapshot()).collect();
            for pair in snaps.windows(2) {
                assert_eq!(pair[0], pair[1], "trial {trial} state");
            }
        }
    }

    #[test]
    fn reset_clears_state() {
        let spec = small_spec();
        let mc = zero_machine_code(&spec);
        let mut p = Pipeline::generate(&spec, &mc, OptLevel::SccInline).unwrap();
        p.process(&Phv::new(vec![5, 5]));
        assert_ne!(p.state_snapshot()[0][0][0], 0);
        p.reset();
        assert!(p
            .state_snapshot()
            .iter()
            .flatten()
            .flatten()
            .all(|&v| v == 0));
    }

    #[test]
    fn fused_pipeline_has_program_not_stages() {
        let spec = small_spec();
        let mc = zero_machine_code(&spec);
        let p = Pipeline::generate(&spec, &mc, OptLevel::Fused).unwrap();
        assert!(p.stages().is_empty(), "fusion compiles stages away");
        assert!(p.fused_program().is_some());
        assert_eq!(p.opt_level(), OptLevel::Fused);
    }

    #[test]
    fn process_batch_matches_sequential_processing() {
        use druzhba_core::ValueGen;
        let spec = PipelineSpec::new(
            PipelineConfig::new(2, 2),
            atom("pred_raw").unwrap(),
            atom("stateless_arith").unwrap(),
        )
        .unwrap();
        let mut gen = ValueGen::new(4242, 32);
        let mc = MachineCode::from_pairs(expected_machine_code(&spec).into_iter().map(
            |(name, domain)| {
                let bound = domain.bound().min(1 << 8) as u32;
                (name, gen.value_below(bound))
            },
        ));
        for level in OptLevel::ALL {
            let mut sequential = Pipeline::generate(&spec, &mc, level).unwrap();
            let mut batched = Pipeline::generate(&spec, &mc, level).unwrap();
            let phvs: Vec<Phv> = (0..30).map(|_| Phv::new(gen.values(2))).collect();
            let expected: Vec<Phv> = phvs.iter().map(|p| sequential.process(p)).collect();
            let mut batch = phvs;
            batched.process_batch(&mut batch);
            assert_eq!(batch, expected, "{level:?}");
            assert_eq!(
                batched.state_snapshot(),
                sequential.state_snapshot(),
                "{level:?}"
            );
        }
    }

    #[test]
    fn coverage_records_input_dependent_edges_on_every_backend() {
        // if_else_raw branches on a state/packet comparison, so different
        // inputs reach different arms — coverage must see that.
        let spec = PipelineSpec::new(
            PipelineConfig::with_phv_length(2, 1, 2),
            atom("if_else_raw").unwrap(),
            atom("stateless_arith").unwrap(),
        )
        .unwrap();
        let mut mc = zero_machine_code(&spec);
        // Compare state against C()=1 (rel_op 2 is ==) so pkt values
        // influence which arm runs on subsequent PHVs.
        mc.set("stateful_alu_0_0_rel_op_0", 2);
        mc.set("stateful_alu_0_0_mux3_0", 2);
        mc.set("stateful_alu_0_0_const_0", 1);
        for level in OptLevel::ALL {
            let mut p = Pipeline::generate(&spec, &mc, level).unwrap();
            assert!(p.coverage().is_none(), "{level:?}: off by default");
            p.enable_coverage();
            p.process(&Phv::new(vec![0, 0]));
            let low = p.coverage().unwrap().clone();
            assert!(low.edges_covered() > 0, "{level:?}: edges recorded");
            p.clear_coverage();
            p.reset();
            p.process(&Phv::new(vec![1, 0]));
            p.process(&Phv::new(vec![7, 0]));
            let high = p.coverage().unwrap().clone();
            assert_ne!(
                low.signature(),
                high.signature(),
                "{level:?}: different inputs, different coverage"
            );
        }
    }

    #[test]
    fn coverage_does_not_change_behaviour() {
        use druzhba_core::ValueGen;
        let spec = PipelineSpec::new(
            PipelineConfig::new(2, 2),
            atom("pred_raw").unwrap(),
            atom("stateless_full").unwrap(),
        )
        .unwrap();
        let mut gen = ValueGen::new(0xC0_7E57, 32);
        let mc = MachineCode::from_pairs(expected_machine_code(&spec).into_iter().map(
            |(name, domain)| {
                let bound = domain.bound().min(1 << 8) as u32;
                (name, gen.value_below(bound))
            },
        ));
        for level in OptLevel::ALL {
            let mut plain = Pipeline::generate(&spec, &mc, level).unwrap();
            let mut inst = Pipeline::generate(&spec, &mc, level).unwrap();
            inst.enable_coverage();
            for _ in 0..20 {
                let phv = Phv::new(gen.values(2));
                assert_eq!(plain.process(&phv), inst.process(&phv), "{level:?}");
            }
            assert_eq!(plain.state_snapshot(), inst.state_snapshot());
        }
    }

    #[test]
    fn structural_accessors() {
        let spec = small_spec();
        let mc = zero_machine_code(&spec);
        let p = Pipeline::generate(&spec, &mc, OptLevel::SccInline).unwrap();
        assert_eq!(p.stages().len(), 2);
        assert_eq!(p.stages()[0].stateless_alus().len(), 2);
        assert_eq!(p.stages()[0].stateful_alus().len(), 2);
        assert_eq!(p.stages()[0].stateful_alus()[1].position(), (0, 1));
        assert_eq!(p.stages()[0].output_selection(0), 0);
        assert_eq!(p.stages()[0].stateless_alus()[0].operand_selection(0), 0);
    }
}
