//! Soundness of the abstract interpreter: the concrete result of every
//! backend is contained in the abstract result, on both domains at once
//! ([`AbsVal::contains`] checks the interval *and* the known-bits member
//! of the reduced product).
//!
//! Two abstraction levels are exercised per program:
//!
//! - **top input** — the abstract fixpoint from an unconstrained input
//!   PHV must contain the output and state of *any* concrete trace;
//! - **constant input** — the abstraction of one concrete packet must
//!   contain every run in which that same packet repeats (the state
//!   fixpoint covers any packet count).
//!
//! Covered: all 12 Table 1 Domino programs across all four dgen backends,
//! and all 5 P4 corpus programs against both the HLIR interpreter and the
//! lowered fused `MatInstr` pipeline.

use proptest::prelude::*;

use druzhba::analysis::{abstract_input, analyze_hlir, analyze_mat, analyze_pipeline, AbsVal};
use druzhba::core::Trace;
use druzhba::dgen::mat::MatPipeline;
use druzhba::dgen::{OptLevel, Pipeline};
use druzhba::dsim::p4::P4Traffic;
use druzhba::dsim::TrafficGenerator;
use druzhba::programs::{P4_PROGRAMS, PROGRAMS};

const LEVELS: [OptLevel; 4] = [
    OptLevel::Unoptimized,
    OptLevel::Scc,
    OptLevel::SccInline,
    OptLevel::Fused,
];

/// Assert `abs` contains the concrete state snapshot (same
/// `[stage][slot][var]` shape on both sides).
fn check_state(
    program: &str,
    level: OptLevel,
    abs: &[Vec<Vec<AbsVal>>],
    concrete: &[Vec<Vec<u32>>],
) -> Result<(), String> {
    for (stage, (astage, cstage)) in abs.iter().zip(concrete).enumerate() {
        for (slot, (aslot, cslot)) in astage.iter().zip(cstage).enumerate() {
            for (var, (a, &c)) in aslot.iter().zip(cslot).enumerate() {
                if !a.contains(c) {
                    return Err(format!(
                        "{program} at {level:?}: state[{stage}][{slot}][{var}] = {c} \
                         escapes the abstraction {a:?}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Run `npackets` concrete packets through every backend and require
/// each output PHV and the final state to stay inside the abstraction
/// computed from `input`.
fn check_domino(
    def: &druzhba::programs::ProgramDef,
    input: &[AbsVal],
    trace: &Trace,
) -> Result<(), String> {
    let compiled = def
        .compile_cached()
        .map_err(|e| format!("{}: {e}", def.name))?;
    let spec = &compiled.pipeline_spec;
    let mc = &compiled.machine_code;
    for level in LEVELS {
        let abs =
            analyze_pipeline(spec, mc, level, input).map_err(|e| format!("{}: {e}", def.name))?;
        let mut pipeline =
            Pipeline::generate(spec, mc, level).map_err(|e| format!("{}: {e}", def.name))?;
        for phv in &trace.phvs {
            let out = pipeline.process(phv);
            for (c, a) in abs.phv.iter().enumerate() {
                let v = out.get(c);
                if !a.contains(v) {
                    return Err(format!(
                        "{} at {level:?}: output container[{c}] = {v} escapes \
                         the abstraction {a:?}",
                        def.name
                    ));
                }
            }
            // State soundness must hold after *every* packet, not just
            // the last one — the fixpoint covers all intermediate states.
            check_state(def.name, level, &abs.state, &pipeline.state_snapshot())?;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn domino_concrete_runs_stay_inside_top_abstraction(
        seed in 0u64..0xFFFF_FFFF,
        npackets in 1usize..5,
    ) {
        for def in &PROGRAMS {
            let compiled = def.compile_cached().unwrap();
            let len = compiled.pipeline_spec.config.phv_length;
            let input = vec![AbsVal::top(); len];
            let trace = TrafficGenerator::new(seed, len, 16).trace(npackets);
            if let Err(e) = check_domino(def, &input, &trace) {
                prop_assert!(false, "{e}");
            }
        }
    }

    #[test]
    fn domino_repeated_packet_stays_inside_constant_abstraction(
        seed in 0u64..0xFFFF_FFFF,
        npackets in 1usize..5,
    ) {
        for def in &PROGRAMS {
            let compiled = def.compile_cached().unwrap();
            let len = compiled.pipeline_spec.config.phv_length;
            let phv = TrafficGenerator::new(seed, len, 16).next_phv();
            let input: Vec<AbsVal> =
                (0..len).map(|c| AbsVal::constant(phv.get(c))).collect();
            let trace = Trace::from_phvs(vec![phv; npackets]);
            if let Err(e) = check_domino(def, &input, &trace) {
                prop_assert!(false, "{e}");
            }
        }
    }

    #[test]
    fn p4_concrete_runs_stay_inside_abstraction(
        seed in 0u64..0xFFFF_FFFF,
        npackets in 1usize..6,
    ) {
        for def in &P4_PROGRAMS {
            let workload = def.workload().unwrap();
            let input = abstract_input(&workload.hlir, &workload.lowering);
            let habs = analyze_hlir(&workload.hlir, &workload.entries, &input).unwrap();
            let mabs =
                analyze_mat(&workload.hlir, &workload.entries, &workload.lowering, &input)
                    .unwrap();
            let layout = &workload.lowering.layout;

            let mut traffic = P4Traffic::new(&workload, seed, 16);
            let trace = traffic.trace(npackets);

            // HLIR interpreter side.
            let mut interp = workload.interpreter();
            for (i, phv) in trace.phvs.iter().enumerate() {
                let mut packet = layout.phv_to_packet(i as u64, phv);
                interp.process(&mut packet);
                for (f, _) in layout.fields() {
                    let v = packet.get(f);
                    let a = habs.fields.get(f).copied().unwrap_or_else(AbsVal::top);
                    prop_assert!(
                        a.contains(v),
                        "{}: field {f} = {v} escapes the HLIR abstraction {a:?}",
                        def.name
                    );
                }
                prop_assert!(
                    habs.dropped.contains(u32::from(packet.dropped)),
                    "{}: drop flag escapes the HLIR abstraction",
                    def.name
                );
            }
            for (name, cells) in interp.registers() {
                let acells = habs.registers.get(name).cloned().unwrap_or_default();
                for (i, (&c, a)) in cells.iter().zip(&acells).enumerate() {
                    prop_assert!(
                        a.contains(c),
                        "{}: register {name}[{i}] = {c} escapes the HLIR abstraction {a:?}",
                        def.name
                    );
                }
            }

            // Lowered fused MatInstr side.
            let mut mat = MatPipeline::generate(
                &workload.hlir,
                &workload.entries,
                &workload.lowering,
                OptLevel::Fused,
            )
            .unwrap();
            let out = mat.run(&trace);
            for phv in &out.phvs {
                for (slot, a) in mabs.frame.iter().enumerate() {
                    let v = phv.get(slot);
                    prop_assert!(
                        a.contains(v),
                        "{}: lowered container[{slot}] = {v} escapes the MAT abstraction {a:?}",
                        def.name
                    );
                }
            }
            for (name, cells) in &mat.registers() {
                let acells = mabs.registers.get(name).cloned().unwrap_or_default();
                for (i, (&c, a)) in cells.iter().zip(&acells).enumerate() {
                    prop_assert!(
                        a.contains(c),
                        "{}: lowered register {name}[{i}] = {c} escapes the MAT \
                         abstraction {a:?}",
                        def.name
                    );
                }
            }
        }
    }
}
