//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Vec`s of a fixed length from an element strategy.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (0..self.len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s of exactly `len` elements.
pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
    VecStrategy { element, len }
}
