//! Lexer for the Domino subset. Token shapes match the ALU DSL's with the
//! addition of `.` (for `pkt.field`) and C-style keywords.

use druzhba_core::{Error, Result};

/// Lexical tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Int(u32),
    Dot,
    Semi,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Le,
    Ge,
    Lt,
    Gt,
    AndAnd,
    OrOr,
    Not,
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
}

/// Tokenize a Domino source. `//` comments run to end of line.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line = 1;

    macro_rules! push {
        ($tok:expr) => {
            tokens.push(Token { tok: $tok, line })
        };
    }

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    push!(Tok::Slash);
                }
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        n = n * 10 + u64::from(digit);
                        if n > u64::from(u32::MAX) {
                            return Err(Error::DominoParse {
                                line,
                                message: "integer literal exceeds 32 bits".into(),
                            });
                        }
                        chars.next();
                    } else {
                        break;
                    }
                }
                push!(Tok::Int(n as u32));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        ident.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                push!(Tok::Ident(ident));
            }
            '.' => {
                chars.next();
                push!(Tok::Dot);
            }
            ';' => {
                chars.next();
                push!(Tok::Semi);
            }
            '{' => {
                chars.next();
                push!(Tok::LBrace);
            }
            '}' => {
                chars.next();
                push!(Tok::RBrace);
            }
            '(' => {
                chars.next();
                push!(Tok::LParen);
            }
            ')' => {
                chars.next();
                push!(Tok::RParen);
            }
            '+' => {
                chars.next();
                push!(Tok::Plus);
            }
            '-' => {
                chars.next();
                push!(Tok::Minus);
            }
            '*' => {
                chars.next();
                push!(Tok::Star);
            }
            '%' => {
                chars.next();
                push!(Tok::Percent);
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(Tok::EqEq);
                } else {
                    push!(Tok::Assign);
                }
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(Tok::NotEq);
                } else {
                    push!(Tok::Not);
                }
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(Tok::Le);
                } else {
                    push!(Tok::Lt);
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(Tok::Ge);
                } else {
                    push!(Tok::Gt);
                }
            }
            '&' => {
                chars.next();
                if chars.peek() == Some(&'&') {
                    chars.next();
                    push!(Tok::AndAnd);
                } else {
                    return Err(Error::DominoParse {
                        line,
                        message: "single `&` is not an operator".into(),
                    });
                }
            }
            '|' => {
                chars.next();
                if chars.peek() == Some(&'|') {
                    chars.next();
                    push!(Tok::OrOr);
                } else {
                    return Err(Error::DominoParse {
                        line,
                        message: "single `|` is not an operator".into(),
                    });
                }
            }
            other => {
                return Err(Error::DominoParse {
                    line,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_pkt_field_access() {
        assert_eq!(
            toks("pkt.now"),
            vec![Tok::Ident("pkt".into()), Tok::Dot, Tok::Ident("now".into())]
        );
    }

    #[test]
    fn lexes_state_declaration() {
        assert_eq!(
            toks("state int x = 0;"),
            vec![
                Tok::Ident("state".into()),
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(0),
                Tok::Semi
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            toks("x // y\nz"),
            vec![Tok::Ident("x".into()), Tok::Ident("z".into())]
        );
    }

    #[test]
    fn rejects_stray_chars() {
        assert!(lex("a $ b").is_err());
        assert!(lex("a & b").is_err());
    }

    #[test]
    fn rejects_huge_literals() {
        assert!(lex("99999999999").is_err());
    }
}
