//! The machine value domain and its total arithmetic.
//!
//! Druzhba models PHV containers, switch state, and machine-code immediates
//! as unsigned integers (the paper: "immediate values that are unsigned
//! integer constants", "every PHV consists of random unsigned integers").
//! All arithmetic is *total*: additions/subtractions/multiplications wrap
//! modulo 2^32 and division/modulo by zero yield zero, so that every machine
//! code assignment produces a defined simulation result (the convention used
//! by sketch-style synthesis tools, which the case-study compiler relies
//! on).

/// The value carried by PHV containers, state variables, and machine-code
/// pairs: a 32-bit unsigned integer with wrapping semantics.
pub type Value = u32;

/// Wrapping addition.
#[inline]
pub fn wadd(a: Value, b: Value) -> Value {
    a.wrapping_add(b)
}

/// Wrapping subtraction.
#[inline]
pub fn wsub(a: Value, b: Value) -> Value {
    a.wrapping_sub(b)
}

/// Wrapping multiplication.
#[inline]
pub fn wmul(a: Value, b: Value) -> Value {
    a.wrapping_mul(b)
}

/// Total division: `a / 0 == 0`.
#[inline]
pub fn wdiv(a: Value, b: Value) -> Value {
    a.checked_div(b).unwrap_or(0)
}

/// Total modulo: `a % 0 == 0`.
#[inline]
pub fn wmod(a: Value, b: Value) -> Value {
    a.checked_rem(b).unwrap_or(0)
}

/// Unary minus in the wrapping domain (two's-complement negation).
#[inline]
pub fn wneg(a: Value) -> Value {
    a.wrapping_neg()
}

/// Encode a boolean as a machine value (1 for true, 0 for false).
#[inline]
pub fn from_bool(b: bool) -> Value {
    u32::from(b)
}

/// Interpret a machine value as a boolean (non-zero is true), matching the
/// C-like semantics of the ALU DSL's logical operators.
#[inline]
pub fn truthy(v: Value) -> bool {
    v != 0
}

/// The largest value representable in `bits` bits (saturating at 32 bits).
#[inline]
pub fn max_for_bits(bits: u32) -> Value {
    if bits >= 32 {
        Value::MAX
    } else {
        (1u32 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_addition_wraps() {
        assert_eq!(wadd(Value::MAX, 1), 0);
        assert_eq!(wadd(2, 3), 5);
    }

    #[test]
    fn wrapping_subtraction_wraps() {
        assert_eq!(wsub(0, 1), Value::MAX);
        assert_eq!(wsub(10, 3), 7);
    }

    #[test]
    fn wrapping_multiplication_wraps() {
        assert_eq!(wmul(1 << 31, 2), 0);
        assert_eq!(wmul(6, 7), 42);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(wdiv(42, 0), 0);
        assert_eq!(wdiv(42, 7), 6);
    }

    #[test]
    fn modulo_by_zero_is_zero() {
        assert_eq!(wmod(42, 0), 0);
        assert_eq!(wmod(42, 5), 2);
    }

    #[test]
    fn negation_is_twos_complement() {
        assert_eq!(wneg(1), Value::MAX);
        assert_eq!(wneg(0), 0);
        assert_eq!(wadd(wneg(5), 5), 0);
    }

    #[test]
    fn bool_round_trip() {
        assert_eq!(from_bool(true), 1);
        assert_eq!(from_bool(false), 0);
        assert!(truthy(7));
        assert!(!truthy(0));
    }

    #[test]
    fn max_for_bits_bounds() {
        assert_eq!(max_for_bits(0), 0);
        assert_eq!(max_for_bits(1), 1);
        assert_eq!(max_for_bits(2), 3);
        assert_eq!(max_for_bits(10), 1023);
        assert_eq!(max_for_bits(32), Value::MAX);
        assert_eq!(max_for_bits(64), Value::MAX);
    }
}
