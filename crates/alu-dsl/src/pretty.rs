//! Pretty-printer (unparser) for ALU specifications.
//!
//! [`unparse`] renders an [`AluSpec`] back to DSL source that re-parses to
//! an identical spec (hole names are assigned deterministically in source
//! order, so the round trip is exact). Used for diagnostics — e.g. showing
//! a specialized (dgen-style) ALU in DSL syntax — and round-trip
//! tested against the shipped atoms and random programs.

use std::fmt::Write as _;

use druzhba_core::names::AluKind;

use crate::ast::{AluSpec, Expr, Stmt};

/// Render a spec as ALU DSL source.
pub fn unparse(spec: &AluSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "name: {}", spec.name);
    let _ = writeln!(
        out,
        "type: {}",
        match spec.kind {
            AluKind::Stateful => "stateful",
            AluKind::Stateless => "stateless",
        }
    );
    if spec.kind == AluKind::Stateful || !spec.state_vars.is_empty() {
        let _ = writeln!(out, "state variables: {{{}}}", spec.state_vars.join(", "));
    }
    let hole_vars: Vec<String> = spec
        .hole_vars
        .iter()
        .map(|h| format!("{}[{}]", h.name, h.bits))
        .collect();
    let _ = writeln!(out, "hole variables: {{{}}}", hole_vars.join(", "));
    let _ = writeln!(out, "packet fields: {{{}}}", spec.packet_fields.join(", "));
    unparse_stmts(&mut out, &spec.body, 0);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn unparse_stmts(out: &mut String, stmts: &[Stmt], depth: usize) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { target, value } => {
                indent(out, depth);
                let _ = writeln!(out, "{target} = {};", unparse_expr(value));
            }
            Stmt::Return(e) => {
                indent(out, depth);
                let _ = writeln!(out, "return {};", unparse_expr(e));
            }
            Stmt::If { arms, else_body } => {
                for (i, (cond, body)) in arms.iter().enumerate() {
                    indent(out, depth);
                    let kw = if i == 0 { "if" } else { "else if" };
                    let _ = writeln!(out, "{kw} ({}) {{", unparse_expr(cond));
                    unparse_stmts(out, body, depth + 1);
                    indent(out, depth);
                    out.push_str("}\n");
                }
                if !else_body.is_empty() {
                    indent(out, depth);
                    out.push_str("else {\n");
                    unparse_stmts(out, else_body, depth + 1);
                    indent(out, depth);
                    out.push_str("}\n");
                }
            }
        }
    }
}

/// Render an expression with explicit parentheses (the `Display` impl on
/// [`Expr`] already parenthesizes binaries, which re-parses
/// unambiguously).
fn unparse_expr(e: &Expr) -> String {
    e.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::{atom, STATEFUL_ATOMS, STATELESS_ATOMS};
    use crate::parse_alu;

    #[test]
    fn atoms_round_trip_exactly() {
        for name in STATEFUL_ATOMS.iter().chain(STATELESS_ATOMS.iter()) {
            let spec = atom(name).unwrap();
            let text = unparse(&spec);
            let back = parse_alu(&text).unwrap_or_else(|e| panic!("{name}: {e}\n{text}"));
            assert_eq!(spec, back, "{name} round trip\n{text}");
        }
    }

    #[test]
    fn else_if_chain_round_trips() {
        let spec = parse_alu(
            "name: chain\ntype: stateless\nhole variables: {op[2]}\npacket fields: {a}\n\
             if (op == 0) { return a; }\n\
             else if (op == 1) { return a + 1; }\n\
             else { return 0; }",
        )
        .unwrap();
        let back = parse_alu(&unparse(&spec)).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn nested_control_round_trips() {
        let spec = parse_alu(
            "name: nest\ntype: stateful\nstate variables: {s}\nhole variables: {}\n\
             packet fields: {p, q}\n\
             if (rel_op(Opt(s), Mux3(p, q, C()))) {\n\
               if (p == q) { s = s + 1; } else { s = s - 1; }\n\
             }",
        )
        .unwrap();
        let back = parse_alu(&unparse(&spec)).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn specialized_specs_unparse() {
        // A specialized spec (no holes) still renders valid DSL.
        let spec = parse_alu(
            "name: spec\ntype: stateful\nstate variables: {s}\nhole variables: {}\n\
             packet fields: {p}\ns = (s + p) * 2;",
        )
        .unwrap();
        let text = unparse(&spec);
        assert!(text.contains("s = ((s + p) * 2);"));
        assert_eq!(parse_alu(&text).unwrap(), spec);
    }

    #[test]
    fn unary_and_logical_round_trip() {
        let spec = parse_alu(
            "name: u\ntype: stateless\nhole variables: {}\npacket fields: {a, b}\n\
             return !(a >= b) && -(a) != b || 1;",
        )
        .unwrap();
        let back = parse_alu(&unparse(&spec)).unwrap();
        assert_eq!(spec, back);
    }
}
