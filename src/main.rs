//! The `druzhba` command-line tool: the compiler-testing workflow from a
//! shell.
//!
//! ```text
//! druzhba compile <file.domino> --depth D --width W --atom NAME [-o mc.txt]
//! druzhba fuzz    <file.domino> --depth D --width W --atom NAME [--phvs N] [--bits B] [--runs R] [--jobs J]
//! druzhba verify  <file.domino> --depth D --width W --atom NAME [--bits B] [--packets N]
//! druzhba emit    <file.domino> --depth D --width W --atom NAME [--level 0|1|2|3]
//! druzhba atoms
//! druzhba programs
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency); every subcommand
//! maps onto a library call, so the tool is a thin shell over the public
//! API.

use std::process::ExitCode;

use druzhba::chipmunk::{compile, CompiledProgram, CompiledSpec, CompilerConfig};
use druzhba::dgen::emit::emit_pipeline;
use druzhba::dgen::OptLevel;
use druzhba::domino::{parse_program, DominoProgram};
use druzhba::dsim::testing::{fuzz_campaign, fuzz_test, CampaignConfig, FuzzConfig};
use druzhba::dsim::verify::{verify_bounded, VerifyConfig, VerifyOutcome};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "compile" => cmd_compile(&args[1..]),
        "fuzz" => cmd_fuzz(&args[1..]),
        "verify" => cmd_verify(&args[1..]),
        "emit" => cmd_emit(&args[1..]),
        "atoms" => cmd_atoms(),
        "programs" => cmd_programs(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "druzhba — programmable switch simulation for compiler testing

USAGE:
  druzhba compile <file.domino> --depth D --width W --atom NAME [-o out.txt]
  druzhba fuzz    <file.domino> --depth D --width W --atom NAME [--phvs N] [--bits B]
                  [--runs R --jobs J]   (R > 1: parallel seeded campaign)
  druzhba verify  <file.domino> --depth D --width W --atom NAME [--bits B] [--packets N]
  druzhba emit    <file.domino> --depth D --width W --atom NAME [--level 0|1|2|3]
  druzhba atoms      list the ALU DSL atom library
  druzhba programs   list the Table 1 benchmark programs";

/// Minimal flag parser: positional file plus `--key value` pairs.
struct Args {
    file: Option<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut file = None;
        let mut flags = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                flags.push((key.to_string(), value.clone()));
            } else if let Some(key) = a.strip_prefix('-') {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag -{key} needs a value"))?;
                flags.push((key.to_string(), value.clone()));
            } else if file.is_none() {
                file = Some(a.clone());
            } else {
                return Err(format!("unexpected argument `{a}`"));
            }
        }
        Ok(Args { file, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number `{v}`")),
        }
    }

    fn get_u32(&self, key: &str, default: u32) -> Result<u32, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number `{v}`")),
        }
    }
}

fn load(args: &Args) -> Result<(DominoProgram, CompilerConfig), String> {
    let file = args.file.as_deref().ok_or("missing <file.domino>")?;
    let source = std::fs::read_to_string(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
    let program = parse_program(&source).map_err(|e| e.to_string())?;
    let depth = args.get_usize("depth", 4)?;
    let width = args.get_usize("width", 2)?;
    let atom = args.get("atom").unwrap_or("pred_raw");
    Ok((program, CompilerConfig::new(depth, width, atom)))
}

fn compile_from(args: &Args) -> Result<(DominoProgram, CompiledProgram), String> {
    let (program, cfg) = load(args)?;
    let compiled = compile(&program, &cfg).map_err(|e| e.to_string())?;
    Ok((program, compiled))
}

fn report(compiled: &CompiledProgram) {
    let r = &compiled.report;
    eprintln!(
        "compiled: {} stateful + {} stateless ALUs, {} stage(s), {} PHV containers, \
         {} machine code pairs",
        r.stateful_used,
        r.stateless_used,
        r.stages_used,
        r.phv_length,
        compiled.machine_code.len()
    );
    eprintln!("inputs : {:?}", compiled.input_fields);
    eprintln!("outputs: {:?}", compiled.output_fields);
}

fn cmd_compile(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let (_, compiled) = compile_from(&args)?;
    report(&compiled);
    match args.get("o") {
        Some(path) => {
            std::fs::write(path, compiled.machine_code.to_text())
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("machine code written to {path}");
        }
        None => print!("{}", compiled.machine_code.to_text()),
    }
    Ok(())
}

fn cmd_fuzz(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let (program, compiled) = compile_from(&args)?;
    report(&compiled);
    let num_phvs = args.get_usize("phvs", 50_000)?;
    let bits = args.get_u32("bits", 10)?;
    let runs = args.get_usize("runs", 1)?;
    let jobs = args.get_usize("jobs", 0)?;
    if jobs > 0 && runs <= 1 {
        return Err("--jobs shards a multi-run campaign; pass --runs R (R > 1) with it".into());
    }
    let fuzz_cfg = FuzzConfig {
        num_phvs,
        input_bits: bits,
        observable: Some(compiled.observable_containers()),
        state_cells: compiled.state_cells.clone(),
        ..FuzzConfig::default()
    };
    if runs > 1 {
        // Parallel campaign: `runs` independently seeded Fig. 5 workflows
        // sharded across worker threads, deterministic per run index.
        let campaign_cfg = CampaignConfig {
            runs,
            workers: if jobs == 0 {
                CampaignConfig::default().workers
            } else {
                jobs
            },
            base: fuzz_cfg,
        };
        let campaign = fuzz_campaign(
            &compiled.pipeline_spec,
            &compiled.machine_code,
            OptLevel::Fused,
            || CompiledSpec::new(program.clone(), &compiled),
            &campaign_cfg,
        );
        let (passed, incompatible, mismatched) = campaign.counts();
        println!(
            "campaign: {runs} runs x {num_phvs} PHVs at {bits}-bit inputs on {} workers \
             -> {passed} passed, {incompatible} incompatible, {mismatched} mismatched",
            campaign_cfg.workers
        );
        return match campaign.first_failure() {
            None => Ok(()),
            Some(f) => Err(format!(
                "fuzzing found a divergence (replay with seed {:#x}): {:?}",
                f.seed, f.verdict
            )),
        };
    }
    let mut spec = CompiledSpec::new(program, &compiled);
    let report = fuzz_test(
        &compiled.pipeline_spec,
        &compiled.machine_code,
        OptLevel::Fused,
        &mut spec,
        &fuzz_cfg,
    );
    println!(
        "fuzz: {} PHVs at {bits}-bit inputs -> {:?}",
        report.phvs_tested, report.verdict
    );
    if report.passed() {
        Ok(())
    } else {
        Err("fuzzing found a divergence".into())
    }
}

fn cmd_verify(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let (program, compiled) = compile_from(&args)?;
    report(&compiled);
    let bits = args.get_u32("bits", 2)?;
    let packets = args.get_usize("packets", 3)?;
    let mut spec = CompiledSpec::new(program, &compiled);
    let outcome = verify_bounded(
        &compiled.pipeline_spec,
        &compiled.machine_code,
        OptLevel::SccInline,
        &mut spec,
        &VerifyConfig {
            input_bits: bits,
            packets,
            relevant_containers: (0..compiled.input_fields.len()).collect(),
            observable: Some(compiled.observable_containers()),
            state_cells: compiled.state_cells.clone(),
            max_cases: 10_000_000,
        },
    )
    .map_err(|e| e.to_string())?;
    match outcome {
        VerifyOutcome::Verified { cases } => {
            println!(
                "verified: all {cases} input trace(s) of {packets} packet(s) at \
                 {bits}-bit inputs agree with the specification"
            );
            Ok(())
        }
        VerifyOutcome::CounterExample { input, mismatch } => {
            println!("counterexample: {mismatch}");
            for (i, phv) in input.phvs.iter().enumerate() {
                println!("  packet {i}: {phv}");
            }
            Err("verification found a divergence".into())
        }
    }
}

fn cmd_emit(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let (_, compiled) = compile_from(&args)?;
    let level = match args.get_usize("level", 2)? {
        0 => OptLevel::Unoptimized,
        1 => OptLevel::Scc,
        2 => OptLevel::SccInline,
        3 => OptLevel::Fused,
        other => return Err(format!("--level must be 0, 1, 2, or 3 (got {other})")),
    };
    let src = emit_pipeline(&compiled.pipeline_spec, &compiled.machine_code, level)
        .map_err(|e| e.to_string())?;
    print!("{src}");
    Ok(())
}

fn cmd_atoms() -> Result<(), String> {
    use druzhba::alu_dsl::atoms::{atom, STATEFUL_ATOMS, STATELESS_ATOMS};
    println!("stateful atoms:");
    for name in STATEFUL_ATOMS {
        let spec = atom(name).map_err(|e| e.to_string())?;
        println!(
            "  {name:<14} {} state var(s), {} hole(s)",
            spec.state_vars.len(),
            spec.holes.len()
        );
    }
    println!("stateless ALUs:");
    for name in STATELESS_ATOMS {
        let spec = atom(name).map_err(|e| e.to_string())?;
        println!("  {name:<18} {} hole(s)", spec.holes.len());
    }
    Ok(())
}

fn cmd_programs() -> Result<(), String> {
    println!(
        "{:<20} {:>11} {:>12}  source",
        "program", "depth,width", "atom"
    );
    for def in &druzhba::programs::PROGRAMS {
        println!(
            "{:<20} {:>11} {:>12}  crates/programs/assets/{}.domino",
            def.name,
            format!("{},{}", def.depth, def.width),
            def.stateful_atom,
            def.name
        );
    }
    Ok(())
}
