//! Abstract evaluation of ALU-DSL statement bodies.
//!
//! Mirrors `druzhba_dgen::eval` one transfer function at a time: holes are
//! concrete machine-code values (a configured pipeline has no free holes),
//! packet fields and state variables are abstract. `if` chains with
//! undecided conditions fork the abstract state and join at the statement
//! boundary; decided conditions prune arms and feed the unreachable-arm
//! lint.
//!
//! The same evaluator covers both the *source* semantics (unspecialized
//! spec plus hole environment — version-1 evaluation) and the `Scc`
//! backend (specialized spec, empty hole map), which is what makes the
//! translation-validation pass able to compare them.

use std::collections::HashMap;

use druzhba_alu_dsl::ast::{AluSpec, Expr, Stmt};
use druzhba_core::value::Value;

use crate::domain::{AbsVal, Tri};

/// One lint event, located by the emitting pass's program counter (here:
/// pre-order statement index in the ALU body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintEvent {
    pub pc: u32,
    pub code: &'static str,
    pub message: String,
}

/// Result of abstractly executing one ALU invocation.
#[derive(Debug, Clone)]
pub struct AluAbsOutcome {
    /// Abstraction of the ALU's output value.
    pub output: AbsVal,
    /// Abstraction of the state vector after the invocation.
    pub state: Vec<AbsVal>,
}

/// Abstractly execute one ALU invocation.
///
/// `lints`, when present, receives unreachable-arm, dead-write, and
/// arithmetic-hazard events for this invocation; pass `None` during
/// fixpoint iteration and `Some` only on the post-fixpoint reporting run.
pub fn abs_eval_alu(
    spec: &AluSpec,
    holes: &HashMap<String, Value>,
    operands: &[AbsVal],
    state_in: &[AbsVal],
    lints: Option<&mut Vec<LintEvent>>,
) -> AluAbsOutcome {
    let default_output = state_in.first().copied().unwrap_or(AbsVal::constant(0));
    let pcs = assign_pcs(&spec.body);
    let mut ctx = Ctx {
        spec,
        holes,
        operands,
        pcs,
        lints,
        pending_writes: HashMap::new(),
        stmt_pc: 0,
    };
    let flow = ctx.exec_block(&spec.body, state_in.to_vec());
    let (output, state) = match (flow.fall, flow.ret) {
        (Some(fall), Some((rv, rs))) => (rv.join(default_output), join_states(&fall, &rs)),
        (Some(fall), None) => (default_output, fall),
        (None, Some((rv, rs))) => (rv, rs),
        // Unreachable: a block with no return always falls through.
        (None, None) => (default_output, state_in.to_vec()),
    };
    AluAbsOutcome { output, state }
}

/// Join two abstract state vectors elementwise.
pub fn join_states(a: &[AbsVal], b: &[AbsVal]) -> Vec<AbsVal> {
    a.iter().zip(b).map(|(x, y)| x.join(*y)).collect()
}

/// Widen `prev` toward `next` elementwise.
pub fn widen_states(prev: &[AbsVal], next: &[AbsVal]) -> Vec<AbsVal> {
    prev.iter().zip(next).map(|(p, n)| p.widen(*n)).collect()
}

/// Pre-order statement numbering, keyed by node address (the AST is
/// borrowed immutably for the whole analysis, so addresses are stable).
fn assign_pcs(body: &[Stmt]) -> HashMap<*const Stmt, u32> {
    fn walk(stmts: &[Stmt], next: &mut u32, out: &mut HashMap<*const Stmt, u32>) {
        for stmt in stmts {
            out.insert(stmt as *const Stmt, *next);
            *next += 1;
            if let Stmt::If { arms, else_body } = stmt {
                for (_, body) in arms {
                    walk(body, next, out);
                }
                walk(else_body, next, out);
            }
        }
    }
    let mut out = HashMap::new();
    let mut next = 0;
    walk(body, &mut next, &mut out);
    out
}

/// Abstract control flow out of a block: the fall-through state (if any
/// path falls through) and the joined `(value, state)` over `return`
/// points (if any path returns).
struct Flow {
    fall: Option<Vec<AbsVal>>,
    ret: Option<(AbsVal, Vec<AbsVal>)>,
}

struct Ctx<'a> {
    spec: &'a AluSpec,
    holes: &'a HashMap<String, Value>,
    operands: &'a [AbsVal],
    pcs: HashMap<*const Stmt, u32>,
    lints: Option<&'a mut Vec<LintEvent>>,
    /// State vars assigned on the current straight-line path and not yet
    /// read: candidate dead writes, keyed by state index → pc of the
    /// pending write. Cleared conservatively at every branch point.
    pending_writes: HashMap<usize, u32>,
    /// pc of the statement currently being evaluated (anchors expression
    /// hazard lints).
    stmt_pc: u32,
}

impl Ctx<'_> {
    fn lint(&mut self, pc: u32, code: &'static str, message: String) {
        if let Some(sink) = self.lints.as_deref_mut() {
            sink.push(LintEvent { pc, code, message });
        }
    }

    fn hole(&self, name: &str) -> Value {
        self.holes.get(name).copied().unwrap_or(0)
    }

    fn exec_block(&mut self, stmts: &[Stmt], state: Vec<AbsVal>) -> Flow {
        let mut state = state;
        let mut ret: Option<(AbsVal, Vec<AbsVal>)> = None;
        for stmt in stmts {
            let pc = self.pcs.get(&(stmt as *const Stmt)).copied().unwrap_or(0);
            self.stmt_pc = pc;
            match stmt {
                Stmt::Assign { target, value } => {
                    let v = self.eval(value, &state);
                    if let Some(i) = self.spec.state_var_index(target) {
                        if let Some(&prev_pc) = self.pending_writes.get(&i) {
                            self.lint(
                                prev_pc,
                                "dead-write",
                                format!(
                                    "state variable `{target}` is overwritten at pc {pc} \
                                     before being read"
                                ),
                            );
                        }
                        self.pending_writes.insert(i, pc);
                        state[i] = v;
                    }
                }
                Stmt::If { arms, else_body } => {
                    // Conditions are pure; all evaluate against the pre-If
                    // state, exactly as the sequential concrete tests do.
                    let mut branches: Vec<&[Stmt]> = Vec::new();
                    let mut may_reach_next = true;
                    for (arm, (cond, body)) in arms.iter().enumerate() {
                        if !may_reach_next {
                            self.lint(
                                pc,
                                "unreachable-arm",
                                format!("arm {} of `if` chain can never be reached", arm + 1),
                            );
                            continue;
                        }
                        match self.eval(cond, &state).truth() {
                            Tri::False => {
                                self.lint(
                                    pc,
                                    "unreachable-arm",
                                    format!(
                                        "condition of arm {} of `if` chain is always false",
                                        arm + 1
                                    ),
                                );
                            }
                            Tri::True => {
                                branches.push(body);
                                may_reach_next = false;
                            }
                            Tri::Unknown => branches.push(body),
                        }
                    }
                    if may_reach_next {
                        branches.push(else_body);
                    } else if !else_body.is_empty() {
                        self.lint(
                            pc,
                            "unreachable-arm",
                            "`else` body of `if` chain can never be reached".to_string(),
                        );
                    }
                    // Branch point: pending straight-line writes may be
                    // read on either side — stop tracking them.
                    self.pending_writes.clear();
                    let mut fall: Option<Vec<AbsVal>> = None;
                    for body in branches {
                        let flow = self.exec_block(body, state.clone());
                        self.pending_writes.clear();
                        if let Some(f) = flow.fall {
                            fall = Some(match fall {
                                Some(acc) => join_states(&acc, &f),
                                None => f,
                            });
                        }
                        ret = join_ret(ret, flow.ret);
                    }
                    match fall {
                        Some(f) => state = f,
                        // Every branch returned: nothing falls through.
                        None => return Flow { fall: None, ret },
                    }
                }
                Stmt::Return(e) => {
                    let v = self.eval(e, &state);
                    self.pending_writes.clear();
                    return Flow {
                        fall: None,
                        ret: join_ret(ret, Some((v, state))),
                    };
                }
            }
        }
        Flow {
            fall: Some(state),
            ret,
        }
    }

    /// Abstract counterpart of `Evaluator::eval`. Expressions are pure;
    /// mux arms are evaluated eagerly like the concrete version-1
    /// semantics (irrelevant abstractly, but keeps hazard lints aligned
    /// with what the simulator actually computes).
    fn eval(&mut self, expr: &Expr, state: &[AbsVal]) -> AbsVal {
        match expr {
            Expr::Const(v) => AbsVal::constant(*v),
            Expr::Var(name) => {
                if let Some(i) = self.spec.packet_field_index(name) {
                    return self.operands.get(i).copied().unwrap_or(AbsVal::constant(0));
                }
                if let Some(i) = self.spec.state_var_index(name) {
                    self.pending_writes.remove(&i);
                    return state.get(i).copied().unwrap_or(AbsVal::constant(0));
                }
                AbsVal::constant(self.hole(name))
            }
            Expr::CConst { hole } => AbsVal::constant(self.hole(hole)),
            Expr::Opt { hole, arg } => {
                let x = self.eval(arg, state);
                AbsVal::opt(self.hole(hole), x)
            }
            Expr::Mux2 { hole, a, b } => {
                let (a, b) = (self.eval(a, state), self.eval(b, state));
                AbsVal::mux2(self.hole(hole), a, b)
            }
            Expr::Mux3 { hole, a, b, c } => {
                let (a, b, c) = (
                    self.eval(a, state),
                    self.eval(b, state),
                    self.eval(c, state),
                );
                AbsVal::mux3(self.hole(hole), a, b, c)
            }
            Expr::RelOp { hole, a, b } => {
                let (a, b) = (self.eval(a, state), self.eval(b, state));
                AbsVal::rel_op(self.hole(hole), a, b)
            }
            Expr::ArithOp { hole, a, b } => {
                let (a, b) = (self.eval(a, state), self.eval(b, state));
                let op = self.hole(hole);
                self.arith_hazard(if op & 1 == 0 { "+" } else { "-" }, a, b);
                AbsVal::arith_op(op, a, b)
            }
            Expr::Binary { op, l, r } => {
                use druzhba_alu_dsl::ast::BinOp;
                let (l, r) = (self.eval(l, state), self.eval(r, state));
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul => {
                        self.arith_hazard(op.symbol(), l, r);
                    }
                    BinOp::Div | BinOp::Mod if r.as_const() == Some(0) => {
                        let pc = self.stmt_pc;
                        self.lint(
                            pc,
                            "div-by-zero",
                            format!(
                                "right operand of `{}` is always zero \
                                 (total semantics yield 0)",
                                op.symbol()
                            ),
                        );
                    }
                    _ => {}
                }
                AbsVal::binop(*op, l, r)
            }
            Expr::Unary { op, x } => {
                let x = self.eval(x, state);
                AbsVal::unop(*op, x)
            }
        }
    }

    /// Report an arithmetic operation certain to wrap modulo 2^32.
    fn arith_hazard(&mut self, sym: &str, l: AbsVal, r: AbsVal) {
        let wraps = match sym {
            "+" => u64::from(l.iv.lo) + u64::from(r.iv.lo) > u64::from(u32::MAX),
            "-" => l.iv.hi < r.iv.lo,
            "*" => u64::from(l.iv.lo) * u64::from(r.iv.lo) > u64::from(u32::MAX),
            _ => false,
        };
        if wraps {
            let pc = self.stmt_pc;
            self.lint(
                pc,
                "overflow",
                format!("`{sym}` always wraps modulo 2^32 here"),
            );
        }
    }
}

fn join_ret(
    a: Option<(AbsVal, Vec<AbsVal>)>,
    b: Option<(AbsVal, Vec<AbsVal>)>,
) -> Option<(AbsVal, Vec<AbsVal>)> {
    match (a, b) {
        (Some((av, asr)), Some((bv, bs))) => Some((av.join(bv), join_states(&asr, &bs))),
        (x, None) | (None, x) => x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use druzhba_alu_dsl::parse_alu;

    const IF_ELSE: &str = "\
name: abs_if_else
type: stateful
state variables: {s}
hole variables: {}
packet fields: {p}
if (p > 5) { s = s + 1; }
else { s = 0; }
";

    #[test]
    fn abstract_result_contains_concrete_runs() {
        let spec = parse_alu(IF_ELSE).expect("parses");
        let holes = HashMap::new();
        let operands = [AbsVal::bits(4)];
        let state_in = [AbsVal::range(0, 10)];
        let out = abs_eval_alu(&spec, &holes, &operands, &state_in, None);
        // Concrete: p in [0,15], s in [0,10]; result state is s+1 (<=11) or 0.
        for p in 0u32..16 {
            for s in [0u32, 3, 10] {
                let mut st = [s];
                druzhba_dgen::eval::eval_unoptimized(&spec, &holes, &[p], &mut st);
                assert!(
                    out.state[0].contains(st[0]),
                    "state {} not in {:?} (p={p}, s={s})",
                    st[0],
                    out.state[0]
                );
            }
        }
    }

    #[test]
    fn constant_condition_yields_unreachable_arm_lint() {
        let src = "\
name: abs_const_cond
type: stateful
state variables: {s}
hole variables: {}
packet fields: {p}
if (0) { s = 1; }
else { s = p; }
";
        let spec = parse_alu(src).expect("parses");
        let mut lints = Vec::new();
        abs_eval_alu(
            &spec,
            &HashMap::new(),
            &[AbsVal::top()],
            &[AbsVal::top()],
            Some(&mut lints),
        );
        assert!(
            lints.iter().any(|l| l.code == "unreachable-arm"),
            "{lints:?}"
        );
    }

    #[test]
    fn overwrite_before_read_yields_dead_write_lint() {
        let src = "\
name: abs_dead_write
type: stateful
state variables: {s}
hole variables: {}
packet fields: {p}
s = p + 1;
s = p + 2;
";
        let spec = parse_alu(src).expect("parses");
        let mut lints = Vec::new();
        abs_eval_alu(
            &spec,
            &HashMap::new(),
            &[AbsVal::top()],
            &[AbsVal::top()],
            Some(&mut lints),
        );
        assert!(lints.iter().any(|l| l.code == "dead-write"), "{lints:?}");
    }
}
