// L2 forwarding with per-port egress counting.
//
// forward: exact match on the destination address, binds the egress port
// (action parameter) or drops on miss; egress_count: matches the port
// written by forward (a match dependency, so it lands one stage later)
// and counts the packet against that port's counter.

header_type ethernet_t {
    fields {
        dst : 16;
        src : 16;
        etype : 16;
    }
}

header_type meta_t {
    fields {
        port : 8;
    }
}

header ethernet_t ethernet;
metadata meta_t meta;

parser start {
    extract(ethernet);
    return ingress;
}

counter egress_pkts { instance_count : 8; }

action set_port(port) {
    modify_field(meta.port, port);
}

action toss() {
    drop();
}

action tally() {
    count(egress_pkts, meta.port);
}

table forward {
    reads { ethernet.dst : exact; }
    actions { set_port; toss; }
    size : 64;
    default_action : toss;
}

table egress_count {
    reads { meta.port : ternary; }
    actions { tally; }
    size : 8;
}

control ingress {
    apply(forward);
    apply(egress_count);
}
