//! Abstract-interpretation static analyzer for the Druzhba stacks.
//!
//! One reduced-product domain — intervals × known bits ([`domain::AbsVal`])
//! — drives three passes over the existing IRs:
//!
//! 1. **Static translation validation** ([`pipeline::translation_validate`],
//!    [`p4::p4_translation_validate`]): the source semantics (ALU-DSL AST,
//!    P4 HLIR) and every compiled form (stack bytecode, staged pipeline,
//!    fused register program, lowered `MatInstr` program) are abstractly
//!    evaluated from the same abstract input; any observable whose two
//!    abstractions are *disjoint* is a proven miscompilation — no concrete
//!    execution of either side can agree there.
//! 2. **Lint diagnostics**: statically unreachable `if`/mux arms, dead
//!    stateful writes, certain-overflow arithmetic, division by a constant
//!    zero, unreachable tables/entries/actions, always-match LPM prefixes,
//!    reads of never-extracted headers. Diagnostics are deterministic and
//!    machine-readable (see [`druzhba_core::diag`]).
//! 3. **Generator screen** ([`pipeline::screen`]): classifies a generated
//!    program as `Trivial` (provably constant observable outputs),
//!    `Hazardous` (carries overflow/div-by-zero hazards), or
//!    `Interesting` — a cheap validity filter in front of the expensive
//!    differential stages.
//!
//! Soundness contract: for every pass, the concrete result of any run the
//! backends can produce is *contained* in the abstract result. The
//! property tests in `tests/analysis_soundness.rs` pin this against all
//! backends over the shipped corpus.

pub mod alu;
pub mod bytecode;
pub mod domain;
pub mod fused;
pub mod p4;
pub mod pipeline;
pub mod rewrite;
pub mod symbolic;
pub mod term;

pub use domain::{AbsVal, Interval, KnownBits, Tri};
pub use p4::{
    abstract_input, analyze_hlir, analyze_mat, p4_translation_validate, MatAbs, P4Abs, P4TvMismatch,
};
pub use pipeline::{
    analyze_pipeline, flag_mutant, proven_dead_edges, screen, translation_validate, EdgeKey,
    LintRecord, PipelineAbs, Screened, StaticFlag, TvMismatch, TvSite,
};
pub use symbolic::{
    p4_symbolic_entries_equivalent, p4_symbolic_validate, symbolic_equivalent, symbolic_lints,
    symbolic_transfer, symbolic_validate, symbolic_validate_level, SymTransfer, SymbolicResidual,
    SymbolicVerdict,
};
pub use term::{Node, Sym, TermId, TermStore};
