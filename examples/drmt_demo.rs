//! The §4 dRMT workflow: P4 program → table dependency DAG → schedule →
//! disaggregated match+action simulation with table entries.
//!
//! Run with: `cargo run --example drmt_demo`

use druzhba::drmt::machine::execute_sequential;
use druzhba::drmt::schedule::{solve_optimal, ScheduleConfig};
use druzhba::drmt::{parse_entries, DrmtMachine, PacketGen};
use druzhba::p4::deps::build_dag;
use druzhba::p4::parse_p4;

const PROGRAM: &str = r#"
    header_type tcp_t { fields { sport : 16; dport : 16; flags : 8; } }
    header_type meta_t { fields { zone : 8; verdict : 8; } }
    header tcp_t tcp;
    metadata meta_t meta;
    parser start { extract(tcp); return ingress; }
    counter verdicts { instance_count : 2; }
    action set_zone(z) { modify_field(meta.zone, z); }
    action allow() { modify_field(meta.verdict, 1); count(verdicts, 0); }
    action deny()  { modify_field(meta.verdict, 0); count(verdicts, 1); drop(); }
    table zoning {
        reads { tcp.dport : exact; }
        actions { set_zone; }
    }
    table policy {
        reads { meta.zone : exact; tcp.flags : ternary; }
        actions { allow; deny; }
        default_action : deny;
    }
    control ingress { apply(zoning); apply(policy); }
"#;

const ENTRIES: &str = "\
    zoning : tcp.dport=80 => set_zone(1)\n\
    zoning : tcp.dport=22 => set_zone(2)\n\
    policy : meta.zone=1, tcp.flags=0/0 => allow()\n\
    policy : meta.zone=2, tcp.flags=2/0xff => allow()\n";

fn main() {
    // Parse and analyse the P4 program.
    let hlir = parse_p4(PROGRAM).unwrap();
    println!(
        "fields: {:?}",
        hlir.fields
            .iter()
            .map(|(f, w)| format!("{f}:{w}"))
            .collect::<Vec<_>>()
    );

    // Table dependency DAG (zoning writes meta.zone; policy matches it).
    let dag = build_dag(&hlir);
    for e in &dag.edges {
        println!(
            "dependency: {} -> {} ({:?})",
            dag.names[e.from], dag.names[e.to], e.kind
        );
    }

    // Schedule for 4 processors, exactly.
    let cfg = ScheduleConfig {
        processors: 4,
        ..Default::default()
    };
    let schedule = solve_optimal(&dag, &cfg, 500_000).unwrap();
    for (i, name) in dag.names.iter().enumerate() {
        println!(
            "schedule: {:<8} match @ t+{}, action @ t+{}",
            name, schedule.match_slot[i], schedule.action_slot[i]
        );
    }

    // Simulate 5 000 random packets.
    let entries = parse_entries(ENTRIES).unwrap();
    let mut machine = DrmtMachine::new(hlir.clone(), schedule, cfg, entries.clone()).unwrap();
    let packets = PacketGen::new(&hlir, 2026).packets(5_000);
    let out = machine.run(packets.clone());
    let stats = machine.stats();
    println!(
        "processed {} packets in {} ticks ({} matches, {} actions, {} crossbar accesses)",
        stats.packets_out,
        stats.ticks,
        stats.matches_issued,
        stats.actions_executed,
        stats.crossbar_accesses
    );
    println!("verdict counters: {:?}", machine.counters()["verdicts"]);

    // The scheduled execution is equivalent to sequential per-packet
    // table application.
    let (seq, _, seq_counters) = execute_sequential(&hlir, &entries, &packets).unwrap();
    assert_eq!(out, seq);
    assert_eq!(machine.counters(), &seq_counters);
    println!("dRMT demo OK (scheduled == sequential)");
}
