//! Static translation validation over the corpus, the pinned analyzer
//! baseline, and CLI smoke tests for the `analyze` / `--lint` surface.
//!
//! The golden file `tests/golden/analyze.json` is the byte-exact output
//! of `druzhba analyze --json` over the 17 corpus programs: any new
//! warning, any lost lint, and any translation-validation mismatch fails
//! CI until the baseline is deliberately regenerated with
//! `druzhba analyze --json --out tests/golden/analyze.json`.

use std::process::{Command, Output};

use druzhba::analysis::{Screened, SymbolicVerdict};
use druzhba::analyze::analyze_corpus;

fn druzhba(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_druzhba"))
        .args(args)
        .output()
        .expect("spawn druzhba binary")
}

fn golden(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()))
}

#[test]
fn corpus_translation_validation_is_clean() {
    let analysis = analyze_corpus(false).expect("corpus analyzes");
    assert_eq!(analysis.programs.len(), 17, "12 Domino + 5 P4 programs");
    assert_eq!(
        analysis.tv_mismatches(),
        0,
        "every compiled form must be abstractly compatible with its source:\n{}",
        analysis.to_text()
    );
    // Every Table 1 program carries observable behavior the screen must
    // not reject as trivial (they all ship as fuzz targets).
    for p in analysis.programs.iter().filter(|p| p.kind == "domino") {
        assert_eq!(
            p.screen,
            Some(Screened::Interesting),
            "{}: corpus programs screen as interesting",
            p.name
        );
    }
}

#[test]
fn analyzer_output_matches_golden_baseline() {
    let analysis = analyze_corpus(false).expect("corpus analyzes");
    let expected = golden("analyze.json");
    assert_eq!(
        analysis.to_json(),
        expected,
        "analyzer drifted from tests/golden/analyze.json (new warning, lost \
         lint, or TV change); if intentional, regenerate with \
         `druzhba analyze --json --out tests/golden/analyze.json`"
    );
}

#[test]
fn cli_analyze_runs_the_corpus() {
    let out = druzhba(&["analyze"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("analyze: 17 program(s), 0 TV mismatch(es)"),
        "{stdout}"
    );
}

#[test]
fn cli_analyze_json_matches_golden_baseline() {
    let out = druzhba(&["analyze", "--json"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        golden("analyze.json"),
        "CLI JSON output must be byte-identical to the golden baseline"
    );
}

#[test]
fn cli_analyze_single_program_by_name() {
    let out = druzhba(&["analyze", "blue_increase"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("blue_increase [domino]:"), "{stdout}");
    assert!(stdout.contains("screen: interesting"), "{stdout}");
}

#[test]
fn cli_p4_fuzz_lint_reports_diagnostics_before_fuzzing() {
    let out = druzhba(&[
        "p4-fuzz",
        "guarded_mirror",
        "--lint",
        "--phvs",
        "50",
        "--level",
        "3",
        "--cross-model",
        "off",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("lint[guarded_mirror]: 2 diagnostic(s), 0 TV mismatch(es)"),
        "{stderr}"
    );
    assert!(stderr.contains("unreachable-table"), "{stderr}");
    assert!(stderr.contains("invalid-header-read"), "{stderr}");
}

// ---------------------------------------------------------------------------
// Exit-code matrix (documented in docs/FUZZING.md):
//   0 — clean corpus, or lint diagnostics only
//   1 — operational error (unknown program, unreadable file)
//   2 — proven miscompilation (abstract TV mismatch or symbolic refutation)
// ---------------------------------------------------------------------------

#[test]
fn cli_analyze_exits_zero_on_clean_corpus_with_lints() {
    // The corpus carries Note-severity lints but no proven
    // miscompilation, so the documented exit code is 0.
    let out = druzhba(&["analyze"]);
    assert_eq!(out.status.code(), Some(0), "lint-only analysis exits 0");
}

#[test]
fn cli_analyze_exits_one_on_operational_error() {
    let out = druzhba(&["analyze", "no_such_program"]);
    assert_eq!(out.status.code(), Some(1), "bad arguments exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no_such_program"), "{stderr}");
}

#[test]
fn exit_code_two_for_proven_miscompilation() {
    use druzhba::analyze::{CorpusAnalysis, ProgramAnalysis};

    let clean = ProgramAnalysis {
        name: "clean".into(),
        kind: "domino",
        tv_mismatches: Vec::new(),
        diagnostics: Vec::new(),
        screen: None,
        proven_dead: Vec::new(),
        imprecision: Vec::new(),
        symbolic: Some(SymbolicVerdict::Proved),
    };
    assert_eq!(
        CorpusAnalysis {
            programs: vec![clean.clone()]
        }
        .exit_code(),
        0,
        "proved programs exit 0"
    );

    let mut tv_bad = clean.clone();
    tv_bad.tv_mismatches = vec!["scc_inline: container 0 escapes".into()];
    assert_eq!(
        CorpusAnalysis {
            programs: vec![clean.clone(), tv_bad]
        }
        .exit_code(),
        2,
        "an abstract TV mismatch anywhere in the corpus exits 2"
    );

    let mut refuted = clean.clone();
    refuted.symbolic = Some(SymbolicVerdict::Refuted {
        level: "fused",
        site: "container 1".into(),
        cex: vec![0, 0],
    });
    assert_eq!(
        CorpusAnalysis {
            programs: vec![clean, refuted]
        }
        .exit_code(),
        2,
        "a symbolic refutation anywhere in the corpus exits 2"
    );
}

// ---------------------------------------------------------------------------
// Symbolic translation validation over the corpus.
// ---------------------------------------------------------------------------

#[test]
fn corpus_symbolic_validation_proves_every_program() {
    let analysis = analyze_corpus(true).expect("corpus analyzes");
    for p in &analysis.programs {
        assert_eq!(
            p.symbolic,
            Some(SymbolicVerdict::Proved),
            "{}: every corpus program must be symbolically proved on every \
             backend pair (no Unknown residuals, no refutations)",
            p.name
        );
    }
    assert_eq!(analysis.exit_code(), 0);
}

#[test]
fn cli_analyze_symbolic_json_matches_golden_baseline() {
    let out = druzhba(&["analyze", "--json", "--symbolic"]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        golden("analyze_symbolic.json"),
        "symbolic analyzer drifted from tests/golden/analyze_symbolic.json; \
         if intentional, regenerate with \
         `druzhba analyze --json --symbolic --out tests/golden/analyze_symbolic.json`"
    );
}
