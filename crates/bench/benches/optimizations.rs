//! Micro-benchmarks of dgen itself: specialization (SCC propagation),
//! bytecode compilation (inlining), pipeline generation, and source
//! emission — the ablation behind the Table 1 deltas.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion};
use druzhba_alu_dsl::atoms::atom;
use druzhba_core::{MachineCode, PipelineConfig};
use druzhba_dgen::{
    bytecode::BytecodeProgram, emit::emit_pipeline, expected_machine_code, opt::specialize,
    OptLevel, Pipeline, PipelineSpec,
};

fn setup() -> (PipelineSpec, MachineCode) {
    let spec = PipelineSpec::new(
        PipelineConfig::new(4, 5),
        atom("pred_raw").unwrap(),
        atom("stateless_full").unwrap(),
    )
    .unwrap();
    let mc = MachineCode::from_pairs(
        expected_machine_code(&spec)
            .into_iter()
            .map(|(n, _)| (n, 0)),
    );
    (spec, mc)
}

fn bench_passes(c: &mut Criterion) {
    let (spec, mc) = setup();
    let alu = atom("pred_raw").unwrap();
    let holes: HashMap<String, u32> = alu.holes.iter().map(|h| (h.local.clone(), 0)).collect();

    c.bench_function("dgen/scc_specialize_pred_raw", |b| {
        b.iter(|| specialize(&alu, &holes))
    });
    let specialized = specialize(&alu, &holes);
    c.bench_function("dgen/bytecode_compile_pred_raw", |b| {
        b.iter(|| BytecodeProgram::compile(&specialized))
    });
    for opt in OptLevel::ALL {
        c.bench_function(format!("dgen/generate_4x5/{}", opt.label()), |b| {
            b.iter(|| Pipeline::generate(&spec, &mc, opt).unwrap())
        });
        c.bench_function(format!("dgen/emit_4x5/{}", opt.label()), |b| {
            b.iter(|| emit_pipeline(&spec, &mc, opt).unwrap())
        });
    }
}

criterion_group!(benches, bench_passes);
criterion_main!(benches);
