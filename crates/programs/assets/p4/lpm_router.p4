// Longest-prefix-match IP routing with a next-hop resolution chain.
//
// route: LPM over the destination address picks a next hop (longest
// prefix wins over entry order); resolve: exact match on the chosen next
// hop binds the egress port — a match dependency on route, so the chain
// needs two pipeline stages. last_hop records the most recent next hop
// per prefix class in a register.

header_type ip_t {
    fields {
        dst : 32;
        ttl : 8;
    }
}

header_type meta_t {
    fields {
        nhop : 16;
        port : 8;
    }
}

header ip_t ip;
metadata meta_t meta;

parser start {
    extract(ip);
    return ingress;
}

register last_hop { width : 32; instance_count : 4; }

action set_nhop(hop, class) {
    modify_field(meta.nhop, hop);
    register_write(last_hop, class, hop);
    subtract_from_field(ip.ttl, 1);
}

action set_port(port) {
    modify_field(meta.port, port);
}

action unreachable() {
    drop();
}

table route {
    reads { ip.dst : lpm; }
    actions { set_nhop; unreachable; }
    size : 64;
    default_action : unreachable;
}

table resolve {
    reads { meta.nhop : exact; }
    actions { set_port; }
    size : 16;
}

control ingress {
    apply(route);
    apply(resolve);
}
