//! Bounded exhaustive equivalence verification.
//!
//! The paper's §7 proposes going beyond fuzzing: *"we wish to use program
//! verification by allowing support for a high-level specification … This
//! specification and the pipeline description can be transformed into SMT
//! formulas so that equivalence can be formally proven."* This module
//! provides the solver-free counterpart: for a bounded input domain (k-bit
//! values in the enumerated containers, traces of a fixed number of PHVs),
//! it checks *every* input exactly — within those bounds the result is a
//! proof, not a sample.
//!
//! The domain must be small (the case count is
//! `2^(bits · containers · packets)`), which is exactly the regime where
//! guard/threshold bugs live: the §5.2 limited-range failures are
//! distinguishable with 4-bit inputs and a handful of packets.

use druzhba_analysis::{symbolic_validate_level, SymbolicResidual, SymbolicVerdict};
use druzhba_core::trace::TraceMismatch;
use druzhba_core::{Error, MachineCode, Phv, Result, Trace};
use druzhba_dgen::{OptLevel, Pipeline, PipelineSpec};

use crate::minimize::{minimize, MinimizeConfig, MinimizedCounterExample};
use crate::sim::Simulator;
use crate::testing::Specification;

/// Bounds and observation points for exhaustive verification.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Enumerated values per container: `[0, 2^input_bits)`.
    pub input_bits: u32,
    /// Length of every enumerated input trace.
    pub packets: usize,
    /// Containers enumerated (the program's input fields); all others are
    /// zero in every generated PHV.
    pub relevant_containers: Vec<usize>,
    /// Containers compared against the specification (`None` = all).
    pub observable: Option<Vec<usize>>,
    /// State cells compared after each trace.
    pub state_cells: Vec<(usize, usize, usize)>,
    /// Refuse to enumerate more cases than this (guards against
    /// accidental exponential blowups).
    pub max_cases: u64,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            input_bits: 2,
            packets: 3,
            relevant_containers: Vec::new(),
            observable: None,
            state_cells: Vec::new(),
            max_cases: 5_000_000,
        }
    }
}

/// The verdict of a bounded verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Every input within the bounds agreed.
    Verified {
        /// Number of input traces checked.
        cases: u64,
    },
    /// A concrete diverging input.
    CounterExample {
        /// The input trace that diverges.
        input: Trace,
        /// Where pipeline and specification disagree.
        mismatch: TraceMismatch,
        /// The input further reduced by delta debugging (enumeration
        /// order already biases toward small inputs, but value shrinking
        /// and packet reduction usually tighten it more). Boxed to keep
        /// the happy-path `Verified` variant small.
        minimized: Option<Box<MinimizedCounterExample>>,
    },
}

impl VerifyOutcome {
    /// True if verification succeeded.
    pub fn verified(&self) -> bool {
        matches!(self, VerifyOutcome::Verified { .. })
    }
}

/// Delta-debug a concrete diverging input found by the enumeration (the
/// odometer order already biases toward small values, but packet
/// reduction and value shrinking usually tighten it further).
fn minimize_counterexample(
    pipeline_spec: &PipelineSpec,
    mc: &MachineCode,
    opt: OptLevel,
    reference: &mut dyn Specification,
    input: &Trace,
    cfg: &VerifyConfig,
) -> Option<Box<MinimizedCounterExample>> {
    minimize(
        pipeline_spec,
        mc,
        opt,
        reference,
        input,
        &MinimizeConfig {
            observable: cfg.observable.clone(),
            state_cells: cfg.state_cells.clone(),
            ..MinimizeConfig::default()
        },
    )
    .map(Box::new)
}

/// Exhaustively check pipeline-vs-specification equivalence within the
/// configured bounds.
pub fn verify_bounded(
    pipeline_spec: &PipelineSpec,
    mc: &MachineCode,
    opt: OptLevel,
    reference: &mut dyn Specification,
    cfg: &VerifyConfig,
) -> Result<VerifyOutcome> {
    // Refuse domains we cannot actually enumerate rather than silently
    // clamping: reporting "verified" over a smaller domain than requested
    // would be a false proof.
    if cfg.input_bits > 31 {
        return Err(Error::Other {
            message: format!(
                "bounded verification supports at most 31-bit inputs \
                 (requested {} bits); clamping would silently verify a \
                 smaller domain than asked for",
                cfg.input_bits
            ),
        });
    }
    let slots = cfg.relevant_containers.len() * cfg.packets;
    let values_per_slot = 1u64 << cfg.input_bits;
    // An overflowing case count certainly exceeds any budget.
    let cases = values_per_slot
        .checked_pow(slots as u32)
        .unwrap_or(u64::MAX);
    if cases > cfg.max_cases {
        return Err(Error::Other {
            message: format!(
                "bounded verification needs {cases} cases \
                 (> budget {}); shrink bits/packets/containers",
                cfg.max_cases
            ),
        });
    }
    let pipeline = Pipeline::generate(pipeline_spec, mc, opt)?;
    let mut sim = Simulator::new(pipeline);
    let phv_length = pipeline_spec.config.phv_length;

    // Odometer over all (container, packet) slots.
    let mut assignment = vec![0u32; slots];
    let max = (values_per_slot - 1) as u32;
    let mut checked = 0u64;
    loop {
        // Build the input trace for this assignment.
        let mut phvs = Vec::with_capacity(cfg.packets);
        for p in 0..cfg.packets {
            let mut phv = Phv::zeroed(phv_length);
            for (ci, &container) in cfg.relevant_containers.iter().enumerate() {
                phv.set(
                    container,
                    assignment[p * cfg.relevant_containers.len() + ci],
                );
            }
            phvs.push(phv);
        }
        let input = Trace::from_phvs(phvs);

        // Run both sides from clean state.
        sim.reset();
        let actual = sim.run(&input);
        reference.reset();
        let expected = Trace::from_phvs(input.phvs.iter().map(|p| reference.process(p)).collect());

        if let Some(mismatch) = expected.first_mismatch(&actual, cfg.observable.as_deref()) {
            let minimized = minimize_counterexample(pipeline_spec, mc, opt, reference, &input, cfg);
            return Ok(VerifyOutcome::CounterExample {
                input,
                mismatch,
                minimized,
            });
        }
        if !cfg.state_cells.is_empty() {
            let snapshot = actual.state.as_ref().expect("run records state");
            let expected_state = reference.state();
            for (i, &(stage, slot, var)) in cfg.state_cells.iter().enumerate() {
                let actual_v = snapshot
                    .get(stage)
                    .and_then(|s| s.get(slot))
                    .and_then(|vars| vars.get(var))
                    .copied();
                if actual_v != expected_state.get(i).copied() {
                    let minimized =
                        minimize_counterexample(pipeline_spec, mc, opt, reference, &input, cfg);
                    return Ok(VerifyOutcome::CounterExample {
                        input,
                        mismatch: TraceMismatch::StateMismatch {
                            stage,
                            slot,
                            expected: expected_state.get(i).copied().into_iter().collect(),
                            actual: actual_v.into_iter().collect(),
                        },
                        minimized,
                    });
                }
            }
        }
        checked += 1;

        // Next assignment.
        let mut i = 0;
        loop {
            if i == slots {
                return Ok(VerifyOutcome::Verified { cases: checked });
            }
            if assignment[i] < max {
                assignment[i] += 1;
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
        if slots == 0 {
            // Single (empty) assignment: one case total.
            return Ok(VerifyOutcome::Verified { cases: checked });
        }
    }
}

/// Outcome of proof-first verification ([`verify_symbolic_first`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolicVerifyOutcome {
    /// The compiled program's canonical symbolic transfer function equals
    /// the source semantics' term for term — equivalence holds over the
    /// *entire* 32-bit input and state space, not just the bounds.
    Proved,
    /// Normalization left residual sites (unequal-but-not-disjoint terms,
    /// a refutation, or an executor bail); bounded enumeration decided
    /// them within the configured bounds.
    Fallback {
        /// The sites symbolic validation could not prove equal.
        residuals: Vec<SymbolicResidual>,
        /// What exhaustive enumeration concluded within the bounds.
        outcome: VerifyOutcome,
    },
}

impl SymbolicVerifyOutcome {
    /// True if equivalence holds — by proof, or exhaustively within the
    /// bounds after fallback.
    pub fn verified(&self) -> bool {
        match self {
            SymbolicVerifyOutcome::Proved => true,
            SymbolicVerifyOutcome::Fallback { outcome, .. } => outcome.verified(),
        }
    }
}

/// The Unoptimized backend of a machine code, viewed as a
/// [`Specification`]: the reference side of translation validation. Each
/// packet runs through a one-PHV trace so state persists across calls.
struct SourceSpec {
    sim: Simulator,
    state_cells: Vec<(usize, usize, usize)>,
    last_state: Option<druzhba_core::trace::StateSnapshot>,
}

impl Specification for SourceSpec {
    fn reset(&mut self) {
        self.sim.reset();
        self.last_state = None;
    }
    fn process(&mut self, input: &Phv) -> Phv {
        let out = self.sim.run(&Trace::from_phvs(vec![input.clone()]));
        self.last_state = out.state.clone();
        out.phvs.into_iter().next().expect("one PHV in, one out")
    }
    fn state(&self) -> Vec<druzhba_core::Value> {
        let snapshot = self.last_state.as_deref().unwrap_or(&[]);
        self.state_cells
            .iter()
            .map(|&(stage, slot, var)| {
                snapshot
                    .get(stage)
                    .and_then(|s| s.get(slot))
                    .and_then(|vars| vars.get(var))
                    .copied()
                    .unwrap_or(0)
            })
            .collect()
    }
}

/// Proof-first translation validation: try symbolic validation
/// (canonical term equality, which covers the full 32-bit input and
/// state space), and fall back to [`verify_bounded`]'s exhaustive
/// enumeration — compiled level against the Unoptimized backend of the
/// *same* machine code — only on the residual sites the rewrite engine
/// could not decide.
///
/// This relates the compiled program at `opt` to its own source
/// semantics, the same obligation `symbolic_validate_level` discharges.
/// To compare against an external specification (a mutant against the
/// original program's interpreter, say), use [`verify_bounded`]
/// directly.
pub fn verify_symbolic_first(
    pipeline_spec: &PipelineSpec,
    mc: &MachineCode,
    opt: OptLevel,
    cfg: &VerifyConfig,
) -> Result<SymbolicVerifyOutcome> {
    let residuals = match symbolic_validate_level(pipeline_spec, mc, opt) {
        SymbolicVerdict::Proved => return Ok(SymbolicVerifyOutcome::Proved),
        SymbolicVerdict::Refuted { level, site, .. } => vec![SymbolicResidual { level, site }],
        SymbolicVerdict::Unknown { residuals } => residuals,
    };
    let reference_pipeline = Pipeline::generate(pipeline_spec, mc, OptLevel::Unoptimized)?;
    let mut reference = SourceSpec {
        sim: Simulator::new(reference_pipeline),
        state_cells: cfg.state_cells.clone(),
        last_state: None,
    };
    let outcome = verify_bounded(pipeline_spec, mc, opt, &mut reference, cfg)?;
    Ok(SymbolicVerifyOutcome::Fallback { residuals, outcome })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::ClosureSpec;
    use druzhba_alu_dsl::atoms::atom;
    use druzhba_core::PipelineConfig;
    use druzhba_dgen::expected_machine_code;

    /// 1-stage accumulator: state += container 0; old state -> container 1.
    fn setup() -> (PipelineSpec, MachineCode) {
        let spec = PipelineSpec::new(
            PipelineConfig::with_phv_length(1, 1, 2),
            atom("raw").unwrap(),
            atom("stateless_mux").unwrap(),
        )
        .unwrap();
        let mut mc = MachineCode::from_pairs(
            expected_machine_code(&spec)
                .into_iter()
                .map(|(n, _)| (n, 0)),
        );
        mc.set("output_mux_phv_0_1", 2);
        (spec, mc)
    }

    fn accumulator_spec() -> impl Specification {
        ClosureSpec::new(
            0u32,
            |state: &mut u32, input: &Phv| {
                let old = *state;
                *state = state.wrapping_add(input.get(0));
                Phv::new(vec![input.get(0), old])
            },
            |s| vec![*s],
        )
    }

    #[test]
    fn correct_pipeline_verifies_exhaustively() {
        let (spec, mc) = setup();
        let cfg = VerifyConfig {
            input_bits: 3,
            packets: 3,
            relevant_containers: vec![0],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            ..VerifyConfig::default()
        };
        let mut reference = accumulator_spec();
        let outcome =
            verify_bounded(&spec, &mc, OptLevel::SccInline, &mut reference, &cfg).unwrap();
        match outcome {
            VerifyOutcome::Verified { cases } => assert_eq!(cases, 8u64.pow(3)),
            other => panic!("expected verified, got {other:?}"),
        }
    }

    #[test]
    fn wrong_pipeline_yields_concrete_counterexample() {
        let (spec, mut mc) = setup();
        // Subtract instead of add.
        mc.set("stateful_alu_0_0_arith_op_0", 1);
        let cfg = VerifyConfig {
            input_bits: 2,
            packets: 2,
            relevant_containers: vec![0],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            ..VerifyConfig::default()
        };
        let mut reference = accumulator_spec();
        let outcome = verify_bounded(&spec, &mc, OptLevel::Scc, &mut reference, &cfg).unwrap();
        match outcome {
            VerifyOutcome::CounterExample { input, .. } => {
                // The counterexample must actually involve a nonzero add
                // (x - y == x + y only when y == 0 in 2-bit space... it
                // diverges as soon as any input is nonzero).
                assert!(input.phvs.iter().any(|p| p.get(0) != 0));
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn budget_guard_refuses_blowups() {
        let (spec, mc) = setup();
        let cfg = VerifyConfig {
            input_bits: 10,
            packets: 10,
            relevant_containers: vec![0, 1],
            max_cases: 1_000,
            ..VerifyConfig::default()
        };
        let mut reference = accumulator_spec();
        let err = verify_bounded(&spec, &mc, OptLevel::Scc, &mut reference, &cfg).unwrap_err();
        assert!(err.to_string().contains("shrink"));
    }

    #[test]
    fn oversized_bit_widths_are_rejected_not_clamped() {
        let (spec, mc) = setup();
        let cfg = VerifyConfig {
            input_bits: 40,
            packets: 1,
            relevant_containers: vec![0],
            max_cases: u64::MAX,
            ..VerifyConfig::default()
        };
        let mut reference = accumulator_spec();
        let err = verify_bounded(&spec, &mc, OptLevel::Scc, &mut reference, &cfg).unwrap_err();
        assert!(err.to_string().contains("31-bit"), "{err}");
    }

    #[test]
    fn counterexample_carries_a_reproducing_minimization() {
        let (spec, mut mc) = setup();
        mc.set("stateful_alu_0_0_arith_op_0", 1); // subtract instead of add
        let cfg = VerifyConfig {
            input_bits: 2,
            packets: 3,
            relevant_containers: vec![0],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            ..VerifyConfig::default()
        };
        let mut reference = accumulator_spec();
        let outcome = verify_bounded(&spec, &mc, OptLevel::Fused, &mut reference, &cfg).unwrap();
        let VerifyOutcome::CounterExample {
            input, minimized, ..
        } = outcome
        else {
            panic!("expected counterexample");
        };
        let mce = minimized.expect("divergences carry a minimization");
        assert!(mce.packets() <= input.len());
        // Replaying the minimized input still diverges in the same class.
        let mut reference = accumulator_spec();
        let v = crate::testing::run_case(
            &spec,
            &mc,
            OptLevel::Fused,
            &mut reference,
            &mce.input,
            cfg.observable.as_deref(),
            &cfg.state_cells,
        );
        assert_eq!(v.class(), mce.verdict.class());
        assert!(!v.passed());
    }

    #[test]
    fn no_relevant_containers_is_single_case() {
        let (spec, mc) = setup();
        let cfg = VerifyConfig {
            input_bits: 4,
            packets: 5,
            relevant_containers: vec![],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            ..VerifyConfig::default()
        };
        let mut reference = accumulator_spec();
        let outcome =
            verify_bounded(&spec, &mc, OptLevel::SccInline, &mut reference, &cfg).unwrap();
        assert_eq!(outcome, VerifyOutcome::Verified { cases: 1 });
    }

    /// A clean compiled program is proved symbolically — no enumeration
    /// runs at all, and the claim covers the full domain.
    #[test]
    fn symbolic_first_proves_clean_program_without_enumeration() {
        let (spec, mc) = setup();
        let cfg = VerifyConfig {
            input_bits: 3,
            packets: 3,
            relevant_containers: vec![0],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            ..VerifyConfig::default()
        };
        let outcome = verify_symbolic_first(&spec, &mc, OptLevel::SccInline, &cfg).unwrap();
        assert_eq!(outcome, SymbolicVerifyOutcome::Proved);
        assert!(outcome.verified());
    }

    /// A *mutated* machine code is still translation-consistent: every
    /// backend implements the mutated semantics, so proof-first
    /// validation must never misreport the mutation as a miscompilation
    /// (zero false refutations).
    #[test]
    fn symbolic_first_never_refutes_a_consistent_mutant() {
        let (spec, mut mc) = setup();
        mc.set("stateful_alu_0_0_arith_op_0", 1); // subtract instead of add
        let cfg = VerifyConfig {
            input_bits: 2,
            packets: 2,
            relevant_containers: vec![0],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            ..VerifyConfig::default()
        };
        for level in [OptLevel::Scc, OptLevel::SccInline, OptLevel::Fused] {
            let outcome = verify_symbolic_first(&spec, &mc, level, &cfg).unwrap();
            assert!(outcome.verified(), "{level:?}: {outcome:?}");
        }
    }

    /// The fallback reference — the Unoptimized backend wrapped as a
    /// [`Specification`] — agrees with the compiled levels packet by
    /// packet, including persistent state across `process` calls.
    #[test]
    fn source_spec_reference_tracks_unoptimized_backend() {
        let (spec, mc) = setup();
        let cfg = VerifyConfig {
            input_bits: 2,
            packets: 3,
            relevant_containers: vec![0],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            ..VerifyConfig::default()
        };
        let pipeline = Pipeline::generate(&spec, &mc, OptLevel::Unoptimized).unwrap();
        let mut reference = SourceSpec {
            sim: Simulator::new(pipeline),
            state_cells: cfg.state_cells.clone(),
            last_state: None,
        };
        let outcome = verify_bounded(&spec, &mc, OptLevel::Fused, &mut reference, &cfg).unwrap();
        assert_eq!(outcome, VerifyOutcome::Verified { cases: 4u64.pow(3) });
    }

    /// Exhaustive verification catches the §5.2 limited-range bug class
    /// that sampling-based fuzzing can only catch probabilistically: a
    /// sampling-style reset whose threshold is off by one.
    #[test]
    fn catches_threshold_off_by_one_exhaustively() {
        let spec = PipelineSpec::new(
            PipelineConfig::with_phv_length(1, 1, 2),
            atom("if_else_raw").unwrap(),
            atom("stateless_mux").unwrap(),
        )
        .unwrap();
        let mut mc = MachineCode::from_pairs(
            expected_machine_code(&spec)
                .into_iter()
                .map(|(n, _)| (n, 0)),
        );
        // if (state >= 3) { state = 0 } else { state += pkt_0 }
        mc.set("stateful_alu_0_0_rel_op_0", 0); // >=
        mc.set("stateful_alu_0_0_mux3_0", 2); // C()
        mc.set("stateful_alu_0_0_const_0", 3);
        mc.set("stateful_alu_0_0_opt_1", 1); // then: 0 + ...
        mc.set("stateful_alu_0_0_mux3_1", 2); // ... + C(0)
        mc.set("stateful_alu_0_0_mux3_2", 0); // else: state + pkt_0
        mc.set("output_mux_phv_0_1", 2);
        // The spec resets at threshold 4 — the machine code's 3 is an
        // off-by-one only visible when the running sum lands exactly on 3.
        let mut reference = ClosureSpec::new(
            0u32,
            |state: &mut u32, input: &Phv| {
                let old = *state;
                if *state >= 4 {
                    *state = 0;
                } else {
                    *state = state.wrapping_add(input.get(0));
                }
                Phv::new(vec![input.get(0), old])
            },
            |s| vec![*s],
        );
        let cfg = VerifyConfig {
            input_bits: 3,
            packets: 2,
            relevant_containers: vec![0],
            observable: Some(vec![1]),
            state_cells: vec![(0, 0, 0)],
            ..VerifyConfig::default()
        };
        let outcome =
            verify_bounded(&spec, &mc, OptLevel::SccInline, &mut reference, &cfg).unwrap();
        match outcome {
            VerifyOutcome::CounterExample { input, .. } => {
                // Divergence requires the first packet to land the sum
                // exactly on 3.
                assert_eq!(input.phvs[0].get(0), 3);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }
}
