//! Abstract execution of the SCC-inline stack bytecode.
//!
//! A forward-dataflow pass over [`BytecodeProgram`]: the compiler only
//! ever emits forward jumps (structured `if`-chain lowering has no loops),
//! so one ascending sweep with per-pc joined abstract `(stack, state)`
//! frames reaches the fixpoint. Alongside the abstract result, the pass
//! records which outcome of every `JumpIfZero` is reachable — the raw
//! material for the dead-edge predictions cross-checked against greybox
//! coverage.

use druzhba_dgen::bytecode::{BytecodeProgram, Instr};

use crate::alu::join_states;
use crate::domain::{AbsVal, Tri};

/// Result of abstractly executing one bytecode invocation.
#[derive(Debug, Clone)]
pub struct BytecodeAbs {
    pub output: AbsVal,
    pub state: Vec<AbsVal>,
    /// `(pc, taken)` conditional-branch outcomes proven unreachable.
    pub dead_branches: Vec<(u32, bool)>,
    /// `(pc, taken)` outcomes the analysis could not rule out.
    pub live_branches: Vec<(u32, bool)>,
}

/// Abstractly execute `prog` on abstract operands and entry state.
///
/// Returns `None` when the program violates the structural assumptions
/// (a backward jump or stack-shape mismatch at a join) — the compilers
/// never produce such programs, but the analyzer refuses to guess.
pub fn abs_eval_bytecode(
    prog: &BytecodeProgram,
    operands: &[AbsVal],
    state_in: &[AbsVal],
) -> Option<BytecodeAbs> {
    let instrs = prog.instrs();
    let default_output = state_in.first().copied().unwrap_or(AbsVal::constant(0));

    // Joined abstract frame flowing *into* each pc.
    type Frame = (Vec<AbsVal>, Vec<AbsVal>);
    let mut inflow: Vec<Option<Frame>> = vec![None; instrs.len()];
    if instrs.is_empty() {
        return Some(BytecodeAbs {
            output: default_output,
            state: state_in.to_vec(),
            dead_branches: Vec::new(),
            live_branches: Vec::new(),
        });
    }
    inflow[0] = Some((Vec::new(), state_in.to_vec()));

    let mut exit: Option<(AbsVal, Vec<AbsVal>)> = None;
    let mut dead_branches = Vec::new();
    let mut live_branches = Vec::new();

    let join_into = |slot: &mut Option<Frame>, stack: &[AbsVal], state: &[AbsVal]| -> bool {
        match slot {
            None => {
                *slot = Some((stack.to_vec(), state.to_vec()));
                true
            }
            Some((s0, st0)) => {
                if s0.len() != stack.len() {
                    return false;
                }
                *s0 = join_states(s0, stack);
                *st0 = join_states(st0, state);
                true
            }
        }
    };

    for pc in 0..instrs.len() {
        let Some((mut stack, mut state)) = inflow[pc].clone() else {
            // Unreachable pc: both outcomes of a conditional here are dead.
            if matches!(instrs[pc], Instr::JumpIfZero(_)) {
                dead_branches.push((pc as u32, false));
                dead_branches.push((pc as u32, true));
            }
            continue;
        };
        match instrs[pc] {
            Instr::Const(v) => stack.push(AbsVal::constant(v)),
            Instr::Operand(i) => stack.push(
                operands
                    .get(i as usize)
                    .copied()
                    .unwrap_or(AbsVal::constant(0)),
            ),
            Instr::State(i) => stack.push(
                state
                    .get(i as usize)
                    .copied()
                    .unwrap_or(AbsVal::constant(0)),
            ),
            Instr::Bin(op) => {
                let r = stack.pop()?;
                let l = stack.pop()?;
                stack.push(AbsVal::binop(op, l, r));
            }
            Instr::Un(op) => {
                let x = stack.pop()?;
                stack.push(AbsVal::unop(op, x));
            }
            Instr::StoreState(i) => {
                let v = stack.pop()?;
                if let Some(slot) = state.get_mut(i as usize) {
                    *slot = v;
                }
            }
            Instr::JumpIfZero(target) => {
                let v = stack.pop()?;
                if (target as usize) <= pc {
                    return None;
                }
                let truth = v.truth();
                // `taken` mirrors the interpreter: jump when the value is
                // falsy.
                let can_take = truth != Tri::True;
                let can_fall = truth != Tri::False;
                for (can, taken) in [(can_take, true), (can_fall, false)] {
                    if can {
                        live_branches.push((pc as u32, taken));
                    } else {
                        dead_branches.push((pc as u32, taken));
                    }
                }
                if can_take && !join_into(&mut inflow[target as usize], &stack, &state) {
                    return None;
                }
                if can_fall
                    && pc + 1 < instrs.len()
                    && !join_into(&mut inflow[pc + 1], &stack, &state)
                {
                    return None;
                }
                continue;
            }
            Instr::Jump(target) => {
                if (target as usize) <= pc {
                    return None;
                }
                if !join_into(&mut inflow[target as usize], &stack, &state) {
                    return None;
                }
                continue;
            }
            Instr::ReturnValue => {
                let v = stack.pop()?;
                exit = join_exit(exit, (v, state));
                continue;
            }
            Instr::Halt => {
                exit = join_exit(exit, (default_output, state));
                continue;
            }
        }
        if pc + 1 < instrs.len() && !join_into(&mut inflow[pc + 1], &stack, &state) {
            return None;
        }
    }

    let (output, state) = exit.unwrap_or((default_output, state_in.to_vec()));
    Some(BytecodeAbs {
        output,
        state,
        dead_branches,
        live_branches,
    })
}

fn join_exit(
    acc: Option<(AbsVal, Vec<AbsVal>)>,
    next: (AbsVal, Vec<AbsVal>),
) -> Option<(AbsVal, Vec<AbsVal>)> {
    Some(match acc {
        None => next,
        Some((v, s)) => (v.join(next.0), join_states(&s, &next.1)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use druzhba_alu_dsl::parse_alu;

    #[test]
    fn bytecode_abstraction_contains_concrete_runs() {
        let src = "\
name: abs_bc
type: stateful
state variables: {s}
hole variables: {}
packet fields: {p}
if (p == 3) { s = s + 2; }
else { s = s - 1; }
";
        let spec = parse_alu(src).expect("parses");
        let prog = BytecodeProgram::compile(&spec);
        let abs = abs_eval_bytecode(&prog, &[AbsVal::bits(3)], &[AbsVal::range(1, 5)])
            .expect("structured program");
        for p in 0u32..8 {
            for s in 1u32..=5 {
                let mut st = [s];
                let out = prog.run(&[p], &mut st);
                assert!(abs.output.contains(out), "out {out} p={p} s={s}");
                assert!(abs.state[0].contains(st[0]), "state {} p={p} s={s}", st[0]);
            }
        }
        // p == 3 is possible and avoidable: both branch outcomes live.
        assert!(abs.dead_branches.is_empty(), "{:?}", abs.dead_branches);
        // An impossible condition kills a branch side.
        let abs2 = abs_eval_bytecode(&prog, &[AbsVal::range(8, 20)], &[AbsVal::range(1, 5)])
            .expect("structured program");
        assert!(
            !abs2.dead_branches.is_empty(),
            "p in [8,20] can never equal 3"
        );
    }
}
