//! Program synthesis of machine-code hole values.
//!
//! The paper's case-study compiler (Chipmunk) *"generates machine code in
//! the form of constant integers from a given Domino file through the use
//! of program synthesis"*. This module is that synthesis engine, built as
//! counterexample-guided search (CEGIS) with an executable oracle:
//!
//! - **stateful atoms** are matched *structurally*: the atom body's guard
//!   and per-branch updates are synthesized component-by-component against
//!   the target [`TargetTree`], which keeps the search space per component
//!   tiny (tens to hundreds of candidates) instead of exponential in the
//!   whole atom;
//! - **stateless ALUs** enumerate their explicit opcode holes first, use
//!   [partial specialization](druzhba_dgen::opt::specialize_partial) to
//!   prune dead branches, and then enumerate the surviving data holes;
//! - every assembled assignment is **verified** against the whole target on
//!   randomized inputs; counterexamples are added to the sample set and
//!   synthesis reruns (up to [`SynthConfig::max_rounds`]).
//!
//! Verification inputs are drawn at [`SynthConfig::verify_bits`] bits. A
//! deliberately *small* width reproduces the paper's §5.2 failure class:
//! machine code that satisfies every sampled input but is wrong for larger
//! values ("the synthesis engine failed to find machine code to satisfy
//! 10-bit inputs … thus only returning machine code that only satisfied a
//! limited range of values").

use std::collections::HashMap;

use druzhba_alu_dsl::{AluSpec, Expr, HoleDomain, Stmt};
use druzhba_core::names::AluKind;
use druzhba_core::value::{self, Value};
use druzhba_core::{Error, Result, ValueGen};
use druzhba_dgen::eval::eval_unoptimized;
use druzhba_dgen::opt::specialize_partial;

use crate::ir::{TExpr, TargetTree};

/// Synthesis parameters.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Candidate immediate values (program literals plus 0/1; callers may
    /// extend).
    pub const_candidates: Vec<Value>,
    /// Initial number of random samples for component matching.
    pub base_samples: usize,
    /// Random inputs per verification round.
    pub verify_samples: usize,
    /// Bit width of sampled/verification values. 10 reproduces the paper's
    /// case study; smaller widths make the compiler *deliberately buggy*
    /// (the §5.2 limited-range failure class).
    pub verify_bits: u32,
    /// RNG seed (deterministic synthesis).
    pub seed: u64,
    /// Maximum CEGIS rounds before giving up.
    pub max_rounds: usize,
    /// Hard cap on per-component enumeration size.
    pub max_combos: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            const_candidates: vec![0, 1],
            base_samples: 24,
            verify_samples: 96,
            verify_bits: 10,
            seed: 0xC41_BA6E,
            max_rounds: 8,
            max_combos: 4_000_000,
        }
    }
}

impl SynthConfig {
    /// Add candidate constants (deduplicated, 0/1 always present).
    pub fn with_candidates(mut self, extra: &[Value]) -> Self {
        for &v in extra.iter().chain([0, 1].iter()) {
            if !self.const_candidates.contains(&v) {
                self.const_candidates.push(v);
            }
        }
        self.const_candidates.sort_unstable();
        self
    }

    /// Extend candidates with each value's +-1 neighbours. Needed for
    /// inverted-polarity guards over unsigned integers: the complement of
    /// `x >= c` is `x <= c-1`, so matching a negated guard requires the
    /// off-by-one constant.
    pub fn expand_neighbors(mut self) -> Self {
        let base = self.const_candidates.clone();
        for c in base {
            for v in [c.wrapping_sub(1), c.wrapping_add(1)] {
                if !self.const_candidates.contains(&v) {
                    self.const_candidates.push(v);
                }
            }
        }
        self.const_candidates.sort_unstable();
        self
    }
}

/// One sampled input: operand values plus (for stateful atoms) old state.
#[derive(Debug, Clone)]
struct Sample {
    ops: Vec<Value>,
    state: Vec<Value>,
}

/// Deterministic sample generator mixing uniform random values with the
/// "interesting" pool (candidate constants and their neighbours), so that
/// equality guards are exercised on both sides.
struct SampleGen {
    gen: ValueGen,
    pool: Vec<Value>,
    bits: u32,
}

impl SampleGen {
    fn new(cfg: &SynthConfig) -> Self {
        // The pool is masked to the verification width: a compiler that
        // verifies at k bits genuinely never sees larger inputs, which is
        // what lets the paper's "limited range of values" bug class arise.
        let mask = value::max_for_bits(cfg.verify_bits);
        let mut pool = vec![0, 1 & mask];
        for &c in &cfg.const_candidates {
            for v in [c.wrapping_sub(1), c, c.wrapping_add(1)] {
                let v = v & mask;
                if !pool.contains(&v) {
                    pool.push(v);
                }
            }
        }
        pool.push(mask);
        SampleGen {
            gen: ValueGen::new(cfg.seed, cfg.verify_bits),
            pool,
            bits: cfg.verify_bits,
        }
    }

    fn value(&mut self) -> Value {
        // Half uniform in [0, 2^bits), half from the interesting pool.
        if self.gen.value_below(2) == 0 {
            let idx = self.gen.value_below(self.pool.len() as u32) as usize;
            self.pool[idx]
        } else {
            let max = value::max_for_bits(self.bits);
            if max == Value::MAX {
                self.gen.value()
            } else {
                self.gen.value_below(max.saturating_add(1).max(1))
            }
        }
    }

    fn sample(&mut self, ops: usize, state: usize) -> Sample {
        Sample {
            ops: (0..ops).map(|_| self.value()).collect(),
            state: (0..state).map(|_| self.value()).collect(),
        }
    }

    /// Deterministic corner samples: every {0,1} combination over the input
    /// slots (capped), plus one all-`v` diagonal per pool value. These
    /// guarantee coverage of degenerate points (e.g. all-zero operands)
    /// that uniform sampling can miss, which would otherwise let constant
    /// functions masquerade as `||`/`&&`.
    fn corners(&self, ops: usize, state: usize) -> Vec<Sample> {
        let slots = ops + state;
        let mut out = Vec::new();
        if slots <= 6 {
            for mask in 0..(1u32 << slots) {
                let values: Vec<Value> = (0..slots).map(|i| (mask >> i) & 1).collect();
                out.push(Sample {
                    ops: values[..ops].to_vec(),
                    state: values[ops..].to_vec(),
                });
            }
        }
        for &v in &self.pool {
            out.push(Sample {
                ops: vec![v; ops],
                state: vec![v; state],
            });
        }
        out
    }
}

// ----------------------------------------------------------------------
// Stateful atom synthesis.
// ----------------------------------------------------------------------

/// Synthesize hole values (keyed by local hole name) making `atom`
/// implement `tree` over `operand_count` operands.
pub fn synthesize_stateful(
    atom: &AluSpec,
    operand_count: usize,
    tree: &TargetTree,
    cfg: &SynthConfig,
) -> Result<HashMap<String, Value>> {
    debug_assert_eq!(atom.kind, AluKind::Stateful);
    let group_width = tree.state_width();
    if group_width > atom.state_vars.len() {
        return Err(Error::DoesNotFit {
            message: format!(
                "atom `{}` has {} state variable(s) but the group needs {group_width}",
                atom.name,
                atom.state_vars.len()
            ),
        });
    }
    if operand_count > atom.operand_count() {
        return Err(Error::DoesNotFit {
            message: format!(
                "atom `{}` has {} operand(s) but the target uses {operand_count}",
                atom.name,
                atom.operand_count()
            ),
        });
    }

    let cfg = cfg
        .clone()
        .with_candidates(&tree.constants())
        .expand_neighbors();
    let mut sg = SampleGen::new(&cfg);
    let mut samples = sg.corners(atom.operand_count(), atom.state_vars.len());
    samples.extend(
        (0..cfg.base_samples).map(|_| sg.sample(atom.operand_count(), atom.state_vars.len())),
    );

    for _round in 0..cfg.max_rounds {
        let mut holes = HashMap::new();
        match_body(
            atom,
            &atom.body,
            Shape::Tree(tree),
            &samples,
            &cfg,
            &mut holes,
        )?;
        // Unconstrained holes (never reached, e.g. both branches of a
        // statically-true guard) default to zero.
        for h in &atom.holes {
            holes.entry(h.local.clone()).or_insert(0);
        }

        // CEGIS verification: whole atom vs whole tree.
        let mut counterexample = None;
        for _ in 0..cfg.verify_samples {
            let s = sg.sample(atom.operand_count(), atom.state_vars.len());
            if !check_sample(atom, &holes, tree, &s) {
                counterexample = Some(s);
                break;
            }
        }
        match counterexample {
            None => return Ok(holes),
            Some(s) => samples.push(s),
        }
    }
    Err(Error::SynthesisFailed {
        message: format!(
            "atom `{}`: no hole assignment verified within {} CEGIS rounds",
            atom.name, cfg.max_rounds
        ),
    })
}

fn check_sample(
    atom: &AluSpec,
    holes: &HashMap<String, Value>,
    tree: &TargetTree,
    s: &Sample,
) -> bool {
    let mut actual_state = s.state.clone();
    eval_unoptimized(atom, holes, &s.ops, &mut actual_state);
    let expected = tree.eval(&s.ops, &s.state);
    // Only the group's variables are constrained; trailing atom state
    // variables must stay unchanged (identity) so the atom is predictable.
    for (k, &actual) in actual_state.iter().enumerate() {
        let want = expected
            .get(k)
            .copied()
            .unwrap_or_else(|| s.state.get(k).copied().unwrap_or(0));
        if actual != want {
            return false;
        }
    }
    true
}

/// What a statement block must implement.
#[derive(Clone, Copy)]
enum Shape<'a> {
    Tree(&'a TargetTree),
    /// The block is unreachable or must leave state unchanged. Only
    /// reachable recursively (an identity block nested in an identity
    /// block); kept for completeness of the matcher.
    #[allow(dead_code)]
    Identity,
}

fn match_body(
    atom: &AluSpec,
    stmts: &[Stmt],
    shape: Shape<'_>,
    samples: &[Sample],
    cfg: &SynthConfig,
    holes: &mut HashMap<String, Value>,
) -> Result<()> {
    // A block of plain assignments (possibly empty).
    let all_assigns = stmts.iter().all(|s| matches!(s, Stmt::Assign { .. }));
    if all_assigns {
        return match shape {
            Shape::Identity => match_leaf(atom, stmts, &[], samples, cfg, holes),
            Shape::Tree(TargetTree::Leaf { updates }) => {
                match_leaf(atom, stmts, updates, samples, cfg, holes)
            }
            Shape::Tree(TargetTree::Branch { .. }) => Err(Error::SynthesisFailed {
                message: format!(
                    "atom `{}` has an unconditional update block where the program \
                     branches (atom too simple for this program)",
                    atom.name
                ),
            }),
        };
    }

    // A single `if` (with optional else), the canonical atom shape.
    if stmts.len() == 1 {
        if let Stmt::If { arms, else_body } = &stmts[0] {
            if arms.len() != 1 {
                return Err(Error::SynthesisFailed {
                    message: "else-if chains in atoms are not supported by the matcher".into(),
                });
            }
            let (cond, then_body) = &arms[0];
            return match shape {
                Shape::Tree(TargetTree::Branch {
                    guard,
                    then_tree,
                    else_tree,
                }) => {
                    // Direct polarity first, then inverted.
                    let direct = (|| -> Result<HashMap<String, Value>> {
                        let mut h = holes.clone();
                        synth_guard(atom, cond, GuardTarget::Expr(guard), samples, cfg, &mut h)?;
                        match_body(
                            atom,
                            then_body,
                            Shape::Tree(then_tree),
                            samples,
                            cfg,
                            &mut h,
                        )?;
                        match_body(
                            atom,
                            else_body,
                            Shape::Tree(else_tree),
                            samples,
                            cfg,
                            &mut h,
                        )?;
                        Ok(h)
                    })();
                    let chosen = match direct {
                        Ok(h) => h,
                        Err(_) => {
                            let mut h = holes.clone();
                            synth_guard(
                                atom,
                                cond,
                                GuardTarget::NegExpr(guard),
                                samples,
                                cfg,
                                &mut h,
                            )?;
                            match_body(
                                atom,
                                then_body,
                                Shape::Tree(else_tree),
                                samples,
                                cfg,
                                &mut h,
                            )?;
                            match_body(
                                atom,
                                else_body,
                                Shape::Tree(then_tree),
                                samples,
                                cfg,
                                &mut h,
                            )?;
                            h
                        }
                    };
                    *holes = chosen;
                    Ok(())
                }
                Shape::Tree(leaf @ TargetTree::Leaf { .. }) => {
                    // Unconditional target on a branching atom: pin the
                    // guard true (then-branch implements the leaf) or false.
                    let as_true = (|| -> Result<HashMap<String, Value>> {
                        let mut h = holes.clone();
                        synth_guard(atom, cond, GuardTarget::True, samples, cfg, &mut h)?;
                        match_body(atom, then_body, Shape::Tree(leaf), samples, cfg, &mut h)?;
                        Ok(h)
                    })();
                    let chosen = match as_true {
                        Ok(h) => h,
                        Err(_) => {
                            let mut h = holes.clone();
                            synth_guard(atom, cond, GuardTarget::False, samples, cfg, &mut h)?;
                            match_body(atom, else_body, Shape::Tree(leaf), samples, cfg, &mut h)?;
                            h
                        }
                    };
                    *holes = chosen;
                    Ok(())
                }
                Shape::Identity => {
                    // Both branches must be identity; pick any satisfiable
                    // guard (leave its holes for the true-guard synthesis to
                    // fill arbitrarily: default handled by caller).
                    match_body(atom, then_body, Shape::Identity, samples, cfg, holes)?;
                    match_body(atom, else_body, Shape::Identity, samples, cfg, holes)?;
                    Ok(())
                }
            };
        }
    }
    Err(Error::SynthesisFailed {
        message: format!(
            "atom `{}` body shape is not supported by the structural matcher",
            atom.name
        ),
    })
}

/// Match a block of assignments against leaf updates (`&[]` = identity).
fn match_leaf(
    atom: &AluSpec,
    stmts: &[Stmt],
    updates: &[Option<TExpr>],
    samples: &[Sample],
    cfg: &SynthConfig,
    holes: &mut HashMap<String, Value>,
) -> Result<()> {
    for stmt in stmts {
        let Stmt::Assign { target, value } = stmt else {
            unreachable!("caller checked all-assign shape");
        };
        let k = atom
            .state_var_index(target)
            .expect("analysis guarantees state target");
        // Expected semantics for this assignment: the group's update, or
        // identity for unmapped/unchanged variables.
        let expected: TExpr = match updates.get(k) {
            Some(Some(u)) => u.clone(),
            _ => TExpr::StateRef(k),
        };
        synth_component(
            atom,
            value,
            |s| expected.eval(&s.ops, &s.state),
            false,
            samples,
            cfg,
            holes,
        )?;
    }
    // A variable with a required update but no assignment in this block
    // cannot be implemented (the atom never writes it here).
    for (k, u) in updates.iter().enumerate() {
        if u.is_none() {
            continue;
        }
        let assigned = stmts.iter().any(
            |s| matches!(s, Stmt::Assign { target, .. } if atom.state_var_index(target) == Some(k)),
        );
        if !assigned {
            // Unless the update is semantically the identity, fail.
            let ident = samples.iter().all(|s| {
                u.as_ref().unwrap().eval(&s.ops, &s.state) == s.state.get(k).copied().unwrap_or(0)
            });
            if !ident {
                return Err(Error::SynthesisFailed {
                    message: format!(
                        "atom `{}` never assigns state variable #{k} in a branch that \
                         must update it",
                        atom.name
                    ),
                });
            }
        }
    }
    Ok(())
}

enum GuardTarget<'a> {
    Expr(&'a TExpr),
    NegExpr(&'a TExpr),
    True,
    False,
}

fn synth_guard(
    atom: &AluSpec,
    cond: &Expr,
    target: GuardTarget<'_>,
    samples: &[Sample],
    cfg: &SynthConfig,
    holes: &mut HashMap<String, Value>,
) -> Result<()> {
    synth_component(
        atom,
        cond,
        move |s| match &target {
            GuardTarget::Expr(g) => value::from_bool(value::truthy(g.eval(&s.ops, &s.state))),
            GuardTarget::NegExpr(g) => value::from_bool(!value::truthy(g.eval(&s.ops, &s.state))),
            GuardTarget::True => 1,
            GuardTarget::False => 0,
        },
        true,
        samples,
        cfg,
        holes,
    )
}

/// Enumerate the holes of a single atom expression until its evaluation
/// matches `expected` on every sample (`truthy`: compare as booleans).
fn synth_component(
    atom: &AluSpec,
    expr: &Expr,
    expected: impl Fn(&Sample) -> Value,
    truthy: bool,
    samples: &[Sample],
    cfg: &SynthConfig,
    holes: &mut HashMap<String, Value>,
) -> Result<()> {
    // The holes this component owns (not yet assigned by earlier
    // components).
    let mut names: Vec<String> = Vec::new();
    expr.visit(&mut |e| {
        let h = match e {
            Expr::CConst { hole }
            | Expr::Opt { hole, .. }
            | Expr::Mux2 { hole, .. }
            | Expr::Mux3 { hole, .. }
            | Expr::RelOp { hole, .. }
            | Expr::ArithOp { hole, .. } => Some(hole.clone()),
            Expr::Var(name) if atom.hole_vars.iter().any(|hv| &hv.name == name) => {
                Some(name.clone())
            }
            _ => None,
        };
        if let Some(h) = h {
            if !holes.contains_key(&h) && !names.contains(&h) {
                names.push(h);
            }
        }
    });

    // Candidate values per hole.
    let domains: Vec<Vec<Value>> = names
        .iter()
        .map(|name| {
            let domain = atom
                .hole(name)
                .map(|h| h.domain)
                .unwrap_or(HoleDomain::Bits(32));
            match domain {
                HoleDomain::Choice(n) => (0..n).collect(),
                HoleDomain::Bits(_) => {
                    let mut c: Vec<Value> = cfg
                        .const_candidates
                        .iter()
                        .copied()
                        .filter(|&v| domain.contains(v))
                        .collect();
                    if c.is_empty() {
                        c.push(0);
                    }
                    c
                }
            }
        })
        .collect();

    let combos: u64 = domains.iter().map(|d| d.len() as u64).product();
    if combos > cfg.max_combos {
        return Err(Error::SynthesisFailed {
            message: format!("component search space too large ({combos} combinations)"),
        });
    }

    // Probe spec: evaluate just this expression.
    let probe = AluSpec {
        body: vec![Stmt::Return(expr.clone())],
        ..atom.clone()
    };

    let mut assignment = vec![0usize; names.len()];
    loop {
        // Install the candidate assignment.
        let mut candidate = holes.clone();
        for (i, name) in names.iter().enumerate() {
            candidate.insert(name.clone(), domains[i][assignment[i]]);
        }
        let ok = samples.iter().all(|s| {
            let mut scratch = s.state.clone();
            let got = eval_unoptimized(&probe, &candidate, &s.ops, &mut scratch).output;
            let want = expected(s);
            if truthy {
                value::truthy(got) == value::truthy(want)
            } else {
                got == want
            }
        });
        if ok {
            for (i, name) in names.iter().enumerate() {
                holes.insert(name.clone(), domains[i][assignment[i]]);
            }
            return Ok(());
        }
        // Next assignment (odometer).
        let mut i = 0;
        loop {
            if i == names.len() {
                return Err(Error::SynthesisFailed {
                    message: format!(
                        "no hole assignment for component `{expr}` of atom `{}`",
                        atom.name
                    ),
                });
            }
            assignment[i] += 1;
            if assignment[i] < domains[i].len() {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

// ----------------------------------------------------------------------
// Stateless ALU synthesis.
// ----------------------------------------------------------------------

/// Synthesize hole values making the stateless ALU compute `target` over
/// `operand_count` operands.
pub fn synthesize_stateless(
    alu: &AluSpec,
    operand_count: usize,
    target: &TExpr,
    cfg: &SynthConfig,
) -> Result<HashMap<String, Value>> {
    debug_assert_eq!(alu.kind, AluKind::Stateless);
    if operand_count > alu.operand_count() {
        return Err(Error::DoesNotFit {
            message: format!(
                "stateless ALU `{}` has {} operand(s) but the target uses {operand_count}",
                alu.name,
                alu.operand_count()
            ),
        });
    }
    let cfg = cfg
        .clone()
        .with_candidates(&target.constants())
        .expand_neighbors();
    let mut sg = SampleGen::new(&cfg);
    let mut samples = sg.corners(alu.operand_count(), 0);
    samples.extend((0..cfg.base_samples).map(|_| sg.sample(alu.operand_count(), 0)));

    // Control holes (explicit hole variables) are enumerated first; each
    // control assignment prunes the body via partial specialization.
    let controls: Vec<(String, Vec<Value>)> = alu
        .hole_vars
        .iter()
        .map(|hv| {
            let bound = HoleDomain::Bits(hv.bits).bound().min(256) as u32;
            (hv.name.clone(), (0..bound).collect())
        })
        .collect();

    for _round in 0..cfg.max_rounds {
        let holes = try_stateless_once(alu, target, &controls, &samples, &cfg)?;
        // CEGIS verification.
        let mut counterexample = None;
        for _ in 0..cfg.verify_samples {
            let s = sg.sample(alu.operand_count(), 0);
            let mut scratch = [];
            let got = eval_unoptimized(alu, &holes, &s.ops, &mut scratch).output;
            if got != target.eval(&s.ops, &[]) {
                counterexample = Some(s);
                break;
            }
        }
        match counterexample {
            None => return Ok(holes),
            Some(s) => samples.push(s),
        }
    }
    Err(Error::SynthesisFailed {
        message: format!(
            "stateless ALU `{}`: no verified assignment within {} rounds",
            alu.name, cfg.max_rounds
        ),
    })
}

fn try_stateless_once(
    alu: &AluSpec,
    target: &TExpr,
    controls: &[(String, Vec<Value>)],
    samples: &[Sample],
    cfg: &SynthConfig,
) -> Result<HashMap<String, Value>> {
    let mut control_assignment = vec![0usize; controls.len()];
    loop {
        let mut holes: HashMap<String, Value> = controls
            .iter()
            .zip(&control_assignment)
            .map(|((name, domain), &i)| (name.clone(), domain[i]))
            .collect();
        // Prune dead branches under this control assignment.
        let residual = specialize_partial(alu, &holes);
        let attempt = synth_component(
            &residual,
            &body_as_expr(&residual),
            |s| target.eval(&s.ops, &[]),
            false,
            samples,
            cfg,
            &mut holes,
        );
        if attempt.is_ok() {
            // Default any holes from pruned branches.
            for h in &alu.holes {
                holes.entry(h.local.clone()).or_insert(0);
            }
            return Ok(holes);
        }
        // Next control assignment.
        let mut i = 0;
        loop {
            if i == controls.len() {
                return Err(Error::SynthesisFailed {
                    message: format!(
                        "stateless ALU `{}` cannot compute target `{target:?}`",
                        alu.name
                    ),
                });
            }
            control_assignment[i] += 1;
            if control_assignment[i] < controls[i].1.len() {
                break;
            }
            control_assignment[i] = 0;
            i += 1;
        }
        if controls.is_empty() {
            return Err(Error::SynthesisFailed {
                message: format!(
                    "stateless ALU `{}` cannot compute target `{target:?}`",
                    alu.name
                ),
            });
        }
    }
}

/// A specialized stateless body should be a single `return expr`; extract
/// that expression (synthesizing over it component-wise).
fn body_as_expr(spec: &AluSpec) -> Expr {
    match spec.body.as_slice() {
        [Stmt::Return(e)] => e.clone(),
        _ => {
            // Residual control flow (runtime conditions): wrap as an
            // unsupported marker that will fail enumeration cleanly — the
            // atoms shipped with Druzhba always specialize to one return
            // per control assignment.
            Expr::Const(u32::MAX)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use druzhba_alu_dsl::atoms::atom;
    use druzhba_domino::ast::BinOp;

    fn cfg() -> SynthConfig {
        SynthConfig::default()
    }

    fn run_atom(atom_name: &str, ops: usize, tree: &TargetTree) -> Result<HashMap<String, Value>> {
        synthesize_stateful(&atom(atom_name).unwrap(), ops, tree, &cfg())
    }

    #[test]
    fn raw_accumulate_operand() {
        // state += op0
        let tree = TargetTree::Leaf {
            updates: vec![Some(TExpr::Bin(
                BinOp::Add,
                Box::new(TExpr::StateRef(0)),
                Box::new(TExpr::Op(0)),
            ))],
        };
        let holes = run_atom("raw", 1, &tree).unwrap();
        // Verify semantics directly.
        let a = atom("raw").unwrap();
        let mut state = vec![10];
        eval_unoptimized(&a, &holes, &[7, 0], &mut state);
        assert_eq!(state[0], 17);
    }

    #[test]
    fn raw_set_constant() {
        // state = 42 (unconditional overwrite with an immediate)
        let tree = TargetTree::Leaf {
            updates: vec![Some(TExpr::Const(42))],
        };
        let holes = synthesize_stateful(
            &atom("raw").unwrap(),
            0,
            &tree,
            &cfg().with_candidates(&[42]),
        )
        .unwrap();
        let a = atom("raw").unwrap();
        let mut state = vec![999];
        eval_unoptimized(&a, &holes, &[3, 4], &mut state);
        assert_eq!(state[0], 42);
    }

    #[test]
    fn pred_raw_conditional_increment() {
        // if (state >= 10) {} else { state += 1 }  — via inverted polarity
        // (pred_raw's then-branch is the only updating branch).
        let tree = TargetTree::Branch {
            guard: TExpr::Bin(
                BinOp::Ge,
                Box::new(TExpr::StateRef(0)),
                Box::new(TExpr::Const(10)),
            ),
            then_tree: Box::new(TargetTree::Leaf {
                updates: vec![None],
            }),
            else_tree: Box::new(TargetTree::Leaf {
                updates: vec![Some(TExpr::Bin(
                    BinOp::Add,
                    Box::new(TExpr::StateRef(0)),
                    Box::new(TExpr::Const(1)),
                ))],
            }),
        };
        let holes = run_atom("pred_raw", 0, &tree).unwrap();
        let a = atom("pred_raw").unwrap();
        let mut state = vec![4];
        eval_unoptimized(&a, &holes, &[0, 0], &mut state);
        assert_eq!(state[0], 5);
        let mut state = vec![11];
        eval_unoptimized(&a, &holes, &[0, 0], &mut state);
        assert_eq!(state[0], 11, "no update at/above threshold");
    }

    #[test]
    fn if_else_raw_sampling_semantics() {
        // if (state == 9) { state = 0 } else { state += 1 }
        let tree = TargetTree::Branch {
            guard: TExpr::Bin(
                BinOp::Eq,
                Box::new(TExpr::StateRef(0)),
                Box::new(TExpr::Const(9)),
            ),
            then_tree: Box::new(TargetTree::Leaf {
                updates: vec![Some(TExpr::Const(0))],
            }),
            else_tree: Box::new(TargetTree::Leaf {
                updates: vec![Some(TExpr::Bin(
                    BinOp::Add,
                    Box::new(TExpr::StateRef(0)),
                    Box::new(TExpr::Const(1)),
                ))],
            }),
        };
        let holes = run_atom("if_else_raw", 0, &tree).unwrap();
        let a = atom("if_else_raw").unwrap();
        let mut state = vec![0];
        for i in 1..=9 {
            eval_unoptimized(&a, &holes, &[0, 0], &mut state);
            assert_eq!(state[0], i % 10);
        }
        eval_unoptimized(&a, &holes, &[0, 0], &mut state);
        assert_eq!(state[0], 0, "wraps at 9");
    }

    #[test]
    fn pair_conditional_two_variable_update() {
        // if (state0 <= op0) { state0 = op0; state1 = op1 }
        let tree = TargetTree::Branch {
            guard: TExpr::Bin(
                BinOp::Le,
                Box::new(TExpr::StateRef(0)),
                Box::new(TExpr::Op(0)),
            ),
            then_tree: Box::new(TargetTree::Leaf {
                updates: vec![Some(TExpr::Op(0)), Some(TExpr::Op(1))],
            }),
            else_tree: Box::new(TargetTree::Leaf {
                updates: vec![None, None],
            }),
        };
        let holes = run_atom("pair", 2, &tree).unwrap();
        let a = atom("pair").unwrap();
        let mut state = vec![5, 100];
        eval_unoptimized(&a, &holes, &[9, 77], &mut state);
        assert_eq!(state, vec![9, 77], "update taken when util rises");
        eval_unoptimized(&a, &holes, &[3, 55], &mut state);
        assert_eq!(state, vec![9, 77], "no update when util lower");
    }

    #[test]
    fn guard_flag_via_operand() {
        // if (op0 != 0) { state += 1 } — a stateless flag drives the guard.
        let tree = TargetTree::Branch {
            guard: TExpr::Op(0),
            then_tree: Box::new(TargetTree::Leaf {
                updates: vec![Some(TExpr::Bin(
                    BinOp::Add,
                    Box::new(TExpr::StateRef(0)),
                    Box::new(TExpr::Const(1)),
                ))],
            }),
            else_tree: Box::new(TargetTree::Leaf {
                updates: vec![None],
            }),
        };
        let holes = run_atom("pred_raw", 1, &tree).unwrap();
        let a = atom("pred_raw").unwrap();
        let mut state = vec![0];
        eval_unoptimized(&a, &holes, &[1, 0], &mut state);
        eval_unoptimized(&a, &holes, &[0, 0], &mut state);
        eval_unoptimized(&a, &holes, &[7, 0], &mut state);
        assert_eq!(state[0], 2, "increments only on truthy flag");
    }

    #[test]
    fn impossible_target_fails_cleanly() {
        // raw cannot branch.
        let tree = TargetTree::Branch {
            guard: TExpr::Bin(
                BinOp::Ge,
                Box::new(TExpr::StateRef(0)),
                Box::new(TExpr::Const(5)),
            ),
            then_tree: Box::new(TargetTree::Leaf {
                updates: vec![Some(TExpr::Const(0))],
            }),
            else_tree: Box::new(TargetTree::Leaf {
                updates: vec![Some(TExpr::Bin(
                    BinOp::Add,
                    Box::new(TExpr::StateRef(0)),
                    Box::new(TExpr::Const(1)),
                ))],
            }),
        };
        let err = run_atom("raw", 0, &tree).unwrap_err();
        assert!(matches!(err, Error::SynthesisFailed { .. }));
    }

    #[test]
    fn too_many_operands_rejected() {
        let tree = TargetTree::Leaf {
            updates: vec![Some(TExpr::Op(2))],
        };
        let err = synthesize_stateful(&atom("raw").unwrap(), 3, &tree, &cfg()).unwrap_err();
        assert!(matches!(err, Error::DoesNotFit { .. }));
    }

    #[test]
    fn stateless_add() {
        let target = TExpr::Bin(BinOp::Add, Box::new(TExpr::Op(0)), Box::new(TExpr::Op(1)));
        let alu = atom("stateless_full").unwrap();
        let holes = synthesize_stateless(&alu, 2, &target, &cfg()).unwrap();
        let mut scratch = [];
        assert_eq!(
            eval_unoptimized(&alu, &holes, &[20, 22], &mut scratch).output,
            42
        );
    }

    #[test]
    fn stateless_compare_with_constant() {
        // op0 >= 7
        let target = TExpr::Bin(BinOp::Ge, Box::new(TExpr::Op(0)), Box::new(TExpr::Const(7)));
        let alu = atom("stateless_full").unwrap();
        let holes = synthesize_stateless(&alu, 1, &target, &cfg()).unwrap();
        let mut scratch = [];
        assert_eq!(
            eval_unoptimized(&alu, &holes, &[7, 0], &mut scratch).output,
            1
        );
        assert_eq!(
            eval_unoptimized(&alu, &holes, &[6, 0], &mut scratch).output,
            0
        );
    }

    #[test]
    fn stateless_multiply_flag() {
        // op0 * 3
        let target = TExpr::Bin(
            BinOp::Mul,
            Box::new(TExpr::Op(0)),
            Box::new(TExpr::Const(3)),
        );
        let alu = atom("stateless_full").unwrap();
        let holes = synthesize_stateless(&alu, 1, &target, &cfg()).unwrap();
        let mut scratch = [];
        assert_eq!(
            eval_unoptimized(&alu, &holes, &[5, 0], &mut scratch).output,
            15
        );
    }

    #[test]
    fn stateless_constant_materialization() {
        let target = TExpr::Const(7);
        let alu = atom("stateless_full").unwrap();
        let holes = synthesize_stateless(&alu, 0, &target, &cfg()).unwrap();
        let mut scratch = [];
        assert_eq!(
            eval_unoptimized(&alu, &holes, &[123, 456], &mut scratch).output,
            7
        );
    }

    #[test]
    fn stateless_strict_less_than() {
        // op0 < op1 — not a rel_op encoding; found through another branch
        // (e.g. the mux/logic path) or fails. stateless_full expresses it
        // as !(op0 >= op1)? It cannot; expect either success or a clean
        // SynthesisFailed (documenting atom expressiveness limits).
        let target = TExpr::Bin(BinOp::Lt, Box::new(TExpr::Op(0)), Box::new(TExpr::Op(1)));
        let alu = atom("stateless_full").unwrap();
        match synthesize_stateless(&alu, 2, &target, &cfg()) {
            Ok(holes) => {
                let mut scratch = [];
                assert_eq!(
                    eval_unoptimized(&alu, &holes, &[3, 9], &mut scratch).output,
                    1
                );
                assert_eq!(
                    eval_unoptimized(&alu, &holes, &[9, 3], &mut scratch).output,
                    0
                );
            }
            Err(Error::SynthesisFailed { .. }) => {}
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn limited_range_bug_reproduced_at_low_verify_bits() {
        // The §5.2 failure class: with 2-bit verification, "state == 3" is
        // indistinguishable from "state >= 3", and the enumeration order
        // (>= before ==) picks the wrong operator.
        let tree = TargetTree::Branch {
            guard: TExpr::Bin(
                BinOp::Eq,
                Box::new(TExpr::StateRef(0)),
                Box::new(TExpr::Const(3)),
            ),
            then_tree: Box::new(TargetTree::Leaf {
                updates: vec![Some(TExpr::Const(0))],
            }),
            else_tree: Box::new(TargetTree::Leaf {
                updates: vec![Some(TExpr::Bin(
                    BinOp::Add,
                    Box::new(TExpr::StateRef(0)),
                    Box::new(TExpr::Const(1)),
                ))],
            }),
        };
        let buggy_cfg = SynthConfig {
            verify_bits: 2,
            ..cfg()
        };
        let holes =
            synthesize_stateful(&atom("if_else_raw").unwrap(), 0, &tree, &buggy_cfg).unwrap();
        let a = atom("if_else_raw").unwrap();
        // At state = 5 (outside 2 bits) the buggy machine code resets where
        // the true semantics increments.
        let mut state = vec![5];
        eval_unoptimized(&a, &holes, &[0, 0], &mut state);
        assert_eq!(
            state[0], 0,
            "2-bit-verified machine code treats ==3 as >=3 (the paper's bug class)"
        );
        // Full-width verification synthesizes correct code.
        let good = synthesize_stateful(&atom("if_else_raw").unwrap(), 0, &tree, &cfg()).unwrap();
        let mut state = vec![5];
        eval_unoptimized(&a, &good, &[0, 0], &mut state);
        assert_eq!(state[0], 6, "10-bit verification finds the == guard");
    }
}
