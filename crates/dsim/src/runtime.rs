//! Crash-proof campaign runtime: silent panic capture and a work-stealing
//! scheduler whose results stay index-ordered.
//!
//! Long differential campaigns (FP4's line-rate fuzzing, Gauntlet's
//! overnight runs) win by *surviving*: a backend crash on one mutant must
//! not unwind the whole process, and a slow shard must not idle every
//! other worker. This module supplies the two mechanisms the campaign
//! layers build on:
//!
//! - [`catch_silent`] runs one closure under `catch_unwind` with the
//!   default panic-hook output suppressed, returning the payload as a
//!   per-item [`WorkerPanic`] instead of aborting — the primitive behind
//!   the `backend_panic` verdict class.
//! - [`run_stealing`] / [`run_stealing_observed`] replace fixed-chunk
//!   sharding with a chunked-deque stealing pool. Each worker starts with
//!   a contiguous chunk, pops from its own front, and steals the back
//!   half of a victim's deque when idle. **Scheduling is dynamic but the
//!   result is not**: every item's output is written into the slot of its
//!   original index, so any report that is a pure function of the ordered
//!   results is identical across worker counts and steal interleavings.
//!
//! [`RuntimeOptions`] carries the crash-proofing knobs (checkpoint
//! directory and cadence, resume, wall-clock budget) from the CLI down
//! into the campaign drivers.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex, Once};
use std::time::{Duration, Instant};

/// A panic captured from one work item: the stringified payload, which for
/// the deterministic hostile trap (and any `panic!` with a message) is a
/// stable, replayable description of the crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// The panic payload rendered as text (`String` / `&str` payloads
    /// verbatim; anything else becomes a fixed placeholder).
    pub payload: String,
}

/// Render a panic payload as text.
pub fn panic_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

thread_local! {
    /// True while this thread is inside [`catch_silent`]: the chained
    /// panic hook stays quiet so an *expected* backend crash does not spam
    /// stderr with a captured-and-handled backtrace.
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

/// Install (once, process-wide) a panic hook that suppresses output for
/// panics captured by [`catch_silent`] and defers to the previous hook for
/// everything else — a genuine crash still prints normally.
fn install_silent_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Run `f` under `catch_unwind`, capturing a panic as [`WorkerPanic`]
/// without letting the panic hook print.
///
/// The `AssertUnwindSafe` is a contract with the caller: everything `f`
/// touches must either be owned by this one invocation or be discarded by
/// the caller on `Err` (campaign drivers treat a panicking evaluation as
/// terminal for the state it touched — e.g. a cached pipeline is never
/// reused after its backend panicked).
pub fn catch_silent<R>(f: impl FnOnce() -> R) -> Result<R, WorkerPanic> {
    install_silent_hook();
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let out = catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    out.map_err(|p| WorkerPanic {
        payload: panic_payload(p),
    })
}

/// Crash-proofing options threaded from the CLI into campaign drivers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RuntimeOptions {
    /// Directory for checkpoint snapshots and the heartbeat file
    /// (`--checkpoint DIR` / `--resume DIR`). `None` disables
    /// checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint cadence (`--every N`): a snapshot every N completed
    /// units (evaluations for campaigns, merge rounds for greybox).
    /// `0` is normalized to 1.
    pub checkpoint_every: usize,
    /// True for `--resume DIR`: load the latest good snapshot from
    /// `checkpoint_dir` before starting, degrading gracefully (fall back
    /// to the previous snapshot, then to a fresh start) on corruption.
    pub resume: bool,
    /// Wall-clock budget in seconds (`--budget-secs S`). When it expires
    /// the round ends cleanly and the report is marked truncated.
    pub budget_secs: Option<u64>,
}

impl RuntimeOptions {
    /// The checkpoint cadence with `0` normalized to 1.
    pub fn effective_every(&self) -> usize {
        self.checkpoint_every.max(1)
    }

    /// The absolute deadline implied by the budget, anchored at `start`.
    pub fn deadline(&self, start: Instant) -> Option<Instant> {
        self.budget_secs.map(|s| start + Duration::from_secs(s))
    }
}

/// Steal the back half of the first non-empty victim deque (scanning
/// cyclically from `me + 1`), queue all but the first stolen item locally,
/// and return that first item.
fn steal<T>(deques: &[Mutex<VecDeque<(usize, T)>>], me: usize) -> Option<(usize, T)> {
    let n = deques.len();
    for off in 1..n {
        let victim = (me + off) % n;
        let stolen = {
            let mut v = deques[victim].lock().expect("deque lock");
            let len = v.len();
            if len == 0 {
                continue;
            }
            // Owner pops from the front; we take the back half, keeping
            // contention windows short and work contiguous on both sides.
            v.split_off(len - len.div_ceil(2))
        };
        let mut it = stolen.into_iter();
        let first = it.next();
        deques[me].lock().expect("deque lock").extend(it);
        return first;
    }
    None
}

/// Run every item through `f` on a work-stealing pool, writing each result
/// into the slot of the item's original index and invoking `observe` on
/// the coordinating thread as each item completes (the checkpoint hook).
///
/// - A panicking `f` yields `Some(Err(WorkerPanic))` for that item only;
///   all other items still run.
/// - When `deadline` passes, workers stop cleanly between items; items
///   that never started stay `None` (the budget-truncation signal).
/// - `observe(index, &result)` is called exactly once per completed item,
///   in **completion** order (not index order) — callers that persist
///   progress must key by index, as the campaign checkpoints do.
pub fn run_stealing_observed<T, R, F, O>(
    items: Vec<T>,
    workers: usize,
    deadline: Option<Instant>,
    f: F,
    mut observe: O,
) -> Vec<Option<Result<R, WorkerPanic>>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
    O: FnMut(usize, &Result<R, WorkerPanic>),
{
    let total = items.len();
    let mut results: Vec<Option<Result<R, WorkerPanic>>> = Vec::new();
    results.resize_with(total, || None);
    if total == 0 {
        return results;
    }
    let workers = workers.clamp(1, total);

    // Seed each deque with a contiguous chunk — the same initial split the
    // legacy fixed sharder used, so the no-steal fast path touches each
    // cache line once.
    let chunk = total.div_ceil(workers);
    let mut deques: Vec<Mutex<VecDeque<(usize, T)>>> = Vec::with_capacity(workers);
    let mut numbered: VecDeque<(usize, T)> = items.into_iter().enumerate().collect();
    for _ in 0..workers {
        let rest = numbered.split_off(chunk.min(numbered.len()));
        deques.push(Mutex::new(std::mem::replace(&mut numbered, rest)));
    }

    let stop = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, Result<R, WorkerPanic>)>();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let deques = &deques;
            let stop = &stop;
            let f = &f;
            scope.spawn(move || loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                if let Some(dl) = deadline {
                    if Instant::now() >= dl {
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                // Pop under a scoped lock: the guard must drop before
                // `steal` runs, which re-locks this worker's own deque to
                // stash the stolen surplus.
                let own = deques[w].lock().expect("deque lock").pop_front();
                let job = own.or_else(|| steal(deques, w));
                let Some((idx, item)) = job else { break };
                let out = catch_silent(|| f(idx, item));
                if tx.send((idx, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (idx, res) in rx {
            observe(idx, &res);
            results[idx] = Some(res);
        }
    });
    results
}

/// [`run_stealing_observed`] without a deadline or observer: every item
/// runs, so the result vector is dense — index-ordered per-item
/// `Result`s.
pub fn run_stealing<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<Result<R, WorkerPanic>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_stealing_observed(items, workers, None, f, |_, _| {})
        .into_iter()
        .map(|slot| slot.expect("no deadline: every item completes"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_ordered_for_any_worker_count() {
        let expected: Vec<usize> = (0..97).map(|i| i * 3).collect();
        for workers in [1, 2, 3, 8, 97, 200] {
            let got: Vec<usize> = run_stealing((0..97).collect(), workers, |_, i: usize| i * 3)
                .into_iter()
                .map(|r| r.expect("no panics"))
                .collect();
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn a_panicking_item_fails_alone() {
        let results = run_stealing((0..16).collect(), 4, |_, i: usize| {
            if i == 5 {
                panic!("boom at {i}");
            }
            i
        });
        for (i, r) in results.iter().enumerate() {
            if i == 5 {
                let p = r.as_ref().expect_err("item 5 panicked");
                assert_eq!(p.payload, "boom at 5");
            } else {
                assert_eq!(*r.as_ref().expect("others complete"), i);
            }
        }
    }

    #[test]
    fn an_expired_deadline_leaves_items_unstarted() {
        let past = Instant::now() - Duration::from_secs(1);
        let results =
            run_stealing_observed((0..8).collect(), 2, Some(past), |_, i: usize| i, |_, _| {});
        assert!(results.iter().all(Option::is_none), "budget already spent");
    }

    #[test]
    fn observer_sees_every_item_exactly_once() {
        let mut seen = vec![0usize; 40];
        run_stealing_observed(
            (0..40).collect(),
            3,
            None,
            |_, i: usize| i,
            |idx, res| {
                assert!(res.is_ok());
                seen[idx] += 1;
            },
        );
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn uneven_items_still_fill_every_slot() {
        // Items with wildly different costs exercise the steal path.
        let results = run_stealing((0..64).collect(), 4, |_, i: usize| {
            if i < 4 {
                std::thread::sleep(Duration::from_millis(20));
            }
            i + 1
        });
        let got: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, (1..=64).collect::<Vec<_>>());
    }
}
