//! # druzhba-p4
//!
//! A from-scratch P4-14 subset frontend for the dRMT side of Druzhba
//! (paper §4.1): *"dgen takes as input a P4 file representing the
//! algorithmic behavior specified in the context of a feed-forward
//! pipeline. dgen converts the given P4 file into a DAG representing the
//! match+action table dependencies."*
//!
//! Supported P4-14 constructs:
//!
//! - `header_type` declarations with fixed-width fields;
//! - `header` / `metadata` instances;
//! - a linear `parser` (a chain of `extract` statements ending in
//!   `return ingress`);
//! - `register` declarations (`width` / `instance_count`);
//! - `counter` declarations;
//! - `action` declarations over the primitive actions `modify_field`,
//!   `add_to_field`, `subtract_from_field`, `register_read`,
//!   `register_write`, `count`, `no_op`, and `drop`;
//! - `table` declarations with `reads { field : exact|ternary|lpm; }`,
//!   `actions`, and `size`;
//! - a `control ingress` block applying tables in sequence, with
//!   `if (valid(header)) { … } else { … }` conditionals.
//!
//! [`deps`] classifies the pairwise table dependencies (match, action,
//! successor) that drive the dRMT scheduler, following the taxonomy of the
//! RMT/dRMT papers.

pub mod ast;
pub mod deps;
pub mod hlir;
pub mod lexer;
pub mod parser;

pub use ast::P4Program;
pub use deps::{DependencyKind, TableDag};
pub use hlir::Hlir;

use druzhba_core::Result;

/// Parse and resolve a P4-14 subset program.
pub fn parse_p4(source: &str) -> Result<Hlir> {
    let tokens = lexer::lex(source)?;
    let program = parser::parse(&tokens)?;
    hlir::resolve(program)
}
