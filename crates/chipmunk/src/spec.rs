//! Adapter exposing the Domino reference interpreter as a dsim
//! [`Specification`], wired to a [`CompiledProgram`]'s container layout.
//!
//! This closes the Fig. 5 loop without hand-writing a Rust spec: the same
//! Domino file that was compiled to machine code also *executes* as the
//! high-level specification, and the fuzz harness asserts the two agree.

use std::collections::HashMap;

use druzhba_core::{Phv, Value};
use druzhba_domino::{DominoProgram, Interpreter};
use druzhba_dsim::testing::Specification;

use crate::compile::CompiledProgram;

/// A [`Specification`] that interprets the Domino program against the
/// compiled container layout.
pub struct CompiledSpec {
    interp: Interpreter,
    input_fields: Vec<String>,
    output_fields: Vec<(String, usize)>,
    phv_length: usize,
}

impl CompiledSpec {
    /// Pair a program with its compilation result.
    pub fn new(program: DominoProgram, compiled: &CompiledProgram) -> Self {
        CompiledSpec {
            interp: Interpreter::new(program),
            input_fields: compiled.input_fields.clone(),
            output_fields: compiled
                .output_fields
                .iter()
                .map(|(f, &c)| (f.clone(), c))
                .collect(),
            phv_length: compiled.pipeline_spec.config.phv_length,
        }
    }

    /// Expected state in `state_cells` order (declaration order — exactly
    /// how [`CompiledProgram::state_cells`] is ordered).
    pub fn expected_state(&self) -> Vec<Value> {
        self.interp.state().to_vec()
    }
}

impl Specification for CompiledSpec {
    fn reset(&mut self) {
        self.interp.reset();
    }

    fn process(&mut self, input: &Phv) -> Phv {
        let fields: HashMap<String, Value> = self
            .input_fields
            .iter()
            .enumerate()
            .map(|(i, f)| (f.clone(), input.get(i)))
            .collect();
        let written = self.interp.step(&fields);
        let mut out = Phv::zeroed(self.phv_length);
        for (field, container) in &self.output_fields {
            out.set(*container, written.get(field).copied().unwrap_or(0));
        }
        out
    }

    fn state(&self) -> Vec<Value> {
        self.interp.state().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompilerConfig};
    use druzhba_dgen::OptLevel;
    use druzhba_domino::parse_program;
    use druzhba_dsim::testing::{fuzz_test, FuzzConfig};

    /// The complete Fig. 5 workflow: compile, fuzz, assert equivalence.
    fn fuzz_program(src: &str, cfg: CompilerConfig, num_phvs: usize) {
        let program = parse_program(src).unwrap();
        let compiled = compile(&program, &cfg).unwrap();
        let mut spec = CompiledSpec::new(program, &compiled);
        let fuzz_cfg = FuzzConfig {
            num_phvs,
            observable: Some(compiled.observable_containers()),
            state_cells: compiled.state_cells.clone(),
            ..FuzzConfig::default()
        };
        for level in OptLevel::ALL {
            let report = fuzz_test(
                &compiled.pipeline_spec,
                &compiled.machine_code,
                level,
                &mut spec,
                &fuzz_cfg,
            );
            assert!(report.passed(), "{level:?}: {:?}", report.verdict);
        }
    }

    #[test]
    fn end_to_end_accumulator() {
        fuzz_program(
            "state int sum = 0;\nsum = sum + pkt.x;\npkt.double = pkt.x * 2;",
            CompilerConfig::new(1, 1, "raw"),
            500,
        );
    }

    #[test]
    fn end_to_end_sampling() {
        fuzz_program(
            "state int count = 0;\n\
             if (count == 9) { count = 0; pkt.sample = 1; }\n\
             else { count = count + 1; pkt.sample = 0; }",
            CompilerConfig::new(2, 1, "if_else_raw"),
            500,
        );
    }

    #[test]
    fn end_to_end_port_counter() {
        fuzz_program(
            "state int hits = 0;\n\
             if (pkt.port == 80) { hits = hits + 1; }",
            CompilerConfig::new(2, 1, "pred_raw"),
            500,
        );
    }

    #[test]
    fn end_to_end_pair_max_tracker() {
        fuzz_program(
            "state int best_util = 0;\n\
             state int best_path = 0;\n\
             if (best_util <= pkt.util) { best_util = pkt.util; best_path = pkt.path; }",
            CompilerConfig::new(1, 1, "pair"),
            500,
        );
    }
}
