//! The `druzhba` command-line tool: the compiler-testing workflow from a
//! shell.
//!
//! ```text
//! druzhba compile <file.domino> --depth D --width W --atom NAME [-o mc.txt]
//! druzhba compile <file.p4> [--entries FILE] [--stages N] [-o report.txt]
//! druzhba fuzz    <file.domino> --depth D --width W --atom NAME [--phvs N] [--bits B]
//!                 [--seed S] [--level L|all] [--runs R] [--jobs J] [--edit name=v,...]
//! druzhba verify  <file.domino> --depth D --width W --atom NAME [--bits B] [--packets N]
//!                 [--level L|all]
//! druzhba emit    <file.domino> --depth D --width W --atom NAME [--level 0|1|2|3]
//! druzhba emit    <file.p4> [--entries FILE] [--level 0|1|2|3]
//! druzhba hunt    [--programs a,b,c] [--mutants N] [--seed S] [--level L|all]
//!                 [--phvs N] [--bits B] [--runs R] [--jobs J] [--out FILE]
//! druzhba hunt    --generate N [--faults F] [--minimize-checks C] [--seed S]
//!                 [--level L|all] [--phvs N] [--bits B] [--jobs J] [--out FILE]
//! druzhba generate [--count N] [--seed S] [--index K] [--p4] [--json] [--out FILE]
//! druzhba analyze [<file.domino>|<file.p4>|<program>] [--json] [--out FILE]
//!                 [--depth D --width W --atom NAME] [--entries FILE]
//! druzhba p4-fuzz [<file.p4>|<p4-program>] [--entries FILE] [--lint] [--phvs N] [--bits B]
//!                 [--seed S] [--level L|all] [--runs R] [--jobs J] [--mutants N]
//!                 [--stages N] [--tables-per-stage T] [--cross-model on|off] [--out FILE]
//! druzhba p4-fuzz --generate N [...same flags...]
//! druzhba atoms
//! druzhba programs
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency); every subcommand
//! maps onto a library call, so the tool is a thin shell over the public
//! API.

use std::path::PathBuf;
use std::process::ExitCode;

use druzhba::chipmunk::{compile, CompiledProgram, CompiledSpec, CompilerConfig};
use druzhba::dgen::emit::emit_pipeline;
use druzhba::dgen::mat::emit_mat_pipeline;
use druzhba::dgen::OptLevel;
use druzhba::domino::{parse_program, DominoProgram};
use druzhba::drmt::{solve, ScheduleConfig};
use druzhba::dsim::coverage::{greybox_fuzz_test, p4_greybox_fuzz_test, GreyboxConfig};
use druzhba::dsim::minimize::MinimizedCounterExample;
use druzhba::dsim::p4::{
    p4_fuzz_campaign_with_runtime, p4_fuzz_test, P4CampaignConfig, P4FuzzConfig, P4Workload,
};
use druzhba::dsim::runtime::RuntimeOptions;
use druzhba::dsim::snapshot;
use druzhba::dsim::testing::{fuzz_campaign_with_runtime, fuzz_test, CampaignConfig, FuzzConfig};
use druzhba::dsim::verify::{verify_bounded, VerifyConfig, VerifyOutcome};
use druzhba::genhunt::{genhunt, GenHuntConfig};
use druzhba::hunt::{hunt, HuntConfig};
use druzhba::p4::deps::build_dag;
use druzhba::p4::lower::RmtConfig;
use druzhba::p4hunt::{cross_model_check, p4_hunt_workloads, P4HuntConfig};
use druzhba::progen::{generate_domino_at, generate_p4, generate_p4_at};
use druzhba::programs::{p4_by_name, P4_PROGRAMS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "compile" => cmd_compile(&args[1..]),
        "fuzz" => cmd_fuzz(&args[1..]),
        "verify" => cmd_verify(&args[1..]),
        "emit" => cmd_emit(&args[1..]),
        "hunt" => cmd_hunt(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "analyze" => match cmd_analyze(&args[1..]) {
            Ok(code) => return code,
            Err(e) => Err(e),
        },
        "p4-fuzz" => cmd_p4_fuzz(&args[1..]),
        "atoms" => cmd_atoms(),
        "programs" => cmd_programs(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "druzhba — programmable switch simulation for compiler testing

USAGE:
  druzhba compile <file.domino> --depth D --width W --atom NAME [-o out.txt]
  druzhba compile <file.p4> [--entries FILE] [--stages N] [--tables-per-stage T] [-o out.txt]
                  (P4 inputs print the RMT lowering: container map, stage map,
                   bound entries, dRMT schedule)
  druzhba fuzz    <file.domino> --depth D --width W --atom NAME [--phvs N] [--bits B]
                  [--seed S] [--level 0|1|2|3|all]
                  [--edit name=v,name=-]  (apply machine-code edits, `-` removes;
                                           replays a hunt report's essential_edits)
                  [--runs R --jobs J]   (R > 1: parallel seeded campaign)
                  [--greybox E]         (coverage-guided campaign with an E-execution
                                         budget; tune with --gb-packets P
                                         --gb-max-packets N --corpus N --merge-every M
                                         --jobs J --lanes 0|1|8|16|32|64;
                                         see docs/FUZZING.md)
  druzhba verify  <file.domino> --depth D --width W --atom NAME [--bits B] [--packets N]
                  [--level 0|1|2|3|all]  (default: all backends)
                  [--max-cases N] [--lanes 1|8|16|32|64]
                  (--lanes sweeps the fused backend's SIMD lane engine, 64
                   inputs per instruction stream; raises the exhaustive wall
                   to 32-bit inputs under the --max-cases budget)
  druzhba emit    <file.domino> --depth D --width W --atom NAME [--level 0|1|2|3]
  druzhba emit    <file.p4> [--entries FILE] [--level 0|1|2|3] [--stages N]
                  (render the lowered match-action pipeline at that backend)
  druzhba hunt    [--programs a,b,c] [--mutants N] [--seed S] [--level 0|1|2|3|all]
                  [--phvs N] [--bits B] [--runs R] [--jobs J]
                  [--verify-bits B] [--verify-packets N] [--out FILE]
                  [--case-budget N]  (cap differential batches per evaluation)
                  mutation campaign over the Table 1 corpus (JSON report;
                  every mutant also carries its static-analysis flag)
  druzhba hunt    --generate N [--faults F] [--minimize-checks C] [--seed S]
                  [--level 0|1|2|3|all] [--phvs N] [--bits B] [--runs R]
                  [--jobs J] [--out FILE]
                  Gauntlet-style campaign over N freshly *generated*,
                  screen-vetted Domino programs: a clean differential sweep
                  on every backend (any divergence is a compiler bug and the
                  exit is nonzero), plus optional fault injection (--faults F
                  per program) with program-level ddmin of every divergence
  druzhba generate [--count N] [--seed S] [--index K] [--p4] [--json] [--out FILE]
                  emit generated programs without running packets; program K
                  of a seed is a pure function of (seed, K), so
                  `--seed S --index K` replays exactly the program a
                  hunt --generate report names in its replay recipe
  druzhba analyze [<file.domino>|<file.p4>|<program>] [--json] [--out FILE]
                  [--depth D --width W --atom NAME] [--entries FILE] [--symbolic]
                  abstract-interpretation static analysis: translation
                  validation across every backend, lint diagnostics, the
                  generator screen, and the greybox imprecision list; with
                  --symbolic, a term-level equivalence proof per backend;
                  no positional = the whole 17-program corpus; exit 2 on a
                  proven miscompilation (TV mismatch or symbolic refutation),
                  0 for clean or lint-only output, 1 on operational errors
  druzhba p4-fuzz [<file.p4>|<p4-program>] [--entries FILE] [--lint] [--phvs N]
                  [--bits B] [--seed S] [--level 0|1|2|3|all] [--runs R --jobs J]
                  [--stages N] [--tables-per-stage T] [--cross-model on|off]
                  differential fuzz: reference interpreter vs. the lowered RMT
                  match-action pipeline on every backend, plus a cross-model
                  dRMT-vs-RMT check; no positional = the whole P4 corpus
  druzhba p4-fuzz --greybox E [--mutate-entries on|off] [...same flags...]
                  coverage-guided differential campaign over packets and (by
                  default) table entries; same tuning flags as fuzz --greybox
  druzhba p4-fuzz --mutants N [...same flags...] [--out FILE]
                  table/action-fault mutation campaign (JSON report; nonzero
                  exit if any injected fault survives)
  druzhba p4-fuzz --generate N [...same flags...]
                  swap the corpus for N freshly generated, TV-vetted P4
                  workloads; --lint, --runs, --mutants, --greybox, and the
                  cross-model check all compose with the generated targets
  druzhba atoms      list the ALU DSL atom library
  druzhba programs   list the Table 1 benchmark programs and the P4 corpus

CRASH-PROOFING (campaign modes of fuzz / hunt / p4-fuzz; docs/FUZZING.md):
  --checkpoint DIR [--every N]   snapshot campaign progress into DIR every N
                                 completed tasks (atomic write + rotation)
  --resume DIR                   restore the snapshot in DIR, re-run only what
                                 is missing, keep checkpointing there; the
                                 resumed report is byte-identical to an
                                 uninterrupted run
  --budget-secs S                wall-clock budget: expiry ends the campaign
                                 cleanly with a partial (truncated) report and
                                 exit code 0 plus a warning";

/// Minimal flag parser: positional file plus `--key value` pairs.
struct Args {
    file: Option<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut file = None;
        let mut flags = Vec::new();
        // Flags that take no value (presence is the signal).
        const BOOLEAN_FLAGS: &[&str] = &["json", "lint", "symbolic", "p4"];
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&key) {
                    flags.push((key.to_string(), "on".to_string()));
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                flags.push((key.to_string(), value.clone()));
            } else if let Some(key) = a.strip_prefix('-') {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag -{key} needs a value"))?;
                flags.push((key.to_string(), value.clone()));
            } else if file.is_none() {
                file = Some(a.clone());
            } else {
                return Err(format!("unexpected argument `{a}`"));
            }
        }
        Ok(Args { file, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number `{v}`")),
        }
    }

    fn get_u32(&self, key: &str, default: u32) -> Result<u32, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number `{v}`")),
        }
    }

    /// Seeds are printed as `0x…` in failure messages, so the flag accepts
    /// both decimal and `0x`-prefixed hex — replay instructions must paste
    /// back verbatim.
    fn get_seed(&self, key: &str, default: u64) -> Result<u64, String> {
        let Some(raw) = self.get(key) else {
            return Ok(default);
        };
        let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => raw.parse(),
        };
        parsed.map_err(|_| format!("--{key}: bad seed `{raw}` (decimal or 0x-hex)"))
    }

    /// Optimization levels: a single level, or `all` for every backend.
    fn get_levels(&self, key: &str, default: &[OptLevel]) -> Result<Vec<OptLevel>, String> {
        match self.get(key) {
            None => Ok(default.to_vec()),
            Some(raw) => parse_levels(raw),
        }
    }
}

fn parse_level(tok: &str) -> Result<OptLevel, String> {
    match tok {
        "0" | "unoptimized" => Ok(OptLevel::Unoptimized),
        "1" | "scc" => Ok(OptLevel::Scc),
        "2" | "scc_inline" => Ok(OptLevel::SccInline),
        "3" | "fused" => Ok(OptLevel::Fused),
        other => Err(format!(
            "--level must be 0|1|2|3 (or unoptimized|scc|scc_inline|fused) or `all`, got `{other}`"
        )),
    }
}

fn parse_levels(raw: &str) -> Result<Vec<OptLevel>, String> {
    if raw == "all" {
        return Ok(OptLevel::ALL.to_vec());
    }
    raw.split(',').map(|tok| parse_level(tok.trim())).collect()
}

/// Apply `--edit name=value,name=-` machine-code edits (a `-` value
/// removes the pair). This is how a hunt report's `essential_edits`
/// replay from the CLI: the compiler regenerates the known-good program,
/// and the edits re-create the mutant the campaign diverged on.
fn apply_edits(mc: &mut druzhba::core::MachineCode, raw: &str) -> Result<(), String> {
    for tok in raw.split(',') {
        let tok = tok.trim();
        let Some((name, value)) = tok.split_once('=') else {
            return Err(format!(
                "--edit: expected `name=value` or `name=-`, got `{tok}`"
            ));
        };
        let (name, value) = (name.trim(), value.trim());
        if !mc.contains(name) {
            return Err(format!("--edit: `{name}` is not a machine-code pair"));
        }
        if value == "-" {
            mc.remove(name);
        } else {
            let v: u32 = value
                .parse()
                .map_err(|_| format!("--edit: bad value `{value}` for `{name}`"))?;
            mc.set(name.to_string(), v);
        }
    }
    Ok(())
}

/// Print a minimized counterexample the way a bug report wants it: the
/// reduced packet sequence plus (for hunts) the essential machine-code
/// delta.
fn print_minimized(mce: &MinimizedCounterExample) {
    println!(
        "minimized counterexample: {} of {} packet(s), {} differential check(s)",
        mce.packets(),
        mce.original_packets,
        mce.checks
    );
    for (i, phv) in mce.input.phvs.iter().enumerate() {
        println!("  packet {i}: {phv}");
    }
    if let Some(edits) = &mce.essential_edits {
        for e in edits {
            println!(
                "  essential edit: {} (good {:?} -> bad {:?})",
                e.name, e.good, e.bad
            );
        }
    }
}

/// Crash-proofing flags shared by the campaign subcommands
/// (docs/FUZZING.md "Checkpoint, resume, and budgets"):
/// `--checkpoint DIR [--every N]` snapshots progress into DIR,
/// `--resume DIR` restores a prior snapshot and keeps checkpointing
/// there, `--budget-secs S` bounds the campaign's wall clock.
fn runtime_options(args: &Args) -> Result<RuntimeOptions, String> {
    let defaults = RuntimeOptions::default();
    if args.get("checkpoint").is_some() && args.get("resume").is_some() {
        return Err(
            "--checkpoint and --resume are exclusive (--resume keeps checkpointing \
             into its directory)"
                .into(),
        );
    }
    let (checkpoint_dir, resume) = match (args.get("resume"), args.get("checkpoint")) {
        (Some(dir), _) => (Some(PathBuf::from(dir)), true),
        (None, Some(dir)) => (Some(PathBuf::from(dir)), false),
        (None, None) => (None, false),
    };
    let budget_secs = match args.get("budget-secs") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("--budget-secs: bad number `{v}`"))?,
        ),
    };
    Ok(RuntimeOptions {
        checkpoint_dir,
        checkpoint_every: args.get_usize("every", defaults.checkpoint_every)?,
        resume,
        budget_secs,
    })
}

/// The optional per-case budget (`--case-budget N`) for hunt campaigns.
fn case_budget(args: &Args) -> Result<Option<usize>, String> {
    match args.get("case-budget") {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("--case-budget: bad number `{v}`")),
    }
}

/// Write a report atomically (tmp + rename): a crash mid-write never
/// leaves a truncated file where a previous good report stood.
fn atomic_write(path: &str, contents: &str) -> Result<(), String> {
    snapshot::write_atomic(std::path::Path::new(path), contents)
        .map_err(|e| format!("cannot write `{path}`: {e}"))
}

/// The exit-0-with-warning contract for budget-truncated campaigns: a
/// partial report is a success with a loud warning, not a failure.
fn warn_truncated(what: &str, truncated: usize) {
    if truncated > 0 {
        eprintln!(
            "warning: {what}: wall-clock budget expired with {truncated} task(s) \
             unevaluated; the report is partial (marked truncated)"
        );
    }
}

/// Build the greybox configuration from the flags shared by
/// `fuzz --greybox` and `p4-fuzz --greybox` (`--gb-packets`, `--corpus`,
/// `--merge-every`, `--jobs`; defaults in [`GreyboxConfig`]).
fn greybox_config(
    args: &Args,
    executions: usize,
    seed: u64,
    bits: u32,
) -> Result<GreyboxConfig, String> {
    let defaults = GreyboxConfig::default();
    let lanes = args.get_usize("lanes", defaults.lanes)?;
    if lanes != 0 && !druzhba::dgen::lanes::supported_width(lanes) {
        return Err(format!(
            "--lanes {lanes} is not a supported width; pick one of 1, 8, 16, 32, 64 \
             (or 0 for the scalar oracle)"
        ));
    }
    Ok(GreyboxConfig {
        executions,
        packets: args.get_usize("gb-packets", defaults.packets)?,
        max_packets: args.get_usize("gb-max-packets", defaults.max_packets)?,
        seed,
        input_bits: bits,
        corpus_max: args.get_usize("corpus", defaults.corpus_max)?,
        workers: match args.get_usize("jobs", 0)? {
            0 => defaults.workers,
            jobs => jobs,
        },
        merge_every: args.get_usize("merge-every", defaults.merge_every)?,
        initial_seeds: defaults.initial_seeds,
        minimize: true,
        lanes,
        runtime: runtime_options(args)?,
    })
}

/// One-line greybox campaign summary (the JSON-schema fields, human
/// formatted): executions, edges, corpus, and where the first divergence
/// landed.
fn print_greybox(
    label: &str,
    level: OptLevel,
    cfg: &GreyboxConfig,
    report: &druzhba::dsim::GreyboxReport,
) {
    let outcome = match report.first_divergence {
        Some(at) => format!("first divergence at execution {at}"),
        None if report.truncated => "no divergence (budget-truncated)".to_string(),
        None => "no divergence".to_string(),
    };
    if report.truncated {
        eprintln!(
            "warning: greybox[{label}]: wall-clock budget expired after {} of {} \
             executions; the campaign is partial",
            report.executions, cfg.executions
        );
    }
    println!(
        "greybox[{label}:{}]: {} executions x {} packets on {} workers \
         ({} merge rounds) -> {} edges covered, corpus {}, {outcome}",
        level.key(),
        report.executions,
        cfg.packets,
        cfg.workers,
        report.rounds,
        report.edges_covered,
        report.corpus_size,
    );
}

/// The replay recipe for a greybox divergence: the campaign is a pure
/// function of (seed, jobs), so re-running with both reproduces it
/// byte-identically. `mode` carries campaign-mode flags that change the
/// search space (e.g. `--mutate-entries off`).
fn greybox_replay(cfg: &GreyboxConfig, mode: &str) -> String {
    let cap = if cfg.max_packets == 0 {
        String::new()
    } else {
        format!(" --gb-max-packets {}", cfg.max_packets)
    };
    let lanes = if cfg.lanes == 0 {
        String::new()
    } else {
        format!(" --lanes {}", cfg.lanes)
    };
    format!(
        "--greybox {} --seed {:#x} --jobs {} --gb-packets {} --corpus {} --merge-every {}{cap}{lanes}{mode}",
        cfg.executions, cfg.seed, cfg.workers, cfg.packets, cfg.corpus_max, cfg.merge_every
    )
}

fn load(args: &Args) -> Result<(DominoProgram, CompilerConfig), String> {
    let file = args.file.as_deref().ok_or("missing <file.domino>")?;
    if is_p4_path(file) {
        return Err(format!(
            "`{file}` is a P4 program; use `druzhba p4-fuzz` for differential \
             testing (compile/emit accept .p4 directly)"
        ));
    }
    let source = std::fs::read_to_string(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
    let program = parse_program(&source).map_err(|e| e.to_string())?;
    let depth = args.get_usize("depth", 4)?;
    let width = args.get_usize("width", 2)?;
    let atom = args.get("atom").unwrap_or("pred_raw");
    Ok((program, CompilerConfig::new(depth, width, atom)))
}

fn is_p4_path(file: &str) -> bool {
    std::path::Path::new(file)
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("p4"))
}

/// The RMT grid flags shared by the P4 paths.
fn rmt_config(args: &Args) -> Result<RmtConfig, String> {
    let defaults = RmtConfig::default();
    Ok(RmtConfig {
        max_stages: args.get_usize("stages", defaults.max_stages)?,
        tables_per_stage: args.get_usize("tables-per-stage", defaults.tables_per_stage)?,
    })
}

/// Load one P4 target: a `.p4` file (entries from `--entries` or the
/// sibling `.entries` file) or a corpus program name.
fn load_p4_target(args: &Args, positional: &str) -> Result<(String, P4Workload), String> {
    let cfg = rmt_config(args)?;
    if is_p4_path(positional) {
        let source = std::fs::read_to_string(positional)
            .map_err(|e| format!("cannot read `{positional}`: {e}"))?;
        let entries_path = match args.get("entries") {
            Some(path) => std::path::PathBuf::from(path),
            None => std::path::Path::new(positional).with_extension("entries"),
        };
        let entries_text = std::fs::read_to_string(&entries_path).map_err(|e| {
            format!(
                "cannot read table entries `{}`: {e} (pass --entries FILE)",
                entries_path.display()
            )
        })?;
        let name = std::path::Path::new(positional)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| positional.to_string());
        let workload =
            P4Workload::parse(&source, &entries_text, &cfg).map_err(|e| e.to_string())?;
        Ok((name, workload))
    } else {
        let def = p4_by_name(positional).ok_or_else(|| {
            format!("`{positional}` is neither a .p4 file nor a P4 corpus program")
        })?;
        let workload =
            P4Workload::parse(def.source, def.entries, &cfg).map_err(|e| e.to_string())?;
        Ok((def.name.to_string(), workload))
    }
}

/// All selected P4 targets: the positional one, or the whole corpus.
fn load_p4_targets(args: &Args) -> Result<Vec<(String, P4Workload)>, String> {
    match args.file.as_deref() {
        Some(positional) => Ok(vec![load_p4_target(args, positional)?]),
        None => {
            let cfg = rmt_config(args)?;
            P4_PROGRAMS
                .iter()
                .map(|def| {
                    P4Workload::parse(def.source, def.entries, &cfg)
                        .map(|w| (def.name.to_string(), w))
                        .map_err(|e| format!("{}: {e}", def.name))
                })
                .collect()
        }
    }
}

/// The `compile` report for a P4 input: the RMT lowering as text.
fn p4_lowering_report(name: &str, workload: &P4Workload) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let layout = &workload.lowering.layout;
    let _ = writeln!(s, "# p4 lowering: {name}");
    for (i, (f, w)) in layout.fields().iter().enumerate() {
        let _ = writeln!(s, "container[{i}] = {f} ({w} bits)");
    }
    let _ = writeln!(s, "container[{}] = <drop flag>", layout.drop_flag());
    for (stage, tables) in workload.lowering.stages.iter().enumerate() {
        for &t in tables {
            let info = &workload.hlir.tables[t];
            let decl = workload.hlir.program.table(&info.name).expect("resolved");
            let entries = workload
                .entries
                .iter()
                .filter(|e| e.table == info.name)
                .count();
            let default = decl
                .default_action
                .as_deref()
                .map(|d| format!(", default {d}"))
                .unwrap_or_default();
            let _ = writeln!(
                s,
                "stage {stage}: table {} ({entries} entr{}{default})",
                info.name,
                if entries == 1 { "y" } else { "ies" }
            );
        }
    }
    let dag = build_dag(&workload.hlir);
    match solve(&dag, &ScheduleConfig::default()) {
        Ok(schedule) => {
            let _ = writeln!(
                s,
                "drmt schedule: makespan {} (match slots {:?}, action slots {:?})",
                schedule.makespan(),
                schedule.match_slot,
                schedule.action_slot
            );
        }
        Err(e) => {
            let _ = writeln!(s, "drmt schedule: unschedulable ({e})");
        }
    }
    s
}

fn cmd_compile_p4(args: &Args, file: &str) -> Result<(), String> {
    let (name, workload) = load_p4_target(args, file)?;
    eprintln!(
        "lowered: {} field container(s) + drop flag, {} stage(s), {} table(s), {} entr(ies)",
        workload.lowering.layout.fields().len(),
        workload.lowering.num_stages(),
        workload.hlir.tables.len(),
        workload.entries.len()
    );
    let report = p4_lowering_report(&name, &workload);
    match args.get("o") {
        Some(path) => {
            atomic_write(path, &report)?;
            eprintln!("lowering report written to {path}");
        }
        None => print!("{report}"),
    }
    Ok(())
}

fn cmd_p4_fuzz(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    // `--generate N` swaps the corpus/file targets for N freshly
    // generated, TV-vetted P4 workloads; every downstream mode (--lint,
    // plain runs, --mutants, --greybox, cross-model) composes unchanged.
    let generate = args.get_usize("generate", 0)?;
    let targets = if generate > 0 {
        if args.file.is_some() {
            return Err(
                "--generate replaces the corpus/file targets; drop the positional argument".into(),
            );
        }
        let base = args.get_seed("seed", P4FuzzConfig::default().seed)?;
        let generated = generate_p4(base, generate as u64);
        let rejected: u64 = generated.iter().map(|g| u64::from(g.rejects.total())).sum();
        eprintln!(
            "p4-fuzz --generate: {} workload(s) generated from seed {base:#x} \
             ({rejected} candidate(s) rejected by the validity screen)",
            generated.len()
        );
        generated
            .into_iter()
            .map(|g| (g.name, g.workload))
            .collect()
    } else {
        load_p4_targets(&args)?
    };
    if args.get("lint").is_some() {
        // Static pre-pass: lint every target and translation-validate the
        // lowered program before spending any fuzz budget.
        let mut tv_mismatches = 0usize;
        for (name, workload) in &targets {
            let analysis = druzhba::analyze::analyze_p4_workload(name, workload, false)?;
            for d in &analysis.diagnostics {
                eprintln!("lint: {d}");
            }
            for m in &analysis.tv_mismatches {
                eprintln!("lint: {name}: TV MISMATCH: {m}");
                tv_mismatches += 1;
            }
            eprintln!(
                "lint[{name}]: {} diagnostic(s), {} TV mismatch(es)",
                analysis.diagnostics.len(),
                analysis.tv_mismatches.len()
            );
        }
        if tv_mismatches > 0 {
            return Err(format!(
                "p4-fuzz --lint: {tv_mismatches} translation-validation mismatch(es) — \
                 the lowered pipeline provably disagrees with the P4 semantics"
            ));
        }
    }
    let mutants = args.get_usize("mutants", 0)?;
    let num_phvs = args.get_usize("phvs", if mutants > 0 { 2_000 } else { 10_000 })?;
    let bits = args.get_u32("bits", 16)?;
    let seed = args.get_seed("seed", P4FuzzConfig::default().seed)?;
    let levels = args.get_levels("level", &OptLevel::ALL)?;
    let runs = args.get_usize("runs", if mutants > 0 { 2 } else { 1 })?;
    let jobs = args.get_usize("jobs", 0)?;
    let greybox = args.get_usize("greybox", 0)?;
    if jobs > 0 && runs <= 1 && mutants == 0 && greybox == 0 {
        return Err(
            "--jobs shards a multi-run campaign; pass --runs R (R > 1) or --greybox E with it"
                .into(),
        );
    }
    if greybox > 0 && mutants > 0 {
        return Err("--greybox and --mutants are separate campaign modes; pick one".into());
    }

    if greybox > 0 {
        // Coverage-guided differential mode: both sides run the same
        // (mutated) entries unless --mutate-entries off pins the corpus
        // entry set (DESIGN.md §9).
        let mutate_entries = match args.get("mutate-entries") {
            None | Some("on") => true,
            Some("off") => false,
            Some(other) => {
                return Err(format!("--mutate-entries must be on|off, got `{other}`"));
            }
        };
        let gb_cfg = greybox_config(&args, greybox, seed, bits)?;
        for (name, workload) in &targets {
            for &level in &levels {
                let report = p4_greybox_fuzz_test(
                    workload,
                    &workload.entries,
                    level,
                    mutate_entries,
                    &gb_cfg,
                );
                print_greybox(name, level, &gb_cfg, &report);
                if !report.passed() {
                    if let Some(mce) = &report.minimized {
                        print_minimized(mce);
                    }
                    if let Some(entries) = &report.diverging_entries {
                        eprintln!("diverging entry set ({} entries):", entries.len());
                        for e in entries {
                            eprintln!("  {e:?}");
                        }
                    }
                    let mode = if mutate_entries {
                        ""
                    } else {
                        " --mutate-entries off"
                    };
                    return Err(format!(
                        "p4 greybox fuzzing found a divergence in `{name}` at level {} \
                         (replay with `{} --level {} --bits {bits}`): {:?}",
                        level.key(),
                        greybox_replay(&gb_cfg, mode),
                        level.key(),
                        report.verdict
                    ));
                }
            }
        }
        return Ok(());
    }

    if mutants > 0 {
        // Mutation campaign: seed table/action faults, require detection.
        let defaults = P4HuntConfig::default();
        let cfg = P4HuntConfig {
            programs: Vec::new(),
            mutants_per_class: mutants,
            seed,
            levels,
            fuzz_phvs: num_phvs,
            fuzz_runs: runs,
            input_bits: bits,
            workers: if jobs == 0 { defaults.workers } else { jobs },
            case_budget: case_budget(&args)?,
            runtime: runtime_options(&args)?,
        };
        let report = p4_hunt_workloads(&cfg, &targets);
        for o in &report.outcomes {
            if !o.detected() {
                eprintln!(
                    "SURVIVOR: {} {:?} at level {} went undetected",
                    o.program,
                    o.fault,
                    o.level.key()
                );
            }
        }
        for (kind, (total, detected)) in &report.by_fault_kind() {
            eprintln!("p4-hunt: {:<14} {detected}/{total} detected", kind.key());
        }
        if report.neutral_discarded > 0 {
            eprintln!(
                "p4-hunt: {} behaviorally neutral candidate(s) screened out",
                report.neutral_discarded
            );
        }
        eprintln!(
            "p4-hunt: {} evaluation(s) -> {}/{} detected ({:.1}%)",
            report.evaluations(),
            report.detected(),
            report.evaluations(),
            report.detection_rate() * 100.0
        );
        warn_truncated("p4-hunt", report.truncated);
        let json = report.to_json();
        match args.get("out") {
            Some(path) => {
                atomic_write(path, &json)?;
                eprintln!("p4-hunt report written to {path}");
            }
            None => print!("{json}"),
        }
        let undetected = report.evaluations() - report.detected();
        if undetected > 0 {
            return Err(format!(
                "p4-hunt: {undetected} of {} injected-fault evaluation(s) went undetected",
                report.evaluations()
            ));
        }
        return Ok(());
    }

    for (name, workload) in &targets {
        for &level in &levels {
            let fuzz_cfg = P4FuzzConfig {
                num_phvs,
                seed,
                input_bits: bits,
                minimize: true,
            };
            if runs > 1 {
                let campaign_cfg = P4CampaignConfig {
                    runs,
                    workers: if jobs == 0 {
                        P4CampaignConfig::default().workers
                    } else {
                        jobs
                    },
                    base: fuzz_cfg,
                };
                let campaign = p4_fuzz_campaign_with_runtime(
                    workload,
                    &workload.entries,
                    level,
                    &campaign_cfg,
                    &runtime_options(&args)?,
                );
                let (passed, incompatible, mismatched, panicked) = campaign.counts();
                println!(
                    "p4-fuzz[{name}:{}]: {runs} runs x {num_phvs} packets at {bits}-bit inputs \
                     -> {passed} passed, {incompatible} incompatible, {mismatched} mismatched, \
                     {panicked} panicked",
                    level.key()
                );
                warn_truncated("p4-fuzz", campaign.truncated);
                if let Some(f) = campaign.first_failure() {
                    if let Some(mce) = &f.minimized {
                        print_minimized(mce);
                    }
                    return Err(format!(
                        "p4 fuzzing found a divergence in `{name}` at level {} (replay with \
                         `--seed {:#x} --level {} --phvs {num_phvs} --bits {bits}`): {:?}",
                        level.key(),
                        f.seed,
                        level.key(),
                        f.verdict
                    ));
                }
                continue;
            }
            let report = p4_fuzz_test(workload, &workload.entries, level, &fuzz_cfg);
            println!(
                "p4-fuzz[{name}:{}]: {} packets at {bits}-bit inputs (seed {:#x}) -> {:?}",
                level.key(),
                report.phvs_tested,
                report.seed,
                report.verdict
            );
            if !report.passed() {
                if let Some(mce) = &report.minimized {
                    print_minimized(mce);
                }
                return Err(format!(
                    "p4 fuzzing found a divergence in `{name}` at level {} (replay with \
                     `--seed {:#x} --level {} --phvs {num_phvs} --bits {bits}`)",
                    level.key(),
                    report.seed,
                    level.key()
                ));
            }
        }
        if args.get("cross-model") != Some("off") {
            let packets = num_phvs.min(1_000);
            let xm = cross_model_check(workload, seed, packets, bits)?;
            match &xm.drmt_skipped {
                None => println!(
                    "cross-model[{name}]: interpreter == RMT(fused) == dRMT over {} packets \
                     (dRMT makespan {}, RMT stages {})",
                    xm.packets, xm.drmt_makespan, xm.rmt_stages
                ),
                Some(reason) => println!(
                    "cross-model[{name}]: interpreter == RMT(fused) over {} packets \
                     (RMT stages {}; dRMT leg skipped: {reason})",
                    xm.packets, xm.rmt_stages
                ),
            }
        }
    }
    Ok(())
}

fn compile_from(args: &Args) -> Result<(DominoProgram, CompiledProgram), String> {
    let (program, cfg) = load(args)?;
    let compiled = compile(&program, &cfg).map_err(|e| e.to_string())?;
    Ok((program, compiled))
}

fn report(compiled: &CompiledProgram) {
    let r = &compiled.report;
    eprintln!(
        "compiled: {} stateful + {} stateless ALUs, {} stage(s), {} PHV containers, \
         {} machine code pairs",
        r.stateful_used,
        r.stateless_used,
        r.stages_used,
        r.phv_length,
        compiled.machine_code.len()
    );
    eprintln!("inputs : {:?}", compiled.input_fields);
    eprintln!("outputs: {:?}", compiled.output_fields);
}

fn cmd_compile(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    if let Some(file) = args.file.clone().filter(|f| is_p4_path(f)) {
        return cmd_compile_p4(&args, &file);
    }
    let (_, compiled) = compile_from(&args)?;
    report(&compiled);
    match args.get("o") {
        Some(path) => {
            atomic_write(path, &compiled.machine_code.to_text())?;
            eprintln!("machine code written to {path}");
        }
        None => print!("{}", compiled.machine_code.to_text()),
    }
    Ok(())
}

fn cmd_fuzz(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let (program, compiled) = compile_from(&args)?;
    report(&compiled);
    let num_phvs = args.get_usize("phvs", 50_000)?;
    let bits = args.get_u32("bits", 10)?;
    let seed = args.get_seed("seed", FuzzConfig::default().seed)?;
    let levels = args.get_levels("level", &[OptLevel::Fused])?;
    let runs = args.get_usize("runs", 1)?;
    let jobs = args.get_usize("jobs", 0)?;
    let greybox = args.get_usize("greybox", 0)?;
    if jobs > 0 && runs <= 1 && greybox == 0 {
        return Err(
            "--jobs shards a multi-run campaign; pass --runs R (R > 1) or --greybox E with it"
                .into(),
        );
    }
    let mut machine_code = compiled.machine_code.clone();
    if let Some(raw) = args.get("edit") {
        apply_edits(&mut machine_code, raw)?;
        eprintln!("applied machine-code edit(s): {raw}");
    }
    let replay_edit = args
        .get("edit")
        .map(|raw| format!(" --edit '{raw}'"))
        .unwrap_or_default();
    let fuzz_cfg = FuzzConfig {
        num_phvs,
        seed,
        input_bits: bits,
        observable: Some(compiled.observable_containers()),
        state_cells: compiled.state_cells.clone(),
        ..FuzzConfig::default()
    };
    if greybox > 0 {
        // Coverage-guided mode: corpus-scheduled mutation instead of
        // independent random batches (DESIGN.md §9).
        let gb_cfg = greybox_config(&args, greybox, seed, bits)?;
        for &level in &levels {
            let report = greybox_fuzz_test(
                &compiled.pipeline_spec,
                &machine_code,
                level,
                || CompiledSpec::new(program.clone(), &compiled),
                Some(&compiled.observable_containers()),
                &compiled.state_cells,
                &gb_cfg,
            );
            print_greybox("fuzz", level, &gb_cfg, &report);
            if !report.passed() {
                if let Some(mce) = &report.minimized {
                    print_minimized(mce);
                }
                return Err(format!(
                    "greybox fuzzing found a divergence at level {} (replay with \
                     `{} --level {} --bits {bits}{replay_edit}`): {:?}",
                    level.key(),
                    greybox_replay(&gb_cfg, ""),
                    level.key(),
                    report.verdict
                ));
            }
        }
        return Ok(());
    }
    for &level in &levels {
        if runs > 1 {
            // Parallel campaign: `runs` independently seeded Fig. 5
            // workflows sharded across worker threads, deterministic per
            // run index.
            let campaign_cfg = CampaignConfig {
                runs,
                workers: if jobs == 0 {
                    CampaignConfig::default().workers
                } else {
                    jobs
                },
                base: fuzz_cfg.clone(),
            };
            let campaign = fuzz_campaign_with_runtime(
                &compiled.pipeline_spec,
                &machine_code,
                level,
                || CompiledSpec::new(program.clone(), &compiled),
                &campaign_cfg,
                &runtime_options(&args)?,
            );
            let (passed, incompatible, mismatched, panicked) = campaign.counts();
            println!(
                "campaign[{}]: {runs} runs x {num_phvs} PHVs at {bits}-bit inputs on {} \
                 workers -> {passed} passed, {incompatible} incompatible, {mismatched} \
                 mismatched, {panicked} panicked",
                level.key(),
                campaign_cfg.workers
            );
            warn_truncated("fuzz campaign", campaign.truncated);
            if let Some(f) = campaign.first_failure() {
                if let Some(mce) = &f.minimized {
                    print_minimized(mce);
                }
                return Err(format!(
                    "fuzzing found a divergence at level {} (replay with \
                     `--seed {:#x} --level {} --phvs {num_phvs} --bits {bits}{replay_edit}`): {:?}",
                    level.key(),
                    f.seed,
                    level.key(),
                    f.verdict
                ));
            }
            continue;
        }
        let mut spec = CompiledSpec::new(program.clone(), &compiled);
        let report = fuzz_test(
            &compiled.pipeline_spec,
            &machine_code,
            level,
            &mut spec,
            &fuzz_cfg,
        );
        println!(
            "fuzz[{}]: {} PHVs at {bits}-bit inputs (seed {:#x}) -> {:?}",
            level.key(),
            report.phvs_tested,
            report.seed,
            report.verdict
        );
        if !report.passed() {
            if let Some(mce) = &report.minimized {
                print_minimized(mce);
            }
            return Err(format!(
                "fuzzing found a divergence at level {} (replay with \
                 `--seed {:#x} --level {} --phvs {num_phvs} --bits {bits}{replay_edit}`)",
                level.key(),
                report.seed,
                level.key()
            ));
        }
    }
    Ok(())
}

fn cmd_verify(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let (program, compiled) = compile_from(&args)?;
    report(&compiled);
    let bits = args.get_u32("bits", 2)?;
    let packets = args.get_usize("packets", 3)?;
    let max_cases = args.get_usize("max-cases", 10_000_000)? as u64;
    let lanes = args.get_usize("lanes", 0)?;
    if lanes != 0 && !druzhba::dgen::lanes::supported_width(lanes) {
        return Err(format!(
            "--lanes {lanes} is not a supported width; pick one of 1, 8, 16, 32, 64 \
             (or 0 to enumerate with the scalar backend)"
        ));
    }
    // Default: cover every backend — a divergence between levels is
    // exactly the compiler-testing signal this tool exists for. Lane
    // sweeping lowers the fused register program, so --lanes narrows the
    // default to the fused level (and rejects an explicit conflict).
    let default_levels: &[OptLevel] = if lanes > 0 {
        &[OptLevel::Fused]
    } else {
        &OptLevel::ALL
    };
    let levels = args.get_levels("level", default_levels)?;
    if lanes > 0 && levels.iter().any(|&l| l != OptLevel::Fused) {
        return Err(
            "--lanes sweeps the fused backend's lane engine; combine it only with \
             --level fused (or 3)"
                .into(),
        );
    }
    for &level in &levels {
        let mut spec = CompiledSpec::new(program.clone(), &compiled);
        let outcome = verify_bounded(
            &compiled.pipeline_spec,
            &compiled.machine_code,
            level,
            &mut spec,
            &VerifyConfig {
                input_bits: bits,
                packets,
                relevant_containers: (0..compiled.input_fields.len()).collect(),
                observable: Some(compiled.observable_containers()),
                state_cells: compiled.state_cells.clone(),
                max_cases,
                lanes,
            },
        )
        .map_err(|e| e.to_string())?;
        match outcome {
            VerifyOutcome::Verified { cases } => {
                let mode = if lanes > 0 {
                    format!(" ({lanes}-lane sweep)")
                } else {
                    String::new()
                };
                println!(
                    "verified[{}]: all {cases} input trace(s) of {packets} packet(s) at \
                     {bits}-bit inputs agree with the specification{mode}",
                    level.key()
                );
            }
            VerifyOutcome::CounterExample {
                input,
                mismatch,
                minimized,
            } => {
                println!("counterexample[{}]: {mismatch}", level.key());
                for (i, phv) in input.phvs.iter().enumerate() {
                    println!("  packet {i}: {phv}");
                }
                if let Some(mce) = &minimized {
                    print_minimized(mce);
                }
                return Err(format!(
                    "verification found a divergence at level {}",
                    level.key()
                ));
            }
        }
    }
    Ok(())
}

/// `druzhba generate`: emit generated programs without running any
/// packets — the inspection/replay face of the Gauntlet-style campaign.
/// Program `k` of a seed is a pure function of `(seed, k)`, so the
/// `--index` flag replays exactly the program a hunt report names.
fn cmd_generate(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    if let Some(file) = &args.file {
        return Err(format!(
            "generate takes no positional argument (got `{file}`); \
             programs are addressed by --seed and --index"
        ));
    }
    let seed = args.get_seed("seed", GenHuntConfig::default().seed)?;
    let start = args.get_usize("index", 0)? as u64;
    let count = args.get_usize("count", 1)? as u64;
    if count == 0 {
        return Err("--count needs a nonzero program count".into());
    }
    let json = args.get("json").is_some();
    let mut out = String::new();
    let rejected: u64;
    if args.get("p4").is_some() {
        let programs: Vec<_> = (start..start + count)
            .map(|i| generate_p4_at(seed, i))
            .collect();
        rejected = programs.iter().map(|g| u64::from(g.rejects.total())).sum();
        if json {
            out.push_str("{\n  \"kind\": \"p4\",\n  \"programs\": [\n");
            let rows: Vec<String> = programs
                .iter()
                .map(|g| {
                    format!(
                        "    {{\"name\": \"{}\", \"index\": {}, \"rejected\": {}, \
                         \"recipe\": \"{}\", \"source\": \"{}\", \"entries\": \"{}\"}}",
                        g.name,
                        g.index,
                        g.rejects.total(),
                        json_escape(&g.recipe()),
                        json_escape(&g.source),
                        json_escape(&g.entries)
                    )
                })
                .collect();
            out.push_str(&rows.join(",\n"));
            out.push_str("\n  ]\n}\n");
        } else {
            for g in &programs {
                use std::fmt::Write as _;
                let _ = writeln!(out, "// {} (replay: {})", g.name, g.recipe());
                out.push_str(&g.source);
                let _ = writeln!(out, "// entries for {}:", g.name);
                for line in g.entries.lines() {
                    let _ = writeln!(out, "//   {line}");
                }
            }
        }
    } else {
        let programs: Vec<_> = (start..start + count)
            .map(|i| generate_domino_at(seed, i))
            .collect();
        rejected = programs.iter().map(|g| u64::from(g.rejects.total())).sum();
        if json {
            out.push_str("{\n  \"kind\": \"domino\",\n  \"programs\": [\n");
            let rows: Vec<String> = programs
                .iter()
                .map(|g| {
                    format!(
                        "    {{\"name\": \"{}\", \"index\": {}, \"grid\": \"{}\", \
                         \"atom\": \"{}\", \"rejected\": {}, \"recipe\": \"{}\", \
                         \"source\": \"{}\"}}",
                        g.name,
                        g.index,
                        g.grid,
                        g.grid.atom,
                        g.rejects.total(),
                        json_escape(&g.recipe()),
                        json_escape(&g.source)
                    )
                })
                .collect();
            out.push_str(&rows.join(",\n"));
            out.push_str("\n  ]\n}\n");
        } else {
            for g in &programs {
                use std::fmt::Write as _;
                let _ = writeln!(
                    out,
                    "// {}: --depth {} --width {} --atom {} (replay: {})",
                    g.name,
                    g.grid.depth,
                    g.grid.width,
                    g.grid.atom,
                    g.recipe()
                );
                out.push_str(&g.source);
            }
        }
    }
    eprintln!(
        "generate: {count} {} program(s) from seed {seed:#x} starting at index {start} \
         ({rejected} candidate(s) rejected by the validity screen)",
        if args.get("p4").is_some() {
            "p4"
        } else {
            "domino"
        }
    );
    match args.get("out") {
        Some(path) => {
            atomic_write(path, &out)?;
            eprintln!("generated program(s) written to {path}");
        }
        None => print!("{out}"),
    }
    Ok(())
}

/// JSON string escaping for the hand-written `generate --json` rows.
fn json_escape(raw: &str) -> String {
    raw.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// `druzhba hunt --generate N`: the Gauntlet-style generated-program
/// campaign (clean differential sweep, optional fault injection with
/// program-level minimization).
fn cmd_genhunt(args: &Args, count: u64) -> Result<(), String> {
    if args.get("programs").is_some() || args.get("mutants").is_some() {
        return Err(
            "--generate sweeps freshly generated programs; --programs/--mutants \
             belong to the corpus hunt (drop --generate to use them)"
                .into(),
        );
    }
    let defaults = GenHuntConfig::default();
    let cfg = GenHuntConfig {
        count,
        seed: args.get_seed("seed", defaults.seed)?,
        levels: args.get_levels("level", &defaults.levels)?,
        fuzz_phvs: args.get_usize("phvs", defaults.fuzz_phvs)?,
        fuzz_runs: args.get_usize("runs", defaults.fuzz_runs)?,
        input_bits: args.get_u32("bits", defaults.input_bits)?,
        faults_per_program: args.get_usize("faults", defaults.faults_per_program)?,
        minimize_checks: args.get_usize("minimize-checks", defaults.minimize_checks)?,
        workers: match args.get_usize("jobs", 0)? {
            0 => defaults.workers,
            jobs => jobs,
        },
        runtime: runtime_options(args)?,
    };
    let report = genhunt(&cfg)?;

    eprintln!(
        "hunt --generate: {} program(s) swept over {} backend(s), {} candidate(s) \
         rejected by the validity screen, {} clean divergence(s)",
        report.programs(),
        cfg.levels.len(),
        report.rejected_candidates(),
        report.clean_divergences()
    );
    if report.faults_seeded() > 0 {
        eprintln!(
            "hunt --generate: {}/{} injected fault(s) detected ({:.1}%), {} minimized \
             to program-level reproducers",
            report.faults_detected(),
            report.faults_seeded(),
            report.detection_rate() * 100.0,
            report.minimized()
        );
    }
    warn_truncated("hunt --generate", report.truncated);
    let json = report.to_json();
    match args.get("out") {
        Some(path) => {
            atomic_write(path, &json)?;
            eprintln!("hunt --generate report written to {path}");
        }
        None => print!("{json}"),
    }
    if report.panics() > 0 {
        return Err(format!(
            "hunt --generate: {} program sweep(s) died to a worker panic",
            report.panics()
        ));
    }
    if report.clean_divergences() > 0 {
        return Err(format!(
            "hunt --generate: {} clean-sweep divergence(s) on freshly generated, \
             statically vetted programs — each one is a genuine compiler bug \
             (replay recipes are in the report's programs[] rows)",
            report.clean_divergences()
        ));
    }
    if report.alarming_rejects() > 0 {
        return Err(format!(
            "hunt --generate: {} candidate(s) rejected because translation validation \
             mismatched or the symbolic pass refuted their fresh compile — each one \
             is a genuine compiler bug",
            report.alarming_rejects()
        ));
    }
    Ok(())
}

fn cmd_hunt(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    if let Some(file) = &args.file {
        return Err(format!(
            "hunt runs over the built-in corpus (unexpected argument `{file}`); \
             select programs with --programs a,b,c"
        ));
    }
    let generate = args.get_usize("generate", 0)?;
    if generate > 0 {
        return cmd_genhunt(&args, generate as u64);
    }
    let defaults = HuntConfig::default();
    let cfg = HuntConfig {
        programs: args
            .get("programs")
            .map(|raw| raw.split(',').map(|s| s.trim().to_string()).collect())
            .unwrap_or_default(),
        mutants_per_class: args.get_usize("mutants", defaults.mutants_per_class)?,
        seed: args.get_seed("seed", defaults.seed)?,
        levels: args.get_levels("level", &defaults.levels)?,
        fuzz_phvs: args.get_usize("phvs", defaults.fuzz_phvs)?,
        fuzz_runs: args.get_usize("runs", defaults.fuzz_runs)?,
        input_bits: args.get_u32("bits", defaults.input_bits)?,
        verify_bits: args.get_u32("verify-bits", defaults.verify_bits)?,
        verify_packets: args.get_usize("verify-packets", defaults.verify_packets)?,
        workers: match args.get_usize("jobs", 0)? {
            0 => defaults.workers,
            jobs => jobs,
        },
        case_budget: case_budget(&args)?,
        runtime: runtime_options(&args)?,
    };
    let report = hunt(&cfg)?;

    // Human summary on stderr, machine-readable JSON on stdout (or --out),
    // so `druzhba hunt > report.json` composes.
    for o in &report.outcomes {
        if o.detected() {
            continue;
        }
        eprintln!(
            "SURVIVOR: {} {:?} at level {} went undetected",
            o.program,
            o.fault,
            o.level.key()
        );
    }
    let by_fault = report.by_fault_kind();
    for (kind, (total, detected)) in &by_fault {
        eprintln!("hunt: {:<18} {detected}/{total} detected", kind.key());
    }
    if report.neutral_discarded > 0 {
        eprintln!(
            "hunt: {} behaviorally neutral mutation candidate(s) screened out",
            report.neutral_discarded
        );
    }
    let by_static: Vec<String> = report
        .by_static_flag()
        .into_iter()
        .map(|(k, n)| format!("{k} {n}"))
        .collect();
    eprintln!(
        "hunt: {}/{} evaluation(s) flagged statically before any packet ran ({})",
        report.static_flagged(),
        report.evaluations(),
        by_static.join(", ")
    );
    eprintln!(
        "hunt: {} evaluation(s) over {} backend(s) -> {}/{} detected ({:.1}%)",
        report.evaluations(),
        cfg.levels.len(),
        report.detected(),
        report.evaluations(),
        report.detection_rate() * 100.0
    );
    warn_truncated("hunt", report.truncated);
    let json = report.to_json();
    match args.get("out") {
        Some(path) => {
            atomic_write(path, &json)?;
            eprintln!("hunt report written to {path}");
        }
        None => print!("{json}"),
    }
    let undetected = report.evaluations() - report.detected();
    if undetected > 0 {
        return Err(format!(
            "hunt: {undetected} of {} injected-fault evaluation(s) went undetected",
            report.evaluations()
        ));
    }
    Ok(())
}

fn cmd_analyze(rest: &[String]) -> Result<ExitCode, String> {
    use druzhba::analyze::{
        analyze_compiled, analyze_corpus, analyze_domino_def, analyze_p4_workload, CorpusAnalysis,
    };

    let args = Args::parse(rest)?;
    let symbolic = args.get("symbolic").is_some();
    let analysis = match args.file.as_deref() {
        // No positional: the whole 17-program corpus.
        None => analyze_corpus(symbolic)?,
        Some(file) if is_p4_path(file) || p4_by_name(file).is_some() => {
            let (name, workload) = load_p4_target(&args, file)?;
            CorpusAnalysis {
                programs: vec![analyze_p4_workload(&name, &workload, symbolic)?],
            }
        }
        Some(name_or_file) => {
            let program = if let Some(def) = druzhba::programs::by_name(name_or_file) {
                analyze_domino_def(def, symbolic)?
            } else {
                let (_, compiled) = compile_from(&args)?;
                let observable = compiled.observable_containers();
                analyze_compiled(
                    name_or_file,
                    &compiled.pipeline_spec,
                    &compiled.machine_code,
                    Some(&observable),
                    symbolic,
                )?
            };
            CorpusAnalysis {
                programs: vec![program],
            }
        }
    };

    let rendered = if args.get("json").is_some() {
        analysis.to_json()
    } else {
        analysis.to_text()
    };
    match args.get("out") {
        Some(path) => {
            atomic_write(path, &rendered)?;
            eprintln!("analysis written to {path}");
        }
        None => print!("{rendered}"),
    }
    // Exit-code matrix (docs/FUZZING.md): 2 = proven miscompilation
    // (abstract TV mismatch or symbolic refutation), 0 = clean or
    // lint-only. Operational errors exit 1 via the generic Err path.
    let code = analysis.exit_code();
    if code != 0 {
        eprintln!(
            "analyze: {} translation-validation mismatch(es), {} symbolic refutation(s) — \
             the compiled forms provably disagree with the source semantics",
            analysis.tv_mismatches(),
            analysis.symbolic_refutations()
        );
    }
    Ok(ExitCode::from(code))
}

fn cmd_emit(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let level = match args.get_usize("level", 2)? {
        0 => OptLevel::Unoptimized,
        1 => OptLevel::Scc,
        2 => OptLevel::SccInline,
        3 => OptLevel::Fused,
        other => return Err(format!("--level must be 0, 1, 2, or 3 (got {other})")),
    };
    if let Some(file) = args.file.clone().filter(|f| is_p4_path(f)) {
        let (_, workload) = load_p4_target(&args, &file)?;
        let src = emit_mat_pipeline(&workload.hlir, &workload.entries, &workload.lowering, level)
            .map_err(|e| e.to_string())?;
        print!("{src}");
        return Ok(());
    }
    let (_, compiled) = compile_from(&args)?;
    let src = emit_pipeline(&compiled.pipeline_spec, &compiled.machine_code, level)
        .map_err(|e| e.to_string())?;
    print!("{src}");
    Ok(())
}

fn cmd_atoms() -> Result<(), String> {
    use druzhba::alu_dsl::atoms::{atom, STATEFUL_ATOMS, STATELESS_ATOMS};
    println!("stateful atoms:");
    for name in STATEFUL_ATOMS {
        let spec = atom(name).map_err(|e| e.to_string())?;
        println!(
            "  {name:<14} {} state var(s), {} hole(s)",
            spec.state_vars.len(),
            spec.holes.len()
        );
    }
    println!("stateless ALUs:");
    for name in STATELESS_ATOMS {
        let spec = atom(name).map_err(|e| e.to_string())?;
        println!("  {name:<18} {} hole(s)", spec.holes.len());
    }
    Ok(())
}

fn cmd_programs() -> Result<(), String> {
    println!(
        "{:<20} {:>11} {:>12}  source",
        "program", "depth,width", "atom"
    );
    for def in &druzhba::programs::PROGRAMS {
        println!(
            "{:<20} {:>11} {:>12}  crates/programs/assets/{}.domino",
            def.name,
            format!("{},{}", def.depth, def.width),
            def.stateful_atom,
            def.name
        );
    }
    println!();
    println!("{:<20} {:>6}  description", "p4 program", "stages");
    for def in &P4_PROGRAMS {
        println!("{:<20} {:>6}  {}", def.name, def.stages, def.description);
    }
    Ok(())
}
