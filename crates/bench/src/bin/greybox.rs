//! Greybox-vs-random ablation: executions to first divergence on the two
//! mutation campaigns.
//!
//! FP4 and Gauntlet justify feedback-driven input generation by detection
//! economics: fewer executions per found bug. This binary measures that
//! claim on Druzhba's own campaigns. For every seeded mutant (the same
//! deterministic fault classes `druzhba hunt` and `p4-fuzz --mutants`
//! inject) and every requested backend, it races two equal-budget modes:
//!
//! - **random** — independently seeded traffic batches through the plain
//!   differential oracle, counting batches until the first divergence;
//! - **greybox** — the coverage-guided loop (`dsim::coverage`) with the
//!   same per-execution packet count and total budget, counting its
//!   `first_divergence` ordinal.
//!
//! Both modes run single-threaded per evaluation (the evaluations
//! themselves shard across workers), so results are machine-independent.
//! The run writes machine-readable `BENCH_greybox.json` — detection rate
//! and median executions-to-first-divergence per mode per stack — which
//! is committed so the guidance payoff is diffable across commits; CI
//! runs a reduced smoke pass.
//!
//! Usage: `cargo run -p druzhba-bench --release --bin greybox --
//!   [executions] [--packets P] [--mutants N] [--level L|all]
//!   [--programs a,b] [--p4-programs x,y] [--seed S] [--out FILE]`

use std::fmt::Write as _;

use druzhba_core::MachineCode;
use druzhba_dgen::OptLevel;
use druzhba_dsim::coverage::{greybox_fuzz_test, p4_greybox_fuzz_test, GreyboxConfig};
use druzhba_dsim::fault::{FaultInjector, FaultKind};
use druzhba_dsim::p4::{run_p4_case, P4FaultInjector, P4FaultKind, P4Traffic, P4Workload};
use druzhba_dsim::testing::{run_case, run_sharded, shard_seed};
use druzhba_dsim::TrafficGenerator;
use druzhba_programs::{ProgramDef, P4_PROGRAMS, PROGRAMS};

/// One evaluation's outcome in one mode.
#[derive(Clone, Copy)]
struct ModeOutcome {
    /// Execution ordinal of the first divergence (1-based), if any.
    detected_at: Option<usize>,
}

/// One (mutant, level) evaluation: both modes under the same budget.
struct Evaluation {
    random: ModeOutcome,
    greybox: ModeOutcome,
}

/// Aggregate statistics of one mode over a stack's evaluations.
struct ModeStats {
    detected: usize,
    total: usize,
    median_execs: Option<usize>,
    mean_execs: Option<f64>,
}

fn stats(outcomes: impl Iterator<Item = ModeOutcome> + Clone) -> ModeStats {
    let total = outcomes.clone().count();
    let mut detections: Vec<usize> = outcomes.filter_map(|o| o.detected_at).collect();
    detections.sort_unstable();
    let detected = detections.len();
    let median_execs = (!detections.is_empty()).then(|| detections[detections.len() / 2]);
    let mean_execs = (!detections.is_empty())
        .then(|| detections.iter().sum::<usize>() as f64 / detections.len() as f64);
    ModeStats {
        detected,
        total,
        median_execs,
        mean_execs,
    }
}

fn mode_json(s: &ModeStats) -> String {
    // No evaluations means no measurement — null, not a perfect score.
    let rate = if s.total == 0 {
        "null".to_string()
    } else {
        format!("{:.4}", s.detected as f64 / s.total as f64)
    };
    format!(
        "{{\"detected\": {}, \"evaluations\": {}, \"detection_rate\": {rate}, \
         \"median_executions_to_divergence\": {}, \"mean_executions_to_divergence\": {}}}",
        s.detected,
        s.total,
        s.median_execs.map_or("null".to_string(), |m| m.to_string()),
        s.mean_execs
            .map_or("null".to_string(), |m| format!("{m:.1}")),
    )
}

/// Blind-random baseline on the ALU stack: fresh `packets`-long traffic
/// batches through `run_case` until divergence or budget exhaustion.
fn random_alu(
    def: &ProgramDef,
    comp: &druzhba_chipmunk::CompiledProgram,
    mc: &MachineCode,
    level: OptLevel,
    budget: usize,
    packets: usize,
    base_seed: u64,
) -> ModeOutcome {
    let mut reference = def.interpreter_spec(comp);
    let observable = comp.observable_containers();
    for i in 0..budget {
        let seed = shard_seed(base_seed, i as u64);
        let input =
            TrafficGenerator::new(seed, comp.pipeline_spec.config.phv_length, 10).trace(packets);
        let verdict = run_case(
            &comp.pipeline_spec,
            mc,
            level,
            &mut reference,
            &input,
            Some(&observable),
            &comp.state_cells,
        );
        if !verdict.passed() {
            return ModeOutcome {
                detected_at: Some(i + 1),
            };
        }
    }
    ModeOutcome { detected_at: None }
}

/// Blind-random baseline on the P4 stack.
fn random_p4(
    workload: &P4Workload,
    entries: &[druzhba_p4::tables::TableEntry],
    level: OptLevel,
    budget: usize,
    packets: usize,
    base_seed: u64,
) -> ModeOutcome {
    for i in 0..budget {
        let seed = shard_seed(base_seed, i as u64);
        let input = P4Traffic::new(workload, seed, 16).trace(packets);
        if !run_p4_case(workload, entries, level, &input).passed() {
            return ModeOutcome {
                detected_at: Some(i + 1),
            };
        }
    }
    ModeOutcome { detected_at: None }
}

fn greybox_cfg(budget: usize, packets: usize, bits: u32, seed: u64) -> GreyboxConfig {
    GreyboxConfig {
        executions: budget,
        packets,
        // Strictly equal per-execution budget: greybox traces may never
        // exceed the random baseline's fixed batch length, so the
        // comparison credits guidance, not extra packets.
        max_packets: packets,
        seed,
        input_bits: bits,
        workers: 1, // evaluations shard across workers; each mode is serial
        minimize: false,
        ..GreyboxConfig::default()
    }
}

fn parse_levels(raw: &str) -> Vec<OptLevel> {
    if raw == "all" {
        return OptLevel::ALL.to_vec();
    }
    raw.split(',')
        .map(|tok| match tok.trim() {
            "0" | "unoptimized" => OptLevel::Unoptimized,
            "1" | "scc" => OptLevel::Scc,
            "2" | "scc_inline" => OptLevel::SccInline,
            "3" | "fused" => OptLevel::Fused,
            other => panic!("unknown level `{other}`"),
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut executions = 512usize;
    let mut packets = 48usize;
    let mut mutants_per_class = 2usize;
    let mut levels = OptLevel::ALL.to_vec();
    let mut out: Option<String> = None;
    let mut seed = 0x000D_122Bu64;
    let mut programs: Option<Vec<String>> = None;
    let mut p4_programs: Option<Vec<String>> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut flag = |name: &str| -> Option<String> {
            (a == name).then(|| {
                it.next()
                    .unwrap_or_else(|| panic!("{name} needs a value"))
                    .clone()
            })
        };
        if let Some(v) = flag("--packets") {
            packets = v.parse().expect("--packets");
        } else if let Some(v) = flag("--mutants") {
            mutants_per_class = v.parse().expect("--mutants");
        } else if let Some(v) = flag("--level") {
            levels = parse_levels(&v);
        } else if let Some(v) = flag("--out") {
            out = Some(v);
        } else if let Some(v) = flag("--seed") {
            seed = v.parse().expect("--seed");
        } else if let Some(v) = flag("--programs") {
            programs = Some(v.split(',').map(|s| s.trim().to_string()).collect());
        } else if let Some(v) = flag("--p4-programs") {
            p4_programs = Some(v.split(',').map(|s| s.trim().to_string()).collect());
        } else {
            executions = a.parse().expect("usage: greybox [executions] [--flags]");
        }
    }
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);

    // ------------------------------------------------------------------
    // ALU stack: machine-code mutants over the Table 1 corpus.
    // ------------------------------------------------------------------
    let defs: Vec<&ProgramDef> = match &programs {
        None => PROGRAMS.iter().collect(),
        Some(names) => names
            .iter()
            .map(|n| {
                druzhba_programs::by_name(n).unwrap_or_else(|| panic!("unknown program `{n}`"))
            })
            .collect(),
    };
    let compiled: Vec<_> = defs
        .iter()
        .map(|def| def.compile_cached().expect("corpus compiles"))
        .collect();

    // Seed mutants like `druzhba hunt`: deterministic injector per
    // program, value mutations screened for behavioral effect with a
    // probe fuzz (equivalent mutants measure nothing).
    struct AluMutant {
        program: usize,
        mc: MachineCode,
    }
    let mut alu_mutants: Vec<AluMutant> = Vec::new();
    let mut alu_screened_out = 0usize;
    for (pi, (def, comp)) in defs.iter().zip(&compiled).enumerate() {
        let mut injector = FaultInjector::new(shard_seed(seed, pi as u64));
        // Behavioral fault classes only: the hostile-trap class exists to
        // exercise panic isolation, not to measure detection latency.
        for kind in FaultKind::BEHAVIORAL {
            let mut seeded = 0usize;
            for attempt in 0..mutants_per_class * 10 {
                if seeded >= mutants_per_class {
                    break;
                }
                let Some((mc, _fault)) =
                    injector.inject(&comp.pipeline_spec, &comp.machine_code, kind)
                else {
                    break;
                };
                if kind == FaultKind::MutatedValue {
                    // Probe for behavioral effect on the default backend.
                    let probe = random_alu(
                        def,
                        comp,
                        &mc,
                        OptLevel::SccInline,
                        4,
                        2_000,
                        shard_seed(seed ^ 0x5343_524E, (pi * 100 + attempt) as u64),
                    );
                    if probe.detected_at.is_none() {
                        alu_screened_out += 1;
                        continue;
                    }
                }
                alu_mutants.push(AluMutant { program: pi, mc });
                seeded += 1;
            }
        }
    }

    let alu_tasks: Vec<(usize, OptLevel)> = alu_mutants
        .iter()
        .enumerate()
        .flat_map(|(mi, _)| levels.iter().map(move |&l| (mi, l)))
        .collect();
    eprintln!(
        "alu: {} mutants ({} screened out) x {} level(s) = {} evaluations, \
         budget {executions} x {packets} packets",
        alu_mutants.len(),
        alu_screened_out,
        levels.len(),
        alu_tasks.len()
    );
    let alu_mutants = &alu_mutants;
    let defs = &defs;
    let compiled = &compiled;
    let alu_evals: Vec<Evaluation> = run_sharded(alu_tasks, workers, |ti, (mi, level)| {
        let m = &alu_mutants[mi];
        let (def, comp) = (defs[m.program], &compiled[m.program]);
        let random = random_alu(
            def,
            comp,
            &m.mc,
            level,
            executions,
            packets,
            shard_seed(seed ^ 0x7A4D_0000, ti as u64),
        );
        let gb = greybox_fuzz_test(
            &comp.pipeline_spec,
            &m.mc,
            level,
            || def.interpreter_spec(comp),
            Some(&comp.observable_containers()),
            &comp.state_cells,
            &greybox_cfg(
                executions,
                packets,
                10,
                shard_seed(seed ^ 0x6B00_0000, ti as u64),
            ),
        );
        Evaluation {
            random,
            greybox: ModeOutcome {
                detected_at: gb.first_divergence,
            },
        }
    });

    // ------------------------------------------------------------------
    // P4 stack: table/action mutants over the P4 corpus.
    // ------------------------------------------------------------------
    let p4_defs: Vec<_> = match &p4_programs {
        None => P4_PROGRAMS.iter().collect(),
        Some(names) => names
            .iter()
            .map(|n| {
                druzhba_programs::p4_by_name(n)
                    .unwrap_or_else(|| panic!("unknown p4 program `{n}`"))
            })
            .collect(),
    };
    let workloads: Vec<(String, P4Workload)> = p4_defs
        .iter()
        .map(|def| (def.name.to_string(), def.workload().expect("corpus lowers")))
        .collect();
    struct P4Mutant {
        target: usize,
        entries: Vec<druzhba_p4::tables::TableEntry>,
    }
    let mut p4_mutants: Vec<P4Mutant> = Vec::new();
    let mut p4_screened_out = 0usize;
    for (ti, (_, workload)) in workloads.iter().enumerate() {
        let mut injector = P4FaultInjector::new(shard_seed(seed, ti as u64));
        for kind in P4FaultKind::ALL {
            let mut seeded = 0usize;
            for attempt in 0..mutants_per_class * 10 {
                if seeded >= mutants_per_class {
                    break;
                }
                let Some((entries, _fault)) = injector.inject(&workload.entries, kind) else {
                    break;
                };
                let probe = random_p4(
                    workload,
                    &entries,
                    OptLevel::SccInline,
                    4,
                    2_000,
                    shard_seed(seed ^ 0x5343_524E, (ti * 100 + attempt) as u64),
                );
                if probe.detected_at.is_none() {
                    p4_screened_out += 1;
                    continue;
                }
                p4_mutants.push(P4Mutant {
                    target: ti,
                    entries,
                });
                seeded += 1;
            }
        }
    }
    let p4_tasks: Vec<(usize, OptLevel)> = p4_mutants
        .iter()
        .enumerate()
        .flat_map(|(mi, _)| levels.iter().map(move |&l| (mi, l)))
        .collect();
    eprintln!(
        "p4:  {} mutants ({} screened out) x {} level(s) = {} evaluations",
        p4_mutants.len(),
        p4_screened_out,
        levels.len(),
        p4_tasks.len()
    );
    let p4_mutants = &p4_mutants;
    let workloads = &workloads;
    let p4_evals: Vec<Evaluation> = run_sharded(p4_tasks, workers, |ti, (mi, level)| {
        let m = &p4_mutants[mi];
        let (_, workload) = &workloads[m.target];
        let random = random_p4(
            workload,
            &m.entries,
            level,
            executions,
            packets,
            shard_seed(seed ^ 0x7A4D_0001, ti as u64),
        );
        let gb = p4_greybox_fuzz_test(
            workload,
            &m.entries,
            level,
            false,
            &greybox_cfg(
                executions,
                packets,
                16,
                shard_seed(seed ^ 0x6B00_0001, ti as u64),
            ),
        );
        Evaluation {
            random,
            greybox: ModeOutcome {
                detected_at: gb.first_divergence,
            },
        }
    });

    // ------------------------------------------------------------------
    // Report.
    // ------------------------------------------------------------------
    let render = |name: &str, evals: &[Evaluation]| -> String {
        let rnd = stats(evals.iter().map(|e| e.random));
        let gb = stats(evals.iter().map(|e| e.greybox));
        println!(
            "{name}: greybox {}/{} detected (median {} execs), random {}/{} (median {} execs)",
            gb.detected,
            gb.total,
            gb.median_execs.map_or("-".to_string(), |m| m.to_string()),
            rnd.detected,
            rnd.total,
            rnd.median_execs.map_or("-".to_string(), |m| m.to_string()),
        );
        format!(
            "  \"{name}\": {{\"greybox\": {}, \"random\": {}}}",
            mode_json(&gb),
            mode_json(&rnd)
        )
    };
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let level_names: Vec<String> = levels.iter().map(|l| format!("\"{}\"", l.key())).collect();
    let _ = writeln!(
        json,
        "  \"config\": {{\"executions\": {executions}, \"packets\": {packets}, \
         \"mutants_per_class\": {mutants_per_class}, \"levels\": [{}], \"seed\": {seed}}},",
        level_names.join(", ")
    );
    let _ = writeln!(json, "{},", render("alu", &alu_evals));
    let _ = writeln!(json, "{}", render("p4", &p4_evals));
    let _ = writeln!(json, "}}");
    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("write BENCH_greybox.json");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }

    // Guard the guidance claim: greybox must never detect fewer mutants
    // than blind random under the same budget.
    let gb_total = stats(alu_evals.iter().chain(&p4_evals).map(|e| e.greybox));
    let rnd_total = stats(alu_evals.iter().chain(&p4_evals).map(|e| e.random));
    if gb_total.detected < rnd_total.detected {
        eprintln!(
            "REGRESSION: greybox detected {} < random {}",
            gb_total.detected, rnd_total.detected
        );
        std::process::exit(1);
    }
}
