//! Machine-code programs.
//!
//! Paper §3.1: *"Our machine code to run on the pipeline consists of a list
//! of string and integer pairs that specify ALUs' control flow and
//! computational behavior."* Each pair's name identifies a hardware
//! primitive (a mux or an ALU-internal hole) and its location in the
//! pipeline; the paired value programs that primitive's behaviour.
//!
//! The textual format accepted by [`MachineCode::parse`] is one pair per
//! line, `name = value`, with `#`-prefixed comments and blank lines ignored:
//!
//! ```text
//! # BLUE (increase), stage 0
//! stateful_alu_0_0_operand_mux_0 = 1
//! output_mux_phv_0_0 = 3
//! ```

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::value::Value;

/// A machine-code program: a mapping from primitive names to the integer
/// values that program them.
///
/// Internally ordered (BTreeMap) so that serialization, diffing, and error
/// messages are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineCode {
    pairs: BTreeMap<String, Value>,
}

impl MachineCode {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of pairs. Later duplicates overwrite earlier
    /// ones (use [`MachineCode::parse`] for duplicate detection).
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        MachineCode {
            pairs: pairs
                .into_iter()
                .map(|(name, v)| (name.into(), v))
                .collect(),
        }
    }

    /// Parse the textual machine-code format (see module docs).
    ///
    /// Errors on malformed lines and on duplicate names: a duplicate pair is
    /// almost always an assembler bug, and silently keeping one of the two
    /// values would mask it.
    pub fn parse(text: &str) -> Result<Self> {
        let mut pairs = BTreeMap::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((name, value)) = line.split_once('=') else {
                return Err(Error::MachineCodeParse {
                    line: lineno + 1,
                    message: format!("expected `name = value`, got `{line}`"),
                });
            };
            let name = name.trim().to_string();
            let value: Value = value.trim().parse().map_err(|e| Error::MachineCodeParse {
                line: lineno + 1,
                message: format!("bad value for `{name}`: {e}"),
            })?;
            if pairs.insert(name.clone(), value).is_some() {
                return Err(Error::MachineCodeParse {
                    line: lineno + 1,
                    message: format!("duplicate machine code pair `{name}`"),
                });
            }
        }
        Ok(MachineCode { pairs })
    }

    /// Insert (or overwrite) a pair.
    pub fn set(&mut self, name: impl Into<String>, value: Value) {
        self.pairs.insert(name.into(), value);
    }

    /// Look up a pair, returning a [`Error::MissingMachineCode`] if absent.
    ///
    /// This is the lookup used by the unoptimized simulation backend; a
    /// missing pair is one of the two failure classes observed in the
    /// paper's case study (§5.2).
    pub fn get(&self, name: &str) -> Result<Value> {
        self.pairs
            .get(name)
            .copied()
            .ok_or_else(|| Error::MissingMachineCode {
                name: name.to_string(),
            })
    }

    /// Look up a pair without error conversion.
    pub fn try_get(&self, name: &str) -> Option<Value> {
        self.pairs.get(name).copied()
    }

    /// True if the program contains `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.pairs.contains_key(name)
    }

    /// Remove a pair, returning its value if present. Used by the fault
    /// injector to reproduce the "missing machine code pairs" failure class.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.pairs.remove(name)
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the program has no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterate over pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Value)> {
        self.pairs.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.pairs.keys().map(String::as_str)
    }

    /// Merge `other` into `self`; pairs in `other` win on conflict.
    pub fn merge(&mut self, other: &MachineCode) {
        for (name, v) in other.iter() {
            self.pairs.insert(name.to_string(), v);
        }
    }

    /// Names present in `expected` but missing here. The pipeline generator
    /// uses this for up-front validation so that an incompatible program is
    /// rejected before simulation starts.
    pub fn missing_from<'a, I>(&self, expected: I) -> Vec<String>
    where
        I: IntoIterator<Item = &'a str>,
    {
        expected
            .into_iter()
            .filter(|name| !self.contains(name))
            .map(str::to_string)
            .collect()
    }

    /// Serialize to the textual format parseable by [`MachineCode::parse`].
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.iter() {
            out.push_str(name);
            out.push_str(" = ");
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for MachineCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

impl FromIterator<(String, Value)> for MachineCode {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        MachineCode::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_pairs() {
        let mc = MachineCode::parse("a = 1\nb = 2\n").unwrap();
        assert_eq!(mc.get("a").unwrap(), 1);
        assert_eq!(mc.get("b").unwrap(), 2);
        assert_eq!(mc.len(), 2);
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let mc = MachineCode::parse("# header\n\na = 3 # trailing\n").unwrap();
        assert_eq!(mc.get("a").unwrap(), 3);
        assert_eq!(mc.len(), 1);
    }

    #[test]
    fn parse_rejects_duplicates() {
        let err = MachineCode::parse("a = 1\na = 2\n").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn parse_rejects_missing_equals() {
        let err = MachineCode::parse("a 1\n").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn parse_rejects_bad_value() {
        let err = MachineCode::parse("a = x\n").unwrap_err();
        assert!(err.to_string().contains("bad value"));
    }

    #[test]
    fn missing_lookup_is_typed_error() {
        let mc = MachineCode::new();
        match mc.get("nope") {
            Err(Error::MissingMachineCode { name }) => assert_eq!(name, "nope"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn round_trip_text() {
        let mc = MachineCode::from_pairs([("z", 9), ("a", 1)]);
        let text = mc.to_text();
        let back = MachineCode::parse(&text).unwrap();
        assert_eq!(mc, back);
        // BTreeMap ordering makes the output deterministic.
        assert_eq!(text, "a = 1\nz = 9\n");
    }

    #[test]
    fn missing_from_reports_absent_names() {
        let mc = MachineCode::from_pairs([("a", 1)]);
        let missing = mc.missing_from(["a", "b", "c"]);
        assert_eq!(missing, vec!["b".to_string(), "c".to_string()]);
    }

    #[test]
    fn merge_overwrites() {
        let mut a = MachineCode::from_pairs([("x", 1), ("y", 2)]);
        let b = MachineCode::from_pairs([("y", 7), ("z", 3)]);
        a.merge(&b);
        assert_eq!(a.get("x").unwrap(), 1);
        assert_eq!(a.get("y").unwrap(), 7);
        assert_eq!(a.get("z").unwrap(), 3);
    }

    #[test]
    fn remove_supports_fault_injection() {
        let mut a = MachineCode::from_pairs([("x", 1)]);
        assert_eq!(a.remove("x"), Some(1));
        assert_eq!(a.remove("x"), None);
        assert!(a.is_empty());
    }
}
