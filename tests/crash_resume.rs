//! The headline crash-recovery guarantee, exercised on the real binary:
//! SIGKILL a checkpointed hunt campaign mid-flight, resume it, and the
//! final JSON report is byte-identical to an uninterrupted run's.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("druzhba-crash-resume-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn killed_hunt_resumes_to_a_byte_identical_report() {
    let bin = env!("CARGO_BIN_EXE_druzhba");
    let dir = tmpdir();
    let clean = dir.join("clean.json");
    let resumed = dir.join("resumed.json");
    let ckpt = dir.join("ckpt");
    let base = [
        "hunt",
        "--programs",
        "sampling",
        "--mutants",
        "1",
        "--phvs",
        "400",
        "--runs",
        "1",
        "--jobs",
        "2",
        "--seed",
        "7",
    ];

    // Reference: one uninterrupted run.
    let status = Command::new(bin)
        .args(base)
        .args(["--out", clean.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn clean hunt");
    assert!(status.success(), "clean hunt failed");

    // Victim: checkpoint after every completed task, SIGKILL as soon as
    // the first snapshot lands (no chance to clean up or flush).
    let mut child = Command::new(bin)
        .args(base)
        .args([
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--every",
            "1",
            "--out",
            dir.join("dead.json").to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn checkpointed hunt");
    let snap = ckpt.join("hunt.snapshot");
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        if snap.exists() {
            break;
        }
        // Finished before we could kill it: the resume below degenerates
        // to a pure cache replay, which must still match byte-for-byte.
        if child.try_wait().expect("poll child").is_some() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no checkpoint appeared before the deadline"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let _ = child.kill(); // SIGKILL on unix: no destructors, no flush
    let _ = child.wait();
    assert!(snap.exists(), "victim died without writing a snapshot");

    // Resume from the checkpoint directory and demand the exact report.
    let status = Command::new(bin)
        .args(base)
        .args([
            "--resume",
            ckpt.to_str().unwrap(),
            "--out",
            resumed.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn resumed hunt");
    assert!(status.success(), "resumed hunt failed");

    let clean_bytes = fs::read(&clean).expect("clean report");
    let resumed_bytes = fs::read(&resumed).expect("resumed report");
    assert!(!clean_bytes.is_empty());
    assert_eq!(
        clean_bytes, resumed_bytes,
        "resumed report is not byte-identical to the uninterrupted run"
    );

    // The live-status heartbeat tracked the campaign to completion.
    let status_json = fs::read_to_string(ckpt.join("status.json")).expect("heartbeat");
    assert!(status_json.contains("\"kind\": \"hunt\""), "{status_json}");
    let _ = fs::remove_dir_all(&dir);
}

/// The same SIGKILL-and-resume guarantee for the generated-program
/// campaign: `hunt --generate` checkpoints per program index, and a
/// resumed campaign's report is byte-identical to an uninterrupted
/// run's.
#[test]
fn killed_genhunt_resumes_to_a_byte_identical_report() {
    let bin = env!("CARGO_BIN_EXE_druzhba");
    let dir = std::env::temp_dir().join(format!("druzhba-genhunt-resume-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let clean = dir.join("clean.json");
    let resumed = dir.join("resumed.json");
    let ckpt = dir.join("ckpt");
    let base = [
        "hunt",
        "--generate",
        "6",
        "--phvs",
        "150",
        "--faults",
        "1",
        "--jobs",
        "2",
        "--seed",
        "7",
    ];

    let status = Command::new(bin)
        .args(base)
        .args(["--out", clean.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn clean genhunt");
    assert!(status.success(), "clean genhunt failed");

    let mut child = Command::new(bin)
        .args(base)
        .args([
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--every",
            "1",
            "--out",
            dir.join("dead.json").to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn checkpointed genhunt");
    let snap = ckpt.join("genhunt.snapshot");
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        if snap.exists() {
            break;
        }
        if child.try_wait().expect("poll child").is_some() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no checkpoint appeared before the deadline"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let _ = child.kill();
    let _ = child.wait();
    assert!(snap.exists(), "victim died without writing a snapshot");

    let status = Command::new(bin)
        .args(base)
        .args([
            "--resume",
            ckpt.to_str().unwrap(),
            "--out",
            resumed.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn resumed genhunt");
    assert!(status.success(), "resumed genhunt failed");

    let clean_bytes = fs::read(&clean).expect("clean report");
    let resumed_bytes = fs::read(&resumed).expect("resumed report");
    assert!(!clean_bytes.is_empty());
    assert_eq!(
        clean_bytes, resumed_bytes,
        "resumed genhunt report is not byte-identical to the uninterrupted run"
    );
    let status_json = fs::read_to_string(ckpt.join("status.json")).expect("heartbeat");
    assert!(
        status_json.contains("\"kind\": \"genhunt\""),
        "{status_json}"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Budget truncation is graceful for the generated-program campaign
/// too: exit 0, loud warning, report marked truncated.
#[test]
fn budgeted_genhunt_exits_zero_with_a_truncation_warning() {
    let bin = env!("CARGO_BIN_EXE_druzhba");
    let out = Command::new(bin)
        .args([
            "hunt",
            "--generate",
            "4",
            "--phvs",
            "150",
            "--jobs",
            "2",
            "--budget-secs",
            "0",
        ])
        .output()
        .expect("spawn budgeted genhunt");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("budget expired"), "stderr: {err}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"truncated\": 4"), "stdout: {stdout}");
}

#[test]
fn budgeted_hunt_exits_zero_with_a_truncation_warning() {
    let bin = env!("CARGO_BIN_EXE_druzhba");
    let out = Command::new(bin)
        .args([
            "hunt",
            "--programs",
            "sampling",
            "--mutants",
            "1",
            "--phvs",
            "300",
            "--runs",
            "1",
            "--jobs",
            "2",
            "--budget-secs",
            "0",
        ])
        .output()
        .expect("spawn budgeted hunt");
    // Graceful degradation: a budget-truncated campaign is a *partial
    // success* (exit 0) that says so loudly, never a crash or a failure.
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("budget expired"), "stderr: {err}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"truncated\""), "stdout: {stdout}");
}
