//! A typed machine-code assembler.
//!
//! Hand-writing machine code as raw `(String, Value)` pairs is error-prone
//! precisely because *"it's essential that the machine code pairs provided
//! by the user align with the proper naming conventions"* (paper §3.2).
//! [`Assembler`] builds programs through the conventions of [`crate::names`]
//! — grid positions and primitive kinds are typed, and the base program
//! starts from an all-zero (pass-through) grid so the result is always
//! complete.

use crate::machine_code::MachineCode;
use crate::names::{self, AluKind};
use crate::value::Value;

/// A builder for machine-code programs over a known grid.
///
/// ```
/// use druzhba_core::asm::Assembler;
/// use druzhba_core::names::AluKind;
///
/// let mc = Assembler::new()
///     .stateful_hole(0, 0, "arith_op_0", 0)
///     .operand_mux(AluKind::Stateful, 0, 0, 0, 1) // operand 0 <- PHV[1]
///     .route_stateful(0, 1, 0, 2)                 // PHV[1] <- stateful ALU 0 (width 2)
///     .build();
/// assert_eq!(mc.get("stateful_alu_0_0_operand_mux_0").unwrap(), 1);
/// assert_eq!(mc.get("output_mux_phv_0_1").unwrap(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    mc: MachineCode,
}

impl Assembler {
    /// Start from an empty program. Combine with
    /// [`Assembler::with_defaults`] or a pre-seeded [`MachineCode`] when a
    /// complete grid is required.
    pub fn new() -> Self {
        Assembler {
            mc: MachineCode::new(),
        }
    }

    /// Start from an existing program (e.g. the all-zeros grid produced
    /// from `expected_machine_code`).
    pub fn with_defaults(mc: MachineCode) -> Self {
        Assembler { mc }
    }

    /// Set an ALU-internal hole by local name.
    pub fn alu_hole(
        mut self,
        kind: AluKind,
        stage: usize,
        slot: usize,
        local: &str,
        value: Value,
    ) -> Self {
        self.mc
            .set(names::alu_hole(kind, stage, slot, local), value);
        self
    }

    /// Set a stateful ALU's hole.
    pub fn stateful_hole(self, stage: usize, slot: usize, local: &str, value: Value) -> Self {
        self.alu_hole(AluKind::Stateful, stage, slot, local, value)
    }

    /// Set a stateless ALU's hole.
    pub fn stateless_hole(self, stage: usize, slot: usize, local: &str, value: Value) -> Self {
        self.alu_hole(AluKind::Stateless, stage, slot, local, value)
    }

    /// Point operand `operand` of an ALU at a PHV container.
    pub fn operand_mux(
        mut self,
        kind: AluKind,
        stage: usize,
        slot: usize,
        operand: usize,
        container: usize,
    ) -> Self {
        self.mc.set(
            names::operand_mux(kind, stage, slot, operand),
            container as Value,
        );
        self
    }

    /// Route a container's output mux to pass-through.
    pub fn route_passthrough(mut self, stage: usize, container: usize) -> Self {
        self.mc.set(names::output_mux(stage, container), 0);
        self
    }

    /// Route a container from a stateless ALU's output (needs the
    /// pipeline's `width` to compute the selector).
    pub fn route_stateless(mut self, stage: usize, container: usize, slot: usize) -> Self {
        self.mc
            .set(names::output_mux(stage, container), (1 + slot) as Value);
        self
    }

    /// Route a container from a stateful ALU's output (needs the
    /// pipeline's `width` to compute the selector).
    pub fn route_stateful(
        mut self,
        stage: usize,
        container: usize,
        slot: usize,
        width: usize,
    ) -> Self {
        self.mc.set(
            names::output_mux(stage, container),
            (1 + width + slot) as Value,
        );
        self
    }

    /// Finish, yielding the machine code.
    pub fn build(self) -> MachineCode {
        self.mc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_conventional_names() {
        let mc = Assembler::new()
            .stateful_hole(1, 2, "rel_op_0", 3)
            .stateless_hole(0, 1, "opcode", 5)
            .operand_mux(AluKind::Stateless, 0, 1, 1, 4)
            .route_stateless(0, 2, 1)
            .route_stateful(1, 3, 0, 5)
            .route_passthrough(1, 0)
            .build();
        assert_eq!(mc.get("stateful_alu_1_2_rel_op_0").unwrap(), 3);
        assert_eq!(mc.get("stateless_alu_0_1_opcode").unwrap(), 5);
        assert_eq!(mc.get("stateless_alu_0_1_operand_mux_1").unwrap(), 4);
        assert_eq!(mc.get("output_mux_phv_0_2").unwrap(), 2);
        assert_eq!(mc.get("output_mux_phv_1_3").unwrap(), 6);
        assert_eq!(mc.get("output_mux_phv_1_0").unwrap(), 0);
    }

    #[test]
    fn with_defaults_overlays() {
        let base = MachineCode::from_pairs([("output_mux_phv_0_0", 0), ("x", 9)]);
        let mc = Assembler::with_defaults(base)
            .route_stateful(0, 0, 0, 1)
            .build();
        assert_eq!(mc.get("output_mux_phv_0_0").unwrap(), 2);
        assert_eq!(mc.get("x").unwrap(), 9, "unrelated pairs preserved");
    }

    #[test]
    fn every_emitted_name_parses_back() {
        let mc = Assembler::new()
            .stateful_hole(0, 0, "mux3_1", 2)
            .operand_mux(AluKind::Stateful, 0, 0, 0, 1)
            .route_stateful(0, 1, 0, 2)
            .build();
        for (name, _) in mc.iter() {
            assert!(
                crate::names::parse_name(name).is_some(),
                "assembler emitted unconventional name `{name}`"
            );
        }
    }
}
